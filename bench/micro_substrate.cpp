// micro_substrate — google-benchmark microbenchmarks for the substrate
// operations, including the DESIGN.md ablations: trie densify vs the
// paper's footnote-3 sort-cut-uniq recipe, MRA from a sorted array vs
// from a trie, and bulk (bottom-up) vs incremental trie construction.
//
// Besides the console table, the run feeds per-benchmark series into the
// v6::obs registry and dumps them at exit (BENCH_<name>.json, or
// --metrics-out=F) — scripts/check.sh commits BENCH_substrate.json as
// the tracked perf baseline.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_gbench.h"
#include "v6class/addrtype/classify.h"
#include "v6class/addrtype/malone.h"
#include "v6class/netgen/iid.h"
#include "v6class/netgen/rng.h"
#include "v6class/simd/kernels.h"
#include "v6class/spatial/mra.h"
#include "v6class/temporal/observation_store.h"
#include "v6class/temporal/stability.h"
#include "v6class/trie/aguri_profiler.h"
#include "v6class/trie/prefix_map.h"
#include "v6class/trie/radix_tree.h"

namespace {

using namespace v6;

std::vector<address> make_addresses(std::size_t n, std::uint64_t seed) {
    rng r{seed};
    std::vector<address> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(1u << 14);
        const std::uint64_t lo =
            r.chance(0.6) ? privacy_iid(r()) : r.uniform(1u << 12);
        out.push_back(address::from_pair(hi, lo));
    }
    return out;
}

void BM_parse(benchmark::State& state) {
    const std::string text = "2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a";
    for (auto _ : state) benchmark::DoNotOptimize(address::parse(text));
}
BENCHMARK(BM_parse);

void BM_parse_compressed(benchmark::State& state) {
    const std::string text = "2001:db8::10:901";
    for (auto _ : state) benchmark::DoNotOptimize(address::parse(text));
}
BENCHMARK(BM_parse_compressed);

void BM_format(benchmark::State& state) {
    const address a = address::must_parse("2001:db8::10:901");
    for (auto _ : state) benchmark::DoNotOptimize(a.to_string());
}
BENCHMARK(BM_format);

void BM_classify(benchmark::State& state) {
    const auto addrs = make_addresses(1024, 1);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(classify(addrs[i++ & 1023]));
    }
}
BENCHMARK(BM_classify);

void BM_malone_classify(benchmark::State& state) {
    const auto addrs = make_addresses(1024, 2);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(malone_classify(addrs[i++ & 1023]));
}
BENCHMARK(BM_malone_classify);

void BM_trie_insert(benchmark::State& state) {
    const auto addrs = make_addresses(static_cast<std::size_t>(state.range(0)), 3);
    for (auto _ : state) {
        radix_tree t;
        for (const address& a : addrs) t.add(a);
        benchmark::DoNotOptimize(t.total());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_trie_insert)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_trie_bulk_build(benchmark::State& state) {
    // Same unsorted input as BM_trie_insert; the timed region includes
    // the sort, so the two are directly comparable end to end.
    const auto addrs = make_addresses(static_cast<std::size_t>(state.range(0)), 3);
    for (auto _ : state) {
        auto sorted = addrs;
        std::sort(sorted.begin(), sorted.end());
        radix_tree t;
        t.bulk_build(sorted);
        benchmark::DoNotOptimize(t.total());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_trie_bulk_build)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_dense_via_trie(benchmark::State& state) {
    const auto addrs = make_addresses(static_cast<std::size_t>(state.range(0)), 4);
    radix_tree t;
    for (const address& a : addrs) t.add(a);
    for (auto _ : state) benchmark::DoNotOptimize(t.dense_prefixes_at(2, 112));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_dense_via_trie)->Arg(10000)->Arg(100000);

void BM_dense_via_sort(benchmark::State& state) {
    const auto addrs = make_addresses(static_cast<std::size_t>(state.range(0)), 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(dense_prefixes_by_sort(addrs, 2, 112));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_dense_via_sort)->Arg(10000)->Arg(100000);

void BM_densify_general(benchmark::State& state) {
    const auto addrs = make_addresses(static_cast<std::size_t>(state.range(0)), 5);
    radix_tree t;
    for (const address& a : addrs) t.add(a);
    for (auto _ : state) benchmark::DoNotOptimize(t.densify(2, 112));
}
BENCHMARK(BM_densify_general)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_mra_from_sorted(benchmark::State& state) {
    auto addrs = make_addresses(static_cast<std::size_t>(state.range(0)), 6);
    std::sort(addrs.begin(), addrs.end());
    addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
    for (auto _ : state) benchmark::DoNotOptimize(compute_mra_sorted(addrs));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_mra_from_sorted)->Arg(10000)->Arg(100000);

void BM_mra_from_trie(benchmark::State& state) {
    const auto addrs = make_addresses(static_cast<std::size_t>(state.range(0)), 6);
    radix_tree t;
    for (const address& a : addrs) t.add(a);
    for (auto _ : state) benchmark::DoNotOptimize(compute_mra_from_trie(t));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_mra_from_trie)->Arg(10000)->Arg(100000);

void BM_aguri_observe(benchmark::State& state) {
    const auto addrs = make_addresses(100000, 7);
    for (auto _ : state) {
        aguri_profiler prof(4096, 0.01);
        for (const address& a : addrs) prof.observe(a);
        benchmark::DoNotOptimize(prof.total());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_aguri_observe);

void BM_stability_classify(benchmark::State& state) {
    rng r{8};
    daily_series series;
    const std::size_t per_day = static_cast<std::size_t>(state.range(0));
    for (int day = 0; day < 15; ++day) {
        std::vector<address> active;
        active.reserve(per_day);
        for (std::size_t i = 0; i < per_day; ++i) {
            // 20% recurring population, 80% fresh privacy addresses.
            if (r.chance(0.2))
                active.push_back(
                    address::from_pair(0x20010db800000000ull, r.uniform(per_day)));
            else
                active.push_back(
                    address::from_pair(0x20010db800000000ull | r.uniform(1024),
                                       privacy_iid(r())));
        }
        series.set_day(day, std::move(active));
    }
    stability_analyzer an(series);
    for (auto _ : state) benchmark::DoNotOptimize(an.classify_day(7, 3));
    state.SetItemsProcessed(state.iterations() * per_day);
}
BENCHMARK(BM_stability_classify)->Arg(10000)->Arg(100000);

void BM_prefix_map_lpm(benchmark::State& state) {
    prefix_map<std::uint32_t> table;
    rng r{9};
    for (int i = 0; i < 4096; ++i) {
        const address base =
            address::from_pair(0x2000000000000000ull | (r() >> 4), 0);
        table.insert(prefix{base, 16 + static_cast<unsigned>(r.uniform(48))},
                     static_cast<std::uint32_t>(i));
    }
    const auto probes = make_addresses(1024, 10);
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(table.longest_match(probes[i++ & 1023]));
}
BENCHMARK(BM_prefix_map_lpm);

void BM_observation_store_ingest(benchmark::State& state) {
    // 15 days of churn: the streaming-ingest half of DESIGN ablation #3.
    const std::size_t per_day = static_cast<std::size_t>(state.range(0));
    std::vector<std::vector<address>> days;
    rng r{11};
    for (int d = 0; d < 15; ++d) {
        std::vector<address> active;
        active.reserve(per_day);
        for (std::size_t i = 0; i < per_day; ++i) {
            if (r.chance(0.2))
                active.push_back(
                    address::from_pair(0x20010db800000000ull, r.uniform(per_day)));
            else
                active.push_back(address::from_pair(
                    0x20010db800000000ull | r.uniform(1024), privacy_iid(r())));
        }
        days.push_back(std::move(active));
    }
    for (auto _ : state) {
        observation_store store;
        for (int d = 0; d < 15; ++d) store.record_day(d, days[static_cast<std::size_t>(d)]);
        benchmark::DoNotOptimize(store.stability_spectrum(14));
    }
    state.SetItemsProcessed(state.iterations() * 15 * per_day);
}
BENCHMARK(BM_observation_store_ingest)->Arg(10000)->Arg(50000);

// ---- batch (SIMD substrate) kernels: dispatched-vs-scalar pairs ------
//
// Each pair runs the same kernel through table_for(detected level) and
// table_for(scalar); on an AVX2 machine the first is the vector path.
// Per-item throughput divides by the 1024-lane block; check.sh compares
// the batch per-item times against the one-at-a-time baselines above
// (BM_parse / BM_format / BM_classify) for the >=4x substrate claim.

constexpr std::size_t kBlock = 1024;

const simd::kernel_table& bench_table(bool scalar) {
    return simd::table_for(scalar ? simd::level::scalar
                                  : simd::detect_level());
}

simd::address_block make_block(std::uint64_t seed) {
    simd::address_block block(kBlock);
    block.assign(make_addresses(kBlock, seed));
    return block;
}

// Full 8-group spellings (the BM_parse shape, no `::` path).
std::vector<std::string> make_full_texts(std::uint64_t seed) {
    const auto addrs = make_addresses(kBlock, seed);
    std::vector<std::string> texts;
    texts.reserve(kBlock);
    char buf[64];
    for (const address& a : addrs) {
        const std::uint64_t hi = a.hi(), lo = a.lo();
        std::snprintf(buf, sizeof buf, "%llx:%llx:%llx:%llx:%llx:%llx:%llx:%llx",
                      static_cast<unsigned long long>(hi >> 48),
                      static_cast<unsigned long long>((hi >> 32) & 0xffff),
                      static_cast<unsigned long long>((hi >> 16) & 0xffff),
                      static_cast<unsigned long long>(hi & 0xffff),
                      static_cast<unsigned long long>(lo >> 48),
                      static_cast<unsigned long long>((lo >> 32) & 0xffff),
                      static_cast<unsigned long long>((lo >> 16) & 0xffff),
                      static_cast<unsigned long long>(lo & 0xffff));
        texts.emplace_back(buf);
    }
    return texts;
}

void bench_parse_batch(benchmark::State& state, bool scalar, bool compressed) {
    const simd::kernel_table& t = bench_table(scalar);
    std::vector<std::string> texts;
    if (compressed) {
        for (const address& a : make_addresses(kBlock, 21))
            texts.push_back(a.to_string());
    } else {
        texts = make_full_texts(21);
    }
    const std::vector<std::string_view> views(texts.begin(), texts.end());
    simd::address_block block(kBlock);
    std::array<std::uint8_t, kBlock> ok;
    v6::bench::pmu_meter pmu(state, kBlock);
    for (auto _ : state)
        benchmark::DoNotOptimize(t.parse(views.data(), views.size(), block,
                                         ok.data()));
    state.SetItemsProcessed(state.iterations() * kBlock);
}
void BM_parse_batch(benchmark::State& s) { bench_parse_batch(s, false, false); }
void BM_parse_batch_scalar(benchmark::State& s) { bench_parse_batch(s, true, false); }
void BM_parse_batch_compressed(benchmark::State& s) { bench_parse_batch(s, false, true); }
BENCHMARK(BM_parse_batch);
BENCHMARK(BM_parse_batch_scalar);
BENCHMARK(BM_parse_batch_compressed);

void bench_format_batch(benchmark::State& state, bool scalar) {
    const simd::kernel_table& t = bench_table(scalar);
    const auto block = make_block(22);
    std::vector<char> buf(kBlock * simd::kFormatStride);
    std::array<std::uint8_t, kBlock> lens;
    v6::bench::pmu_meter pmu(state, kBlock);
    for (auto _ : state) {
        t.format(block, buf.data(), lens.data());
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock);
}
void BM_format_batch(benchmark::State& s) { bench_format_batch(s, false); }
void BM_format_batch_scalar(benchmark::State& s) { bench_format_batch(s, true); }
BENCHMARK(BM_format_batch);
BENCHMARK(BM_format_batch_scalar);

void bench_classify_batch(benchmark::State& state, bool scalar) {
    const simd::kernel_table& t = bench_table(scalar);
    const auto block = make_block(23);
    std::array<std::uint8_t, kBlock> transition, scope, iid;
    v6::bench::pmu_meter pmu(state, kBlock);
    for (auto _ : state) {
        t.classify(block, transition.data(), scope.data(), iid.data());
        benchmark::DoNotOptimize(iid.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock);
}
void BM_classify_batch(benchmark::State& s) { bench_classify_batch(s, false); }
void BM_classify_batch_scalar(benchmark::State& s) { bench_classify_batch(s, true); }
BENCHMARK(BM_classify_batch);
BENCHMARK(BM_classify_batch_scalar);

void BM_malone_batch(benchmark::State& state) {
    const auto block = make_block(24);
    std::array<std::uint8_t, kBlock> labels;
    v6::bench::pmu_meter pmu(state, kBlock);
    for (auto _ : state) {
        simd::malone_batch(block, labels.data());
        benchmark::DoNotOptimize(labels.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock);
}
BENCHMARK(BM_malone_batch);

void BM_cpl_batch(benchmark::State& state) {
    const auto a = make_block(25);
    const auto b = make_block(26);
    std::array<std::uint8_t, kBlock> out;
    v6::bench::pmu_meter pmu(state, kBlock);
    for (auto _ : state) {
        simd::common_prefix_len_batch(a, b, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * kBlock);
}
BENCHMARK(BM_cpl_batch);

void BM_block_sort_unique(benchmark::State& state) {
    // Same input as BM_address_sort_unique: the radix-partitioned lane
    // sort vs std::sort + std::unique over address values.
    simd::address_block block(static_cast<std::size_t>(state.range(0)));
    const auto addrs =
        make_addresses(static_cast<std::size_t>(state.range(0)), 12);
    v6::bench::pmu_meter pmu(state,
                             static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        block.assign(addrs);
        simd::sort_unique_block(block);
        benchmark::DoNotOptimize(block.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_block_sort_unique)->Arg(100000);

void BM_observation_store_ingest_block(benchmark::State& state) {
    // The block twin of BM_observation_store_ingest: same 15-day churn,
    // folded in through the SoA record_day overload.
    const std::size_t per_day = static_cast<std::size_t>(state.range(0));
    std::vector<simd::address_block> days;
    rng r{11};
    for (int d = 0; d < 15; ++d) {
        std::vector<address> active;
        active.reserve(per_day);
        for (std::size_t i = 0; i < per_day; ++i) {
            if (r.chance(0.2))
                active.push_back(
                    address::from_pair(0x20010db800000000ull, r.uniform(per_day)));
            else
                active.push_back(address::from_pair(
                    0x20010db800000000ull | r.uniform(1024), privacy_iid(r())));
        }
        simd::address_block block(per_day);
        block.assign(active);
        days.push_back(std::move(block));
    }
    v6::bench::pmu_meter pmu(state, 15 * per_day);
    for (auto _ : state) {
        observation_store store;
        for (int d = 0; d < 15; ++d)
            store.record_day(d, days[static_cast<std::size_t>(d)]);
        benchmark::DoNotOptimize(store.stability_spectrum(14));
    }
    state.SetItemsProcessed(state.iterations() * 15 * per_day);
}
BENCHMARK(BM_observation_store_ingest_block)->Arg(10000)->Arg(50000);

void BM_address_sort_unique(benchmark::State& state) {
    const auto addrs = make_addresses(static_cast<std::size_t>(state.range(0)), 12);
    for (auto _ : state) {
        auto copy = addrs;
        std::sort(copy.begin(), copy.end());
        copy.erase(std::unique(copy.begin(), copy.end()), copy.end());
        benchmark::DoNotOptimize(copy.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_address_sort_unique)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
    return v6::bench::run_gbench_main(argc, argv, "BENCH_substrate.json");
}
