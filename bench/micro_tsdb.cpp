// micro_tsdb — prices the durable flight recorder: framed append +
// commit throughput, open()-time recovery of a populated directory,
// indexed range reads, and — the tracked claim (BENCH_tsdb.json, gated
// by scripts/check.sh) — the whole-pipeline cost of seal-time tsdb
// flushing: streaming classification with a flight recorder attached
// stays within 5% of the bare engine, because a seal writes tens of
// points per day against millions of ingested records.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_gbench.h"
#include "v6class/netgen/rng.h"
#include "v6class/obs/tsdb.h"
#include "v6class/stream/engine.h"

namespace {

using namespace v6;
namespace fs = std::filesystem;

/// A fresh scratch directory per benchmark run, removed on destruction.
struct scratch_dir {
    std::string path;
    explicit scratch_dir(const char* tag)
        : path((fs::temp_directory_path() /
                (std::string("v6tsdb_bench_") + tag + "_" +
                 std::to_string(::getpid())))
                   .string()) {
        fs::remove_all(path);
    }
    ~scratch_dir() { fs::remove_all(path); }
};

void BM_tsdb_append_commit(benchmark::State& state) {
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    scratch_dir dir("append");
    auto db = obs::tsdb::database::open(dir.path);
    std::int64_t ts = 0;
    // 13 series, the live-series count a real seal flushes.
    std::vector<std::uint32_t> ids;
    for (int s = 0; s < 13; ++s)
        ids.push_back(db->series_id("series_" + std::to_string(s), ""));
    for (auto _ : state) {
        for (std::size_t i = 0; i < batch; ++i) {
            ++ts;
            for (const std::uint32_t id : ids)
                db->append(id, ts, static_cast<double>(ts) * 0.25);
        }
        benchmark::DoNotOptimize(db->commit());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch * ids.size()));
    state.SetLabel(std::to_string(ids.size()) + " series");
}
// batch = sealed days buffered between commits (1 = the daemon's shape).
// The single-day case is one tiny write() per iteration, so syscall
// jitter dominates short runs: pin a longer min time than the gate's
// default so the tracked minimum is stable across repetitions.
BENCHMARK(BM_tsdb_append_commit)->Arg(1)->Arg(64)->MinTime(0.05);

void BM_tsdb_recovery(benchmark::State& state) {
    const std::int64_t days = state.range(0);
    scratch_dir dir("recover");
    {
        auto db = obs::tsdb::database::open(dir.path);
        for (std::int64_t d = 0; d < days; ++d) {
            for (int s = 0; s < 13; ++s)
                db->append("series_" + std::to_string(s), "", d, d * 1.0);
            db->commit();
        }
    }
    std::uint64_t recovered = 0;
    for (auto _ : state) {
        auto db = obs::tsdb::database::open(dir.path);
        recovered = db->recovered_points();
        benchmark::DoNotOptimize(recovered);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(recovered));
}
BENCHMARK(BM_tsdb_recovery)->Arg(365)->Unit(benchmark::kMillisecond);

void BM_tsdb_query_range(benchmark::State& state) {
    scratch_dir dir("query");
    auto db = obs::tsdb::database::open(dir.path);
    constexpr std::int64_t kDays = 3650;  // a decade of daily points
    for (std::int64_t d = 0; d < kDays; ++d) db->append("s", "", d, d * 1.0);
    db->commit();
    std::int64_t from = 0;
    std::size_t got = 0;
    for (auto _ : state) {
        const auto pts = db->query("s", "", from % kDays, from % kDays + 400);
        got = pts.size();
        benchmark::DoNotOptimize(got);
        from += 37;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(got));
}
BENCHMARK(BM_tsdb_query_range)->MinTime(0.05);

std::vector<stream_record> make_feed(std::size_t per_day, int days,
                                     std::uint64_t seed) {
    rng r{seed};
    std::vector<address> pool;
    pool.reserve(per_day / 2);
    for (std::size_t i = 0; i < per_day / 2; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(64);
        const std::uint64_t lo = r.uniform(1u << 20);
        pool.push_back(address::from_pair(hi, lo));
    }
    std::vector<stream_record> feed;
    feed.reserve(per_day * static_cast<std::size_t>(days));
    for (int d = 0; d < days; ++d)
        for (std::size_t i = 0; i < per_day; ++i)
            feed.push_back({d, pool[r.uniform(pool.size())], 1 + r.uniform(4)});
    return feed;
}

/// The acceptance claim: full streaming classification with the flight
/// recorder flushing every seal (arg 1) vs the bare engine (arg 0).
void BM_stream_with_tsdb(benchmark::State& state) {
    const bool durable = state.range(0) != 0;
    const auto feed = make_feed(20000, 14, 0xf1e57);
    for (auto _ : state) {
        scratch_dir dir("seal");
        std::unique_ptr<obs::tsdb::database> db;
        stream_config cfg;
        cfg.shards = 4;
        if (durable) {
            db = obs::tsdb::database::open(dir.path);
            cfg.tsdb = db.get();
        }
        stream_engine engine(cfg);
        for (const stream_record& rec : feed) engine.push(rec);
        engine.finish();
        benchmark::DoNotOptimize(engine.stats().records);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
    state.SetLabel(durable ? "tsdb" : "bare");
}
// Real time: the engine's shard threads and the roll thread (which owns
// the seal-time flush) do the work off the timing thread.
BENCHMARK(BM_stream_with_tsdb)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
    return v6::bench::run_gbench_main(argc, argv, "BENCH_tsdb.json");
}
