// exp_malone_baseline — the Section 2 comparison: Malone's content-only
// classifier detects ~73% of privacy addresses by design; the paper's
// temporal classifier takes the complementary route and identifies the
// *stable* addresses (which are almost certainly not privacy addresses).
//
// With the simulator we hold ground truth, so both approaches can be
// scored on the same labeled traffic.
#include <map>

#include "bench_common.h"
#include "v6class/addrtype/malone.h"
#include "v6class/analysis/format.h"
#include "v6class/netgen/iid.h"
#include "v6class/temporal/stability.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Malone content-only baseline vs temporal classification", opt);
    const world w(world_cfg(opt));

    // Ground truth for "ephemeral privacy address": an address whose IID
    // is pseudorandom-by-construction is exactly one the simulator
    // generated via privacy_iid(); in this world those are the addresses
    // that never recur. We label by behaviour: an address is ephemeral
    // iff it appears on exactly one day of the window.
    const int ref = kMar2015;
    const daily_series series = w.series(ref - 7, ref + 7);
    std::map<address, int> active_days;
    for (const int d : series.days())
        for (const address& a : series.day(d)) ++active_days[a];

    const auto& today = series.day(ref);
    std::uint64_t privacy_total = 0, privacy_detected_content = 0;
    std::uint64_t persistent_total = 0, persistent_flagged_content = 0;
    for (const address& a : today) {
        const bool ephemeral = active_days.at(a) == 1;
        const bool content_says_privacy =
            malone_classify(a) == malone_label::randomised;
        if (ephemeral) {
            ++privacy_total;
            if (content_says_privacy) ++privacy_detected_content;
        } else {
            ++persistent_total;
            if (content_says_privacy) ++persistent_flagged_content;
        }
    }

    std::printf("reference day actives: %s (%s ephemeral / %s recurring)\n\n",
                format_count(static_cast<double>(today.size())).c_str(),
                format_count(static_cast<double>(privacy_total)).c_str(),
                format_count(static_cast<double>(persistent_total)).c_str());

    const double content_recall =
        privacy_total ? static_cast<double>(privacy_detected_content) /
                            static_cast<double>(privacy_total)
                      : 0;
    std::printf("Malone content-only detector:\n");
    std::printf("  detects %s of ephemeral (privacy) addresses "
                "(paper's design point: ~73%%)\n",
                format_pct(content_recall).c_str());
    std::printf("  false-flags %s of recurring addresses as privacy\n\n",
                format_pct(persistent_total
                               ? static_cast<double>(persistent_flagged_content) /
                                     static_cast<double>(persistent_total)
                               : 0)
                    .c_str());

    // The complementary temporal route: classify stability instead.
    stability_analyzer an(series);
    const stability_split split = an.classify_day(ref, 3);
    std::uint64_t stable_truly_persistent = 0;
    for (const address& a : split.stable)
        if (active_days.at(a) > 1) ++stable_truly_persistent;
    std::printf("temporal classifier (3d-stable):\n");
    std::printf("  flags %s addresses as stable; %s of them really recur\n",
                format_count(static_cast<double>(split.stable.size())).c_str(),
                format_pct(split.stable.empty()
                               ? 0
                               : static_cast<double>(stable_truly_persistent) /
                                     static_cast<double>(split.stable.size()))
                    .c_str());
    std::uint64_t not_stable_ephemeral = 0;
    for (const address& a : split.not_stable)
        if (active_days.at(a) == 1) ++not_stable_ephemeral;
    std::printf("  of the not-3d-stable, %s are truly single-day\n",
                format_pct(split.not_stable.empty()
                               ? 0
                               : static_cast<double>(not_stable_ephemeral) /
                                     static_cast<double>(split.not_stable.size()))
                    .c_str());

    std::puts(
        "\npaper shape check: content inspection plateaus near 3-in-4 on\n"
        "true privacy addresses (randomness in 63 bits is hard to certify),\n"
        "while stability classification is near-perfect on what it claims —\n"
        "stable addresses are almost certainly not privacy addresses.");
    return 0;
}
