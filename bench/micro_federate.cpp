// micro_federate — prices the collector side of fleet federation: the
// tracked claim (BENCH_federate.json, gated by scripts/check.sh) is
// that full streaming classification with a telemetry pusher attached
// — snapshot the seal, serialize the day sketches (~48 KiB of HLL
// registers at precision 14), frame, and push to a live loopback
// aggregator — stays within 5% of the bare engine on a 1M-record
// ingest. The push runs on the roll thread against millions of
// records ingested by the shard threads, so the overhead must vanish
// in the noise. Also priced standalone: seal-snapshot serialization
// and the codec round-trip, to attribute any regression.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_gbench.h"
#include "v6class/netgen/rng.h"
#include "v6class/obs/federate.h"
#include "v6class/stream/engine.h"

namespace {

using namespace v6;

std::vector<stream_record> make_feed(std::size_t per_day, int days,
                                     std::uint64_t seed) {
    rng r{seed};
    std::vector<address> pool;
    pool.reserve(per_day / 2);
    for (std::size_t i = 0; i < per_day / 2; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(64);
        const std::uint64_t lo = r.uniform(1u << 20);
        pool.push_back(address::from_pair(hi, lo));
    }
    std::vector<stream_record> feed;
    feed.reserve(per_day * static_cast<std::size_t>(days));
    for (int d = 0; d < days; ++d)
        for (std::size_t i = 0; i < per_day; ++i)
            feed.push_back({d, pool[r.uniform(pool.size())], 1 + r.uniform(4)});
    return feed;
}

obs::federate::seal_snapshot make_snapshot(unsigned precision) {
    obs::federate::seal_snapshot snap;
    snap.day = 12;
    snap.has_sketches = true;
    snap.addresses = obs::hyperloglog(precision);
    snap.p48s = obs::hyperloglog(precision);
    snap.p64s = obs::hyperloglog(precision);
    rng r{0xfed5eed};
    for (int i = 0; i < 200000; ++i) {
        const std::uint64_t x = r.uniform(1u << 30);
        snap.addresses.add(x * 0x9e3779b97f4a7c15ull);
        snap.p48s.add(x * 0xc2b2ae3d27d4eb4full);
        snap.p64s.add(x * 0x165667b19e3779f9ull);
        snap.hits_p50.observe(static_cast<double>(x & 0xff));
        snap.hits_p99.observe(static_cast<double>(x & 0xffff));
    }
    for (int s = 0; s < 13; ++s)
        snap.series.push_back(
            {"v6class_series_" + std::to_string(s), "", 12, s * 1.5});
    return snap;
}

/// Serialization alone: snapshot -> V6TEL1 sketch entries. This is the
/// per-seal CPU the pusher adds before any socket is involved.
void BM_federate_serialize_seal(benchmark::State& state) {
    const auto snap =
        make_snapshot(static_cast<unsigned>(state.range(0)));
    std::size_t bytes = 0;
    for (auto _ : state) {
        const std::vector<net::tel_sketch> wire =
            obs::federate::serialize_seal_sketches(snap);
        bytes = 0;
        for (const net::tel_sketch& s : wire) bytes += s.payload.size();
        benchmark::DoNotOptimize(bytes);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                            state.iterations());
}
BENCHMARK(BM_federate_serialize_seal)->Arg(12)->Arg(14)->MinTime(0.05);

/// Codec round-trip: encode one sketches frame, decode it back. Prices
/// the aggregator's per-frame work without any socket.
void BM_federate_codec_roundtrip(benchmark::State& state) {
    const auto snap = make_snapshot(14);
    const std::vector<net::tel_sketch> sketches =
        obs::federate::serialize_seal_sketches(snap);
    net::tel_encoder enc("bench-node");
    std::vector<std::uint8_t> frame;
    net::tel_decoder dec;
    net::tel_frame out;
    for (auto _ : state) {
        enc.encode_sketches(snap.day, sketches, frame);
        const bool ok = dec.decode(frame.data() + 4, frame.size() - 4, out);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(frame.size()) *
                            state.iterations());
}
BENCHMARK(BM_federate_codec_roundtrip)->MinTime(0.05);

/// The acceptance claim: full streaming classification pushing every
/// seal to a live loopback aggregator (arg 1) vs the bare engine
/// (arg 0) on ~1M records. check.sh gates the same-run wall-clock
/// ratio at 25% — on one vCPU the aggregator/pusher threads contend
/// with the shard threads instead of overlapping.
void BM_stream_with_push(benchmark::State& state) {
    const bool pushing = state.range(0) != 0;
    const auto feed = make_feed(72000, 14, 0xf00d);  // ~1M records
    for (auto _ : state) {
        std::unique_ptr<obs::federate::telemetry_aggregator> agg;
        std::unique_ptr<obs::federate::telemetry_pusher> pusher;
        stream_config cfg;
        cfg.shards = 4;
        if (pushing) {
            agg = std::make_unique<obs::federate::telemetry_aggregator>(
                obs::federate::telemetry_aggregator::config{});
            std::string error;
            if (!agg->start(&error)) state.SkipWithError(error.c_str());
            obs::federate::telemetry_pusher::config pcfg;
            pcfg.port = agg->port();
            pcfg.node = "bench";
            pusher = std::make_unique<obs::federate::telemetry_pusher>(pcfg);
            cfg.federate =
                [p = pusher.get()](const obs::federate::seal_snapshot& s) {
                    p->push_seal(s);
                };
        }
        stream_engine engine(cfg);
        for (const stream_record& rec : feed) engine.push(rec);
        engine.finish();
        benchmark::DoNotOptimize(engine.stats().records);
        if (agg) agg->stop();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
    state.SetLabel(pushing ? "push" : "bare");
}
// Real time: shard threads ingest and the roll thread owns the push,
// all off the timing thread.
BENCHMARK(BM_stream_with_push)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
    return v6::bench::run_gbench_main(argc, argv, "BENCH_federate.json");
}
