// micro_obs_overhead — cost of the observability layer on the stream
// ingest hot path. BM_stream_ingest_obs/1 is the full instrumented
// engine (queue-depth sampling, per-shard series, seal/report
// histograms); /0 is the same pipeline with cfg.metrics=false, which
// skips all sampled instrumentation and keeps only the core counters —
// equivalent to the pre-obs engine. Their items_per_second should agree
// to within 2%. The remaining benches price the primitives themselves.
#include <benchmark/benchmark.h>

#include <vector>

#include "v6class/netgen/rng.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/timer.h"
#include "v6class/stream/engine.h"

namespace {

using namespace v6;

std::vector<stream_record> make_feed(std::size_t per_day, int days,
                                     std::uint64_t seed) {
    rng r{seed};
    std::vector<address> pool;
    pool.reserve(per_day / 2);
    for (std::size_t i = 0; i < per_day / 2; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(1u << 10);
        const std::uint64_t lo = r.uniform(1u << 20);
        pool.push_back(address::from_pair(hi, lo));
    }
    std::vector<stream_record> feed;
    feed.reserve(per_day * static_cast<std::size_t>(days));
    for (int d = 0; d < days; ++d)
        for (std::size_t i = 0; i < per_day; ++i)
            feed.push_back({d, pool[r.uniform(pool.size())], 1 + r.uniform(4)});
    return feed;
}

// Arg(0): 1 = instrumented, 0 = cfg.metrics off. Compare the two rates:
// the instrumented run must stay within 2% of the uninstrumented one.
void BM_stream_ingest_obs(benchmark::State& state) {
    const auto feed = make_feed(50000, 4, 99);
    for (auto _ : state) {
        stream_config cfg;
        cfg.shards = 4;
        cfg.metrics = state.range(0) != 0;
        stream_engine engine(cfg);
        for (const stream_record& rec : feed) engine.push(rec);
        engine.finish();
        benchmark::DoNotOptimize(engine.stats().distinct_addresses);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
    state.SetLabel(state.range(0) ? "instrumented" : "uninstrumented");
}
BENCHMARK(BM_stream_ingest_obs)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The primitives in isolation, against a live (non-null) series.
void BM_counter_inc(benchmark::State& state) {
    obs::registry reg;
    const obs::counter c = reg.get_counter("bench_counter_total", {}, "");
    for (auto _ : state) c.inc();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_counter_inc);

void BM_gauge_set(benchmark::State& state) {
    obs::registry reg;
    const obs::gauge g = reg.get_gauge("bench_gauge", {}, "");
    std::int64_t v = 0;
    for (auto _ : state) g.set(v++);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_gauge_set);

void BM_histogram_observe(benchmark::State& state) {
    obs::registry reg;
    const obs::histogram h = reg.get_histogram(
        "bench_hist_seconds", obs::latency_buckets(), {}, "");
    double v = 0.0;
    for (auto _ : state) {
        h.observe(v);
        v += 1e-6;
        if (v > 20.0) v = 0.0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_histogram_observe);

// Default-constructed (null) handles: the disabled-instrumentation path
// must compile down to a branch on a null pointer.
void BM_null_handles(benchmark::State& state) {
    const obs::counter c;
    const obs::histogram h;
    for (auto _ : state) {
        c.inc();
        h.observe(1.0);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_null_handles);

// phase_timer on a null histogram skips the clock reads entirely.
void BM_null_phase_timer(benchmark::State& state) {
    for (auto _ : state) {
        const obs::phase_timer t{obs::histogram{}};
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_null_phase_timer);

}  // namespace

BENCHMARK_MAIN();
