// micro_stream_ingest — throughput of the streaming ingest engine:
// records/sec pushed through the full pipeline (staging, batching,
// shard queues, worker threads, day seals) at 1 vs 4 shards, plus the
// bounded-queue hot path in isolation.
#include <benchmark/benchmark.h>

#include <vector>

#include "v6class/netgen/rng.h"
#include "v6class/stream/bounded_queue.h"
#include "v6class/stream/engine.h"

namespace {

using namespace v6;

// A multi-day feed with realistic duplication (clients returning).
std::vector<stream_record> make_feed(std::size_t per_day, int days,
                                     std::uint64_t seed) {
    rng r{seed};
    std::vector<address> pool;
    pool.reserve(per_day / 2);
    for (std::size_t i = 0; i < per_day / 2; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(1u << 10);
        const std::uint64_t lo = r.uniform(1u << 20);
        pool.push_back(address::from_pair(hi, lo));
    }
    std::vector<stream_record> feed;
    feed.reserve(per_day * static_cast<std::size_t>(days));
    for (int d = 0; d < days; ++d)
        for (std::size_t i = 0; i < per_day; ++i)
            feed.push_back({d, pool[r.uniform(pool.size())], 1 + r.uniform(4)});
    return feed;
}

// Arg(0): shard count. Reported rate is end-to-end: every record pushed,
// every day sealed, all threads joined.
void BM_stream_ingest(benchmark::State& state) {
    const auto feed = make_feed(50000, 4, 99);
    for (auto _ : state) {
        stream_config cfg;
        cfg.shards = static_cast<unsigned>(state.range(0));
        stream_engine engine(cfg);
        for (const stream_record& rec : feed) engine.push(rec);
        engine.finish();
        benchmark::DoNotOptimize(engine.stats().distinct_addresses);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
}
BENCHMARK(BM_stream_ingest)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Same pipeline, but including a snapshot query per sealed day — the
// monitoring pattern (ingest + concurrent reads).
void BM_stream_ingest_with_snapshots(benchmark::State& state) {
    const auto feed = make_feed(50000, 4, 99);
    for (auto _ : state) {
        stream_config cfg;
        cfg.shards = static_cast<unsigned>(state.range(0));
        stream_engine engine(cfg);
        int last_day = -1;
        for (const stream_record& rec : feed) {
            if (rec.day != last_day && last_day >= 0)
                benchmark::DoNotOptimize(engine.snapshot().distinct_addresses);
            last_day = rec.day;
            engine.push(rec);
        }
        engine.finish();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
}
BENCHMARK(BM_stream_ingest_with_snapshots)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_bounded_queue_roundtrip(benchmark::State& state) {
    bounded_queue<int> q(64);
    for (auto _ : state) {
        q.try_push(1);
        benchmark::DoNotOptimize(q.pop());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_bounded_queue_roundtrip);

}  // namespace

BENCHMARK_MAIN();
