// table2 — regenerates the paper's Table 2: stability of active IPv6
// WWW client addresses and /64 prefixes (not 6to4 or Teredo), per day
// and per week, with 6-month and 1-year epoch stability.
#include "bench_common.h"
#include "v6class/analysis/reports.h"
#include "v6class/temporal/stability.h"

using namespace v6;
using namespace v6::bench;

namespace {

// The daily series of native ("Other") addresses around an epoch.
daily_series native_series(const world& w, int from, int to) {
    daily_series out;
    for (int d = from; d <= to; ++d)
        out.set_day(d, cull_transition(w.active_addresses(d)).other);
    return out;
}

struct epoch_data {
    daily_series addrs;   // native addresses, ref-7 .. ref+13
    daily_series p64s;    // the same projected to /64
};

epoch_data make_epoch(const world& w, int ref) {
    epoch_data e;
    e.addrs = native_series(w, ref - 7, ref + 13);
    e.p64s = e.addrs.project(64);
    return e;
}

std::vector<address> week_union(const daily_series& s, int first) {
    return s.union_over(first, first + 6);
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Table 2: stability of addresses and /64 prefixes", opt);
    const world w(world_cfg(opt));

    std::printf("simulating three epochs (day windows around %d, %d, %d)...\n\n",
                kMar2014, kSep2014, kMar2015);
    epoch_data mar14, sep14, mar15;
    {
        // The three epochs are independent const reads of the world model
        // (day activity derives statelessly from the seed), so they
        // simulate concurrently; each writes its own slot.
        const timed_phase sim_phase("simulate_epochs");
        const int refs[] = {kMar2014, kSep2014, kMar2015};
        epoch_data* const out[] = {&mar14, &sep14, &mar15};
        par::run_indexed(3, [&](std::size_t i) { *out[i] = make_epoch(w, refs[i]); });
    }

    struct spec {
        const char* daily_label;
        const char* weekly_label;
        const epoch_data* data;
        int ref;
        const epoch_data* back_6m;  // nullptr when no -6m epoch
        int ref_6m;
        const epoch_data* back_1y;
        int ref_1y;
    };
    const spec specs[] = {
        {"Mar 17, 2014", "Mar 17-23, 2014", &mar14, kMar2014, nullptr, 0, nullptr, 0},
        {"Sep 17, 2014", "Sep 17-23, 2014", &sep14, kSep2014, &mar14, kMar2014,
         nullptr, 0},
        {"Mar 17, 2015", "Mar 17-23, 2015", &mar15, kMar2015, &sep14, kSep2014,
         &mar14, kMar2014},
    };

    const auto build = [&](bool use_64s, bool weekly) {
        const timed_phase build_phase(weekly ? "classify_weekly"
                                             : "classify_daily");
        // One column per spec, classified concurrently into its own slot.
        return par::map_indexed<stability_column>(std::size(specs), [&](std::size_t i) {
            const spec& s = specs[i];
            const daily_series& series = use_64s ? s.data->p64s : s.data->addrs;
            stability_analyzer an(series);
            stability_column col;
            col.label = weekly ? s.weekly_label : s.daily_label;
            const stability_split split = weekly ? an.classify_week(s.ref, 3)
                                                 : an.classify_day(s.ref, 3);
            col.stable_3d = split.stable.size();
            col.not_stable_3d = split.not_stable.size();
            const auto current = weekly ? week_union(series, s.ref)
                                        : series.day(s.ref);
            if (s.back_6m) {
                const daily_series& past =
                    use_64s ? s.back_6m->p64s : s.back_6m->addrs;
                const auto past_set = weekly ? week_union(past, s.ref_6m)
                                             : past.day(s.ref_6m);
                col.stable_6m = epoch_stable(current, past_set).size();
                col.has_6m = true;
            }
            if (s.back_1y) {
                const daily_series& past =
                    use_64s ? s.back_1y->p64s : s.back_1y->addrs;
                const auto past_set = weekly ? week_union(past, s.ref_1y)
                                             : past.day(s.ref_1y);
                col.stable_1y = epoch_stable(current, past_set).size();
                col.has_1y = true;
            }
            return col;
        });
    };

    // Compute the four tables concurrently (slot per table), print in
    // the fixed (a)-(d) order afterwards: the bytes on stdout do not
    // depend on the thread count.
    const auto tables = par::map_indexed<std::vector<stability_column>>(
        4, [&](std::size_t i) { return build((i & 1) != 0, (i & 2) != 0); });

    std::puts("(a) Stability of IPv6 addresses per day");
    std::fputs(render_table2(tables[0], "addr").c_str(), stdout);
    std::puts("\n(b) Stability of /64 prefixes per day");
    std::fputs(render_table2(tables[1], "/64").c_str(), stdout);
    std::puts("\n(c) Stability of IPv6 addresses per week");
    std::fputs(render_table2(tables[2], "addr").c_str(), stdout);
    std::puts("\n(d) Stability of /64 prefixes per week");
    std::fputs(render_table2(tables[3], "/64").c_str(), stdout);

    std::puts(
        "\npaper shape checks: ~9% of addresses 3d-stable vs ~90% of /64s;\n"
        "weekly stable shares lower than daily; 6m/1y-stable addresses rare\n"
        "(<1%) while 6m/1y-stable /64s are plentiful (tens of %).");
    return 0;
}
