// exp_eui64_mobility — the Section 6.1.1 EUI-64 investigation: of the
// EUI-64 addresses classified "not 3d-stable", how many carry an IID
// seen in more than one address (the static IID moved between network
// identifiers — paper: 62%), and how many carry an IID that also has a
// 3d-stable address (paper: 14%)?
#include "bench_common.h"
#include "v6class/analysis/eui64_mobility.h"
#include "v6class/analysis/format.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Section 6.1.1: instability of static-IID (EUI-64) addresses", opt);
    const world w(world_cfg(opt));

    // The paper ran this on the Sep 17-23 2014 window; use the epoch's
    // reference day with the standard window.
    const int ref = kSep2014;
    const daily_series series = w.series(ref - 7, ref + 7);
    const eui64_mobility_report report = analyze_eui64_mobility(series, ref);

    std::printf("EUI-64 addresses on the reference day:\n");
    std::printf("  3d-stable:      %s\n",
                format_count(static_cast<double>(report.stable_eui64_addresses))
                    .c_str());
    std::printf("  not 3d-stable:  %s\n",
                format_count(static_cast<double>(report.unstable_eui64_addresses))
                    .c_str());
    std::printf(
        "\nof the not-3d-stable EUI-64 addresses:\n"
        "  IID appears in more than one address: %s (paper: 62%%)\n"
        "  IID also appears in a 3d-stable addr: %s (paper: 14%%)\n",
        format_pct(report.multiple_share()).c_str(),
        format_pct(report.also_stable_share()).c_str());

    std::puts(
        "\npaper shape check: a majority of 'unstable' EUI-64 addresses are\n"
        "stable devices whose *network identifier* moved (renumbering or\n"
        "dynamic subnet assignment) — the IID betrays them; and a minority\n"
        "hold a stable address somewhere else in the window.");
    return 0;
}
