// exp_aguri_budget — ablation: how hard does the aguri node budget bite?
// Sweeps the memory budget and reports profile fidelity (share of traffic
// attributed at /64 or finer) and peak memory, against the unbounded
// tree. Supports DESIGN.md's "resource constraints" claim for the
// aggregation substrate (Cho et al.; paper Section 2).
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/trie/aguri_profiler.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Ablation: aguri profiler node budget", opt);
    const world w(world_cfg(opt));
    const daily_log log = w.day_log(kMar2015);
    std::printf("input: %zu records, %s hits\n\n", log.records.size(),
                format_count(static_cast<double>(log.total_hits())).c_str());

    std::printf("%-12s %12s %16s %18s\n", "budget", "peak nodes",
                "profile lines", "mean aggr length");
    for (const std::size_t budget : {256ul, 1024ul, 4096ul, 16384ul, 1ul << 20}) {
        aguri_profiler profiler(budget, 0.01);
        std::size_t peak = 0;
        for (const observation& o : log.records) {
            profiler.observe(o.addr, o.hits);
            peak = std::max(peak, profiler.node_count());
        }
        const auto profile = profiler.profile();
        double weighted_length = 0.0;
        for (const profile_entry& e : profile)
            weighted_length += e.share * e.pfx.length();
        std::printf("%-12zu %12zu %16zu %15.1f bits\n", budget, peak,
                    profile.size(), weighted_length);
    }

    std::puts(
        "\nexpected shape: tighter budgets force earlier aggregation — fewer\n"
        "peak nodes and a shorter share-weighted mean prefix length — while\n"
        "the 1%-share profile stays readable at every budget.");
    return 0;
}
