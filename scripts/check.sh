#!/usr/bin/env bash
# check.sh — the full local gate: build + ctest under every preset.
#
#   scripts/check.sh            default + asan + tsan
#   scripts/check.sh default    one preset
#   FAST=1 scripts/check.sh     exclude slow-labeled tests everywhere
#
# The default preset runs the whole suite including the slow-labeled
# statistical accuracy tests (10^6-element sketch bounds); the
# sanitizer presets always exclude them (-LE slow) — under ASan/TSan
# they take minutes and bound floating-point estimator error, not
# memory or ordering behaviour, so they buy nothing there.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
[ ${#presets[@]} -eq 0 ] && presets=(default asan tsan)

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
    echo "=== preset: ${preset} ==="
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${jobs}"
    label_args=()
    if [ "${preset}" != default ] || [ -n "${FAST:-}" ]; then
        label_args=(-LE slow)
    fi
    ctest --preset "${preset}" -j "${jobs}" "${label_args[@]}"

    if [ "${preset}" = default ]; then
        # Bench gate: every microbenchmark must still run, the registry
        # reporter must still emit the machine-readable dump, and no
        # benchmark may run >25% slower than the committed
        # BENCH_substrate.json baseline. Two fresh runs are taken and
        # the gate compares the per-benchmark minimum (noise only adds
        # time). On a pass the min-merged result replaces the baseline
        # so drift shows up as a diff.
        # (This google-benchmark takes a plain double, not "0.01s".)
        echo "=== bench gate: micro_substrate vs BENCH_substrate.json ==="
        for run in 1 2; do
            ./build/bench/micro_substrate \
                --benchmark_min_time=0.01 \
                --metrics-out="BENCH_substrate.fresh${run}.json"
            test -s "BENCH_substrate.fresh${run}.json"
        done
        python3 scripts/bench_gate.py BENCH_substrate.json \
            BENCH_substrate.fresh1.json BENCH_substrate.fresh2.json \
            --threshold=1.25 --merge-out=BENCH_substrate.merged.json
        mv BENCH_substrate.merged.json BENCH_substrate.json
        rm -f BENCH_substrate.fresh1.json BENCH_substrate.fresh2.json
    fi
done

echo "=== all presets passed: ${presets[*]} ==="
