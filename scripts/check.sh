#!/usr/bin/env bash
# check.sh — the full local gate: build + ctest under every preset.
#
#   scripts/check.sh            default + asan + tsan
#   scripts/check.sh default    one preset
#   FAST=1 scripts/check.sh     exclude slow-labeled tests everywhere
#
# The default preset runs the whole suite including the slow-labeled
# statistical accuracy tests (10^6-element sketch bounds); the
# sanitizer presets always exclude them (-LE slow) — under ASan/TSan
# they take minutes and bound floating-point estimator error, not
# memory or ordering behaviour, so they buy nothing there.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
[ ${#presets[@]} -eq 0 ] && presets=(default asan tsan)

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
    echo "=== preset: ${preset} ==="
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${jobs}"
    label_args=()
    if [ "${preset}" != default ] || [ -n "${FAST:-}" ]; then
        label_args=(-LE slow)
    fi
    ctest --preset "${preset}" -j "${jobs}" "${label_args[@]}"

    if [ "${preset}" = default ]; then
        # Bench smoke: every microbenchmark must still run, and the
        # registry reporter must still emit the machine-readable dump.
        # The committed BENCH_substrate.json perf baseline is refreshed
        # in place so a substrate regression shows up as a diff.
        # (This google-benchmark takes a plain double, not "0.01s".)
        echo "=== bench smoke: micro_substrate ==="
        ./build/bench/micro_substrate \
            --benchmark_min_time=0.01 \
            --metrics-out=BENCH_substrate.json
        test -s BENCH_substrate.json
    fi
done

echo "=== all presets passed: ${presets[*]} ==="
