#!/usr/bin/env bash
# check.sh — the full local gate: build + ctest under every preset.
#
#   scripts/check.sh            default + asan + tsan
#   scripts/check.sh default    one preset
#   FAST=1 scripts/check.sh     exclude slow-labeled tests everywhere
#
# The default preset runs the whole suite including the slow-labeled
# statistical accuracy tests (10^6-element sketch bounds); the
# sanitizer presets always exclude them (-LE slow) — under ASan/TSan
# they take minutes and bound floating-point estimator error, not
# memory or ordering behaviour, so they buy nothing there.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
[ ${#presets[@]} -eq 0 ] && presets=(default asan tsan)

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
    echo "=== preset: ${preset} ==="
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${jobs}"
    label_args=()
    if [ "${preset}" != default ] || [ -n "${FAST:-}" ]; then
        label_args=(-LE slow)
    fi
    ctest --preset "${preset}" -j "${jobs}" "${label_args[@]}"

    if [ "${preset}" = default ]; then
        # Bench gates: every microbenchmark must still run, the registry
        # reporter must still emit the machine-readable dump, and no
        # benchmark may run >25% slower than the committed baseline.
        # The gate compares the per-benchmark minimum across fresh runs
        # (noise only adds time); starting from two runs, up to two more
        # repetitions are folded in before the gate is allowed to fail,
        # since the first runs land right after a parallel ctest and can
        # be scheduler-noisy. On a pass the min-merged result replaces
        # the baseline so drift shows up as a diff.
        # (This google-benchmark takes a plain double, not "0.01s".)
        bench_gate() {
            local name=$1 bin=$2 run runs=()
            echo "=== bench gate: $(basename "${bin}") vs BENCH_${name}.json ==="
            for run in 1 2 3 4; do
                "${bin}" --benchmark_min_time=0.01 \
                    --metrics-out="BENCH_${name}.fresh${run}.json"
                test -s "BENCH_${name}.fresh${run}.json"
                runs+=("BENCH_${name}.fresh${run}.json")
                [ "${run}" -lt 2 ] && continue
                if python3 scripts/bench_gate.py "BENCH_${name}.json" \
                    "${runs[@]}" --threshold=1.25 \
                    --merge-out="BENCH_${name}.merged.json"; then
                    mv "BENCH_${name}.merged.json" "BENCH_${name}.json"
                    rm -f "BENCH_${name}".fresh*.json
                    return 0
                fi
                echo "bench gate: noisy run, folding in another repetition"
            done
            rm -f "BENCH_${name}".fresh*.json "BENCH_${name}.merged.json"
            return 1
        }
        bench_gate substrate ./build/bench/micro_substrate
        # The network ingest front end (wire codec, enrichment lookup,
        # collector-equivalent ingest path).
        bench_gate wire ./build/bench/micro_wire_ingest

        # Collector smoke: the real binaries end to end over loopback
        # UDP — v6synth records a wire capture, v6stream listens on an
        # ephemeral port (parsed from its stderr), v6wire sends the
        # capture, and a clean SIGTERM must still produce sealed day
        # reports and the final summary on stdout.
        echo "=== collector smoke: loopback UDP e2e ==="
        smoke=$(mktemp -d)
        ./build/tools/v6synth --wire="${smoke}/feed.v6w" \
            --first=360 --last=362 --scale=0.02 --seed=7
        ./build/tools/v6stream --listen --shards=2 \
            >"${smoke}/out.json" 2>"${smoke}/err.txt" &
        stream_pid=$!
        port=""
        for _ in $(seq 1 100); do
            port=$(sed -n 's/^listening on udp port \([0-9]*\)$/\1/p' \
                "${smoke}/err.txt")
            [ -n "${port}" ] && break
            sleep 0.1
        done
        if [ -z "${port}" ]; then
            kill "${stream_pid}" 2>/dev/null || true
            echo "collector smoke: v6stream never reported its port" >&2
            exit 1
        fi
        ./build/tools/v6wire send "${smoke}/feed.v6w" ::1 "${port}"
        sleep 1
        kill -TERM "${stream_pid}"
        wait "${stream_pid}"
        grep -q '"type":"day"' "${smoke}/out.json"
        grep -q '"type":"final"' "${smoke}/out.json"
        grep -q 'collector: .* 0 rejected' "${smoke}/err.txt"
        rm -rf "${smoke}"
        echo "collector smoke passed"
    fi
done

echo "=== all presets passed: ${presets[*]} ==="
