#!/usr/bin/env bash
# check.sh — the full local gate: build + ctest under every preset.
#
#   scripts/check.sh            default + asan + tsan
#   scripts/check.sh default    one preset
#   FAST=1 scripts/check.sh     exclude slow-labeled tests everywhere
#
# The default preset runs the whole suite including the slow-labeled
# statistical accuracy tests (10^6-element sketch bounds); the
# sanitizer presets always exclude them (-LE slow) — under ASan/TSan
# they take minutes and bound floating-point estimator error, not
# memory or ordering behaviour, so they buy nothing there.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
[ ${#presets[@]} -eq 0 ] && presets=(default asan tsan)

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
    echo "=== preset: ${preset} ==="
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${jobs}"
    label_args=()
    if [ "${preset}" != default ] || [ -n "${FAST:-}" ]; then
        label_args=(-LE slow)
    fi
    ctest --preset "${preset}" -j "${jobs}" "${label_args[@]}"

    if [ "${preset}" = default ]; then
        # Forced-scalar sweep: the same engine/wire/store tests must pass
        # with the SIMD dispatch pinned to the portable level — the
        # differential suite proves the kernels bit-identical, this
        # proves the consumers behave identically end to end.
        echo "=== forced-scalar: ctest under V6CLASS_FORCE_SCALAR=1 ==="
        V6CLASS_FORCE_SCALAR=1 ctest --preset default -j "${jobs}" \
            -R "Simd|Stream|Wire|Collector|ObservationStore|Trie|Mra"

        # Kill-switch sweep: the whole suite (minus the slow statistical
        # tests, which never touch counters) must behave identically
        # with the PMU probe forced off — pmu_scope no-ops, /pmu and the
        # export degrade to mode+reason, nothing else notices.
        echo "=== pmu kill switch: ctest under V6CLASS_DISABLE_PMU=1 ==="
        V6CLASS_DISABLE_PMU=1 ctest --preset default -j "${jobs}" -LE slow

        # Bench gates: every microbenchmark must still run, the registry
        # reporter must still emit the machine-readable dump, and no
        # benchmark may run >25% slower than the committed baseline.
        # The gate compares the per-benchmark minimum across fresh runs
        # (noise only adds time); starting from two runs, up to two more
        # repetitions are folded in before the gate is allowed to fail,
        # since the first runs land right after a parallel ctest and can
        # be scheduler-noisy. On a pass the min-merged result replaces
        # the baseline so drift shows up as a diff.
        # (This google-benchmark takes a plain double, not "0.01s".)
        bench_gate() {
            local name=$1 bin=$2 run runs=()
            echo "=== bench gate: $(basename "${bin}") vs BENCH_${name}.json ==="
            for run in 1 2 3 4 5 6; do
                # Let the post-ctest scheduler churn settle before timing;
                # memory-bound benches see neighbors for minutes on this box.
                sleep 2
                "${bin}" --benchmark_min_time=0.01 \
                    --metrics-out="BENCH_${name}.fresh${run}.json"
                test -s "BENCH_${name}.fresh${run}.json"
                runs+=("BENCH_${name}.fresh${run}.json")
                [ "${run}" -lt 2 ] && continue
                if python3 scripts/bench_gate.py "BENCH_${name}.json" \
                    "${runs[@]}" --threshold=1.25 \
                    --merge-out="BENCH_${name}.merged.json"; then
                    mv "BENCH_${name}.merged.json" "BENCH_${name}.json"
                    rm -f "BENCH_${name}".fresh*.json
                    return 0
                fi
                echo "bench gate: noisy run, folding in another repetition"
            done
            rm -f "BENCH_${name}".fresh*.json "BENCH_${name}.merged.json"
            return 1
        }
        # Every committed BENCH_*.json baseline gates its benchmark; the
        # binary is resolved by which bench source names that baseline
        # dump, so adding a gated benchmark is: write bench/micro_X.cpp
        # mentioning BENCH_X.json, run it once, commit the baseline.
        # Tracked baselines only: ad-hoc bench runs can drop stray
        # BENCH_*.json dumps in the work tree, and those have no
        # committed numbers to gate against.
        for baseline in $(git ls-files 'BENCH_*.json'); do
            name=${baseline#BENCH_}
            name=${name%.json}
            src=$(grep -l "BENCH_${name}\\.json" bench/*.cpp || true)
            if [ -z "${src}" ] || [ "$(printf '%s\n' "${src}" | wc -l)" -ne 1 ]; then
                echo "bench gate: ${baseline} maps to [${src}]," \
                     "want exactly one bench source" >&2
                exit 1
            fi
            bench_gate "${name}" "./build/bench/$(basename "${src}" .cpp)"
        done
        # bench_gate self-test: the IPC gate must actually fail on a
        # synthetic >25% IPC drop (fresh time unchanged), and must pass
        # the same dump against itself. Runs everywhere — it needs no
        # PMU, only the script's own arithmetic.
        echo "=== bench gate self-test: synthetic IPC regression ==="
        python3 - <<'EOF'
import json, subprocess, sys, tempfile, os
def dump(path, ipc):
    rows = [{"name": "v6_bench_benchmark_seconds",
             "labels": {"benchmark": "BM_selftest"}, "value": 1.0},
            {"name": "v6_bench_ipc",
             "labels": {"benchmark": "BM_selftest"}, "value": ipc}]
    json.dump({"metrics": rows}, open(path, "w"))
d = tempfile.mkdtemp()
base, drop = f"{d}/base.json", f"{d}/drop.json"
dump(base, 2.0)
dump(drop, 1.4)  # 0.70x: past the 0.75x floor
gate = ["python3", "scripts/bench_gate.py"]
ok = subprocess.run(gate + [base, base], capture_output=True)
bad = subprocess.run(gate + [base, drop], capture_output=True)
assert ok.returncode == 0, ok.stdout + ok.stderr
assert bad.returncode == 1, "ipc drop not caught"
assert b"baseline IPC" in bad.stderr, bad.stderr
print("bench gate self-test ok: synthetic 0.70x IPC drop fails the gate")
EOF

        # PMU scope overhead: the counter scopes on the ingest path
        # (shard.ingest_batch / shard.seal / par.task — two group
        # read(2)s each when armed) must stay within 5% of the same
        # 1M-record ingest with collection off. Same-run ratio, best of
        # a few attempts, like the federate gate below: single pairs on
        # a shared 1-vCPU box jitter more than the budget.
        echo "=== pmu overhead: scopes armed vs off (same-run ratio) ==="
        pmu_ratio_ok=""
        for attempt in 1 2 3 4 5 6; do
            ./build/bench/micro_trace_overhead \
                --benchmark_filter='BM_stream_ingest_pmu' \
                --benchmark_min_time=2x \
                --metrics-out=/tmp/pmu_ratio.json >/dev/null
            if python3 - <<'EOF'
import json
doc = json.load(open("/tmp/pmu_ratio.json"))
t = {m["labels"]["benchmark"]: m["value"]
     for m in doc["metrics"] if m["name"] == "v6_bench_benchmark_seconds"}
off = t["BM_stream_ingest_pmu/0"]
on = t["BM_stream_ingest_pmu/1"]
ok = on <= off * 1.05
print(f"pmu scope overhead {on / off - 1:+.1%} vs scopes-off ingest"
      f" ({'ok' if ok else 'retry'})")
raise SystemExit(0 if ok else 1)
EOF
            then
                pmu_ratio_ok=1
                break
            fi
        done
        rm -f /tmp/pmu_ratio.json
        if [ -z "${pmu_ratio_ok}" ]; then
            echo "pmu scope overhead exceeded 5% in every attempt" >&2
            exit 1
        fi

        # The federation overhead claim: pushing every seal to a loopback
        # aggregator must not meaningfully slow bare full-stream ingest.
        # The ratio is taken within a single run (both variants share one
        # noise window) and the best of a few attempts is gated — ratios
        # of cross-run minimums decouple under the merge ratchet, and a
        # single wall-clock pair on a shared 1-vCPU box jitters ±15%.
        # Budget is 25% wall: on one vCPU the pusher and aggregator
        # threads contend with the shard threads rather than overlap,
        # and the SIMD engine made the bare side faster, so the fixed
        # push cost is a larger fraction (CPU time stays flat).
        echo "=== federate overhead: push vs bare (same-run ratio) ==="
        fed_ratio_ok=""
        for attempt in 1 2 3 4; do
            ./build/bench/micro_federate \
                --benchmark_filter='BM_stream_with_push' \
                --benchmark_min_time=1x \
                --metrics-out=/tmp/fed_ratio.json >/dev/null
            if python3 - <<'EOF'
import json
doc = json.load(open("/tmp/fed_ratio.json"))
t = {m["labels"]["benchmark"]: m["value"]
     for m in doc["metrics"] if m["name"] == "v6_bench_benchmark_seconds"}
bare = t["BM_stream_with_push/0/real_time"]
push = t["BM_stream_with_push/1/real_time"]
ok = push <= bare * 1.25
print(f"federate push overhead {push / bare - 1:+.1%} vs bare ingest"
      f" ({'ok' if ok else 'retry'})")
raise SystemExit(0 if ok else 1)
EOF
            then
                fed_ratio_ok=1
                break
            fi
        done
        rm -f /tmp/fed_ratio.json
        if [ -z "${fed_ratio_ok}" ]; then
            echo "federate push overhead exceeded 25% in every attempt" >&2
            exit 1
        fi

        # SIMD substrate claims, gated on the min-merged numbers: the
        # batch kernels must beat the one-at-a-time address API, the
        # dispatched level must not lose to its own scalar fallback, and
        # the flat store must hold its near-linear ingest scaling.
        # Margins sit well under the quiet-machine ratios (see
        # DESIGN.md section 14) so only a real regression trips them.
        python3 - <<'EOF'
import json

def seconds(path):
    doc = json.load(open(path))
    return {m["labels"]["benchmark"]: m["value"]
            for m in doc["metrics"]
            if m["name"] == "v6_bench_benchmark_seconds"}

t = seconds("BENCH_substrate.json")
item = lambda b: t[b] / 1024.0  # batch kernels run 1024-lane blocks

def claim(label, lhs, rhs, factor):
    assert lhs * factor <= rhs, (
        f"{label}: {lhs:.3g}s * {factor} > {rhs:.3g}s "
        f"(speedup {rhs / lhs:.2f}x, want >= {factor}x)")
    print(f"simd gate ok: {label} {rhs / lhs:.2f}x (want >= {factor}x)")

claim("parse batch vs one-at-a-time", item("BM_parse_batch"), t["BM_parse"], 1.8)
claim("format batch vs one-at-a-time", item("BM_format_batch"), t["BM_format"], 2.0)
claim("classify batch vs one-at-a-time", item("BM_classify_batch"), t["BM_classify"], 3.0)
claim("radix block sort vs std::sort path",
      t["BM_block_sort_unique/100000"], t["BM_address_sort_unique/100000"], 1.2)
claim("block store ingest vs record loop",
      t["BM_observation_store_ingest_block/50000"],
      t["BM_observation_store_ingest/50000"], 1.0)
# The dispatched level must never lose to the portable fallback it
# replaces (equality is fine on machines without AVX2).
for pair in ("parse", "format", "classify"):
    a, s = t[f"BM_{pair}_batch"], t[f"BM_{pair}_batch_scalar"]
    assert a <= s * 1.10, f"{pair}: dispatched {a:.3g}s slower than scalar {s:.3g}s"
# No scaling-shape assertion on 50000/10000: cross-run minimums skew
# the ratio (the short bench catches a quiet scheduler window far more
# often than the long one).  The absolute-time gate above pins the
# flat store's ~6x ingest win over the unordered_map seed directly.

w = seconds("BENCH_wire.json")
claim("wire block decode vs record decode",
      w["BM_wire_decode_block"], w["BM_wire_decode"], 1.3)
# End-to-end ingest is engine/scheduler bound (wall clock on this box
# is dominated by shard-thread scheduling); the block path must at
# least never meaningfully regress against the per-record path.
assert (w["BM_wire_ingest_block/0/real_time"]
        <= w["BM_wire_ingest/0/real_time"] * 1.25), "wire block ingest regressed"
print("simd gate ok: wire block ingest within budget of record path")
EOF

        # Collector smoke: the real binaries end to end over loopback
        # UDP — v6synth records a wire capture, v6stream listens on an
        # ephemeral port (parsed from its stderr), v6wire sends the
        # capture, and a clean SIGTERM must still produce sealed day
        # reports and the final summary on stdout.
        echo "=== collector smoke: loopback UDP e2e ==="
        smoke=$(mktemp -d)
        ./build/tools/v6synth --wire="${smoke}/feed.v6w" \
            --first=360 --last=362 --scale=0.02 --seed=7
        ./build/tools/v6stream --listen --shards=2 \
            >"${smoke}/out.json" 2>"${smoke}/err.txt" &
        stream_pid=$!
        port=""
        for _ in $(seq 1 100); do
            port=$(sed -n 's/^listening on udp port \([0-9]*\)$/\1/p' \
                "${smoke}/err.txt")
            [ -n "${port}" ] && break
            sleep 0.1
        done
        if [ -z "${port}" ]; then
            kill "${stream_pid}" 2>/dev/null || true
            echo "collector smoke: v6stream never reported its port" >&2
            exit 1
        fi
        ./build/tools/v6wire send "${smoke}/feed.v6w" ::1 "${port}"
        sleep 1
        kill -TERM "${stream_pid}"
        wait "${stream_pid}"
        grep -q '"type":"day"' "${smoke}/out.json"
        grep -q '"type":"final"' "${smoke}/out.json"
        grep -q 'collector: .* 0 rejected' "${smoke}/err.txt"
        rm -rf "${smoke}"
        echo "collector smoke passed"

        # PMU smoke: replay a wire capture with --pmu-out and check the
        # exit snapshot end to end. On a box with hardware counters the
        # ingest sites must show a positive IPC; anywhere else the
        # snapshot (and the one-line startup log) must say which tier
        # the probe landed on and why — silent absence is the one
        # failure mode this stage exists to catch.
        echo "=== pmu smoke: v6stream --replay --pmu-out e2e ==="
        smoke=$(mktemp -d)
        ./build/tools/v6synth --wire="${smoke}/feed.v6w" \
            --first=360 --last=362 --scale=0.02 --seed=7
        ./build/tools/v6stream --replay="${smoke}/feed.v6w" --shards=2 \
            --pmu-out="${smoke}/pmu.json" \
            >"${smoke}/out.json" 2>"${smoke}/err.txt"
        grep -q '^pmu: ' "${smoke}/err.txt"
        python3 - "${smoke}/pmu.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
mode, reason = doc["mode"], doc["reason"]
assert mode in ("hardware", "software", "unavailable"), mode
if mode == "hardware":
    ipcs = [s["ipc"] for s in doc["sites"]
            if s["site"] == "shard.ingest_batch" and "ipc" in s]
    assert ipcs and ipcs[0] > 0, f"hardware tier but no ingest ipc: {doc}"
    print(f"pmu smoke ok: hardware counters, ingest ipc {ipcs[0]:.2f}")
else:
    assert reason, f"degraded tier must explain itself: {doc}"
    print(f"pmu smoke ok: {mode} tier ({reason})")
EOF
        rm -rf "${smoke}"
        echo "pmu smoke passed"

        # Restart-resume smoke: the durable flight recorder end to end.
        # Run 1 ingests days 360-362 with --state-dir and an alert rule
        # set, then is SIGTERMed mid-run; run 2 reopens the same state
        # dir, ingests days 363-365, and must serve one continuous
        # /api/series range spanning both runs plus the run-1 alert
        # firing->resolved transitions from the durable event log.
        echo "=== restart-resume smoke: flight recorder + alerts e2e ==="
        smoke=$(mktemp -d)
        ./build/tools/v6synth --wire="${smoke}/feed1.v6w" \
            --first=360 --last=362 --scale=0.02 --seed=7
        ./build/tools/v6synth --wire="${smoke}/feed2.v6w" \
            --first=363 --last=365 --scale=0.02 --seed=8
        cat >"${smoke}/alerts.txt" <<'EOF'
lifecycle_watch event=lifecycle level=info
sane_active series=v6class_active_addresses below=1000000000
EOF
        run_daemon() {  # $1=err-file  $2=out-file  extra args...
            local err=$1 out=$2
            shift 2
            ./build/tools/v6stream --listen --shards=2 --tick=1 \
                --state-dir="${smoke}/state" --alerts="${smoke}/alerts.txt" \
                --metrics-port=0 "$@" >"${out}" 2>"${err}" &
            stream_pid=$!
            udp_port=""
            http_port=""
            for _ in $(seq 1 100); do
                udp_port=$(sed -n 's/^listening on udp port \([0-9]*\)$/\1/p' \
                    "${err}")
                http_port=$(sed -n \
                    's|^metrics on http://0\.0\.0\.0:\([0-9]*\)/metrics.*|\1|p' \
                    "${err}")
                [ -n "${udp_port}" ] && [ -n "${http_port}" ] && return 0
                sleep 0.1
            done
            kill "${stream_pid}" 2>/dev/null || true
            echo "restart smoke: v6stream never reported its ports" >&2
            exit 1
        }
        run_daemon "${smoke}/err1.txt" "${smoke}/out1.json"
        ./build/tools/v6wire send "${smoke}/feed1.v6w" ::1 "${udp_port}"
        sleep 2.5  # two --tick=1 rounds: the lifecycle alert fires, then resolves
        kill -TERM "${stream_pid}"
        wait "${stream_pid}"
        grep -q '"type":"day"' "${smoke}/out1.json"

        run_daemon "${smoke}/err2.txt" "${smoke}/out2.json"
        grep -q 'points recovered' "${smoke}/err2.txt"
        ./build/tools/v6wire send "${smoke}/feed2.v6w" ::1 "${udp_port}"
        sleep 1
        # SIGHUP hot-reloads the alert rules alongside the ASN db.
        kill -HUP "${stream_pid}"
        sleep 0.5
        curl -fsS "http://127.0.0.1:${http_port}/api/series?name=v6class_active_addresses" \
            >"${smoke}/series.json"
        curl -fsS "http://127.0.0.1:${http_port}/api/events?level=info" \
            >"${smoke}/events.json"
        curl -fsS "http://127.0.0.1:${http_port}/alerts" >"${smoke}/alerts.json"
        curl -fsS "http://127.0.0.1:${http_port}/healthz" >"${smoke}/healthz.json"
        kill -TERM "${stream_pid}"
        wait "${stream_pid}"
        grep -q 'reloaded .* alert rules' "${smoke}/err2.txt"
        # One continuous, duplicate-free range spanning both runs. The
        # open day (365) seals only at shutdown, so the live query must
        # cover at least 360..364.
        python3 - "${smoke}/series.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
ts = [p[0] for p in doc["points"]]
assert ts, "no points stored"
assert ts == sorted(set(ts)), f"duplicates or disorder: {ts}"
assert ts == list(range(ts[0], ts[-1] + 1)), f"gap in days: {ts}"
assert ts[0] <= 362 and ts[-1] >= 363, f"range does not span both runs: {ts}"
print(f"series continuity ok: days {ts[0]}..{ts[-1]}")
EOF
        # The run-1 alert transitions survived the restart in the
        # durable event log.
        grep -q '"message":"alert lifecycle_watch firing"' "${smoke}/events.json"
        grep -q '"message":"alert lifecycle_watch resolved"' "${smoke}/events.json"
        grep -q '"name":"lifecycle_watch"' "${smoke}/alerts.json"
        grep -q '"state_dir":' "${smoke}/healthz.json"
        grep -q '"alerts":{"firing":' "${smoke}/healthz.json"
        rm -rf "${smoke}"
        echo "restart-resume smoke passed"

        # Federation smoke: v6agg + two v6stream pushers end to end on
        # loopback. Both collectors replay the SAME capture, so each
        # node's day sketch equals the other's and the fleet union must
        # equal either one exactly — the global estimate matching a
        # per-node estimate IS the exact-union check, to the last digit.
        # Killing one pusher must then drive its node-absence alert to
        # firing within one staleness window + hold-down.
        echo "=== federation smoke: v6agg + two pushers e2e ==="
        smoke=$(mktemp -d)
        ./build/tools/v6synth --wire="${smoke}/feed.v6w" \
            --first=360 --last=362 --scale=0.02 --seed=7
        cat >"${smoke}/fleet-alerts.txt" <<'EOF'
east-gone node=east level=error
west-gone node=west level=error
EOF
        ./build/tools/v6agg --port=0 --metrics-port=0 \
            --state-dir="${smoke}/fleet" --alerts="${smoke}/fleet-alerts.txt" \
            --staleness=2 --tick=1 2>"${smoke}/agg.err" &
        agg_pid=$!
        agg_port=""
        agg_http=""
        for _ in $(seq 1 100); do
            agg_port=$(sed -n 's/^aggregating on tcp port \([0-9]*\)$/\1/p' \
                "${smoke}/agg.err")
            agg_http=$(sed -n \
                's|^metrics on http://0\.0\.0\.0:\([0-9]*\)/metrics.*|\1|p' \
                "${smoke}/agg.err")
            [ -n "${agg_port}" ] && [ -n "${agg_http}" ] && break
            sleep 0.1
        done
        if [ -z "${agg_port}" ] || [ -z "${agg_http}" ]; then
            kill "${agg_pid}" 2>/dev/null || true
            echo "federation smoke: v6agg never reported its ports" >&2
            exit 1
        fi
        run_pusher() {  # $1=node-name  $2=err-file
            ./build/tools/v6stream --listen --shards=2 --tick=1 \
                --push="127.0.0.1:${agg_port}" --node="$1" \
                >/dev/null 2>"$2" &
            pusher_pid=$!
            pusher_udp=""
            for _ in $(seq 1 100); do
                pusher_udp=$(sed -n \
                    's/^listening on udp port \([0-9]*\)$/\1/p' "$2")
                [ -n "${pusher_udp}" ] && return 0
                sleep 0.1
            done
            kill "${pusher_pid}" 2>/dev/null || true
            echo "federation smoke: pusher $1 never reported its port" >&2
            exit 1
        }
        run_pusher east "${smoke}/east.err"
        east_pid=${pusher_pid}
        east_udp=${pusher_udp}
        run_pusher west "${smoke}/west.err"
        west_pid=${pusher_pid}
        west_udp=${pusher_udp}
        ./build/tools/v6wire send "${smoke}/feed.v6w" ::1 "${east_udp}"
        ./build/tools/v6wire send "${smoke}/feed.v6w" ::1 "${west_udp}"
        sleep 1.5  # drain + a tick: both nodes push status and sealed days
        # Kill east: its shutdown seals (and pushes) the open day 362,
        # which settles the fleet's day-361 union into the tsdb; then
        # the staleness window runs out and east-gone must fire.
        kill -TERM "${east_pid}"
        wait "${east_pid}"
        firing=""
        for _ in $(seq 1 60); do
            if curl -fsS "http://127.0.0.1:${agg_http}/alerts" \
                | grep -q '"name":"east-gone","state":"firing"'; then
                firing=yes
                break
            fi
            sleep 0.25
        done
        if [ -z "${firing}" ]; then
            echo "federation smoke: east-gone never reached firing" >&2
            curl -fsS "http://127.0.0.1:${agg_http}/alerts" >&2 || true
            kill "${west_pid}" "${agg_pid}" 2>/dev/null || true
            exit 1
        fi
        curl -fsS "http://127.0.0.1:${agg_http}/api/nodes" \
            >"${smoke}/nodes.json"
        fetch_series() {  # $1=name  $2=label  $3=out
            curl -fsS "http://127.0.0.1:${agg_http}/api/series?name=$1&label=$2" \
                >"$3"
        }
        fetch_series v6fleet_day_distinct_addresses_estimate "" \
            "${smoke}/global.json"
        fetch_series v6class_day_distinct_addresses_estimate node%3Deast \
            "${smoke}/east.json"
        fetch_series v6class_day_distinct_addresses_estimate node%3Dwest \
            "${smoke}/west.json"
        python3 - "${smoke}" <<'EOF'
import json, sys
d = sys.argv[1]
nodes = json.load(open(f"{d}/nodes.json"))
by = {n["node"]: n for n in nodes["nodes"]}
assert set(by) == {"east", "west"}, f"registry: {sorted(by)}"
assert not by["east"]["fresh"], "east should be stale after SIGTERM"
assert by["west"]["fresh"], "west should still be fresh"
glob = {p[0]: p[1] for p in json.load(open(f"{d}/global.json"))["points"]}
east = {p[0]: p[1] for p in json.load(open(f"{d}/east.json"))["points"]}
west = {p[0]: p[1] for p in json.load(open(f"{d}/west.json"))["points"]}
assert 361 in glob, f"global day series missing 361: {sorted(glob)}"
assert east[361] == west[361], "identical feeds must give identical sketches"
# Identical feeds: union(east, west) == east == west, so the fleet
# estimate must equal the per-node one EXACTLY — register-level union,
# not approximate agreement.
assert glob[361] == east[361], f"union not exact: {glob[361]} vs {east[361]}"
print(f"federation union exact: day 361 distinct ~= {glob[361]}")
EOF
        kill -TERM "${west_pid}"
        wait "${west_pid}"
        kill -TERM "${agg_pid}"
        wait "${agg_pid}"
        grep -q 'aggregated .* frames (0 rejected)' "${smoke}/agg.err"
        rm -rf "${smoke}"
        echo "federation smoke passed"
    fi
done

echo "=== all presets passed: ${presets[*]} ==="
