#!/usr/bin/env python3
"""Bench regression gate: compare v6::obs registry JSON dumps.

Usage: bench_gate.py BASELINE.json FRESH.json... [--threshold=1.25]
                     [--merge-out=FILE]

The files are the BENCH_<name>.json dumps the micro benches write at
exit. Benchmarks are matched by the `benchmark` label of the
v6_bench_benchmark_seconds gauges. When several FRESH files are given
(repeated runs), the per-benchmark minimum is used — the minimum over
repetitions estimates the noise-free cost, since scheduler and cache
interference only ever add time. The gate fails (exit 1) when any
benchmark present on both sides runs slower than baseline * threshold;
benchmarks only present on one side are reported but never fail the
gate (they are new, removed, or renamed — the refreshed baseline picks
them up).

--merge-out=FILE writes the first FRESH dump with every
v6_bench_benchmark_seconds value replaced by the cross-run minimum —
the file check.sh commits back as the refreshed baseline.

Microbenchmark timings on a shared box are noisy; best-of-N plus 25%
headroom passes turbo/cache jitter and still catches a real
algorithmic regression (the ablations in DESIGN.md differ by 2-10x).
"""
import json
import sys


def load_seconds(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for metric in doc.get("metrics", []):
        if metric.get("name") != "v6_bench_benchmark_seconds":
            continue
        bench = metric.get("labels", {}).get("benchmark")
        value = metric.get("value")
        if bench and isinstance(value, (int, float)) and value > 0:
            out[bench] = float(value)
    return out


def main(argv):
    threshold = 1.25
    merge_out = None
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--merge-out="):
            merge_out = arg.split("=", 1)[1]
        else:
            paths.append(arg)
    if len(paths) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_path, fresh_paths = paths[0], paths[1:]
    base = load_seconds(base_path)
    fresh = {}
    for path in fresh_paths:
        for bench, value in load_seconds(path).items():
            fresh[bench] = min(value, fresh.get(bench, value))

    if merge_out:
        with open(fresh_paths[0]) as f:
            doc = json.load(f)
        for metric in doc.get("metrics", []):
            if metric.get("name") != "v6_bench_benchmark_seconds":
                continue
            bench = metric.get("labels", {}).get("benchmark")
            if bench in fresh:
                metric["value"] = fresh[bench]
        with open(merge_out, "w") as f:
            json.dump(doc, f, separators=(",", ":"))

    if not base:
        print(f"bench gate: no benchmarks in baseline {base_path}; "
              "skipping comparison")
        return 0
    if not fresh:
        print("bench gate: no benchmarks in fresh run(s)", file=sys.stderr)
        return 1

    regressions = []
    for bench in sorted(base.keys() & fresh.keys()):
        # Wall-clock benchmarks (.../real_time) time thread scheduling,
        # not just the code under test: on a loaded single-vCPU box the
        # same binary swings far past 25% run to run while its CPU time
        # barely moves.  Give them extra headroom — the regressions
        # these gates exist to catch (DESIGN.md ablations) are 2-10x.
        limit = threshold * (1.6 if "/real_time" in bench else 1.0)
        ratio = fresh[bench] / base[bench]
        if ratio > limit:
            regressions.append((bench, base[bench], fresh[bench], ratio))
    for bench in sorted(fresh.keys() - base.keys()):
        print(f"bench gate: new benchmark (not gated): {bench}")
    for bench in sorted(base.keys() - fresh.keys()):
        print(f"bench gate: benchmark vanished (not gated): {bench}")

    if regressions:
        print(f"bench gate: FAIL — {len(regressions)} benchmark(s) slower "
              f"than {threshold:.2f}x baseline:", file=sys.stderr)
        for bench, b, f, ratio in regressions:
            print(f"  {bench}: {b:.3e}s -> {f:.3e}s ({ratio:.2f}x)",
                  file=sys.stderr)
        return 1
    compared = len(base.keys() & fresh.keys())
    print(f"bench gate: OK — {compared} benchmark(s) within "
          f"{threshold:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
