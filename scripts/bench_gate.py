#!/usr/bin/env python3
"""Bench regression gate: compare v6::obs registry JSON dumps.

Usage: bench_gate.py BASELINE.json FRESH.json... [--threshold=1.25]
                     [--ipc-threshold=0.75] [--merge-out=FILE]

The files are the BENCH_<name>.json dumps the micro benches write at
exit. Benchmarks are matched by the `benchmark` label of the
v6_bench_benchmark_seconds gauges; where the run had hardware perf
counters, the same label also carries v6_bench_ipc and
v6_bench_cache_misses_per_item. When several FRESH files are given
(repeated runs), the per-benchmark minimum of seconds (and
cache-misses-per-item) and maximum of IPC are used — the extreme over
repetitions estimates the noise-free figure, since scheduler and cache
interference only ever add time, add misses, and depress IPC.

Two gates run over benchmarks present on both sides:

  time — fresh seconds > baseline * --threshold fails (x1.6 extra
         headroom for /real_time wall-clock benchmarks);
  ipc  — fresh IPC < baseline IPC * --ipc-threshold fails. IPC is far
         steadier than wall time on a shared box (it divides out
         frequency scaling and steal time), so a 25% drop is a real
         code-quality regression — a kernel falling off its vector
         path, a new dependent chain — even when the time gate's
         generous headroom still passes. Benchmarks missing IPC on
         either side (no hardware PMU there) are simply not IPC-gated.

Benchmarks only present on one side are reported but never fail the
gate (they are new, removed, or renamed — the refreshed baseline picks
them up). A per-benchmark delta table (baseline vs fresh vs ratio,
worst ratio first) prints on success as well as failure, so a bench run
that passes still documents where the time went.

--merge-out=FILE writes the first FRESH dump with every
v6_bench_benchmark_seconds value replaced by the cross-run minimum (and
IPC by the maximum, cache-misses-per-item by the minimum) — the file
check.sh commits back as the refreshed baseline.

Microbenchmark timings on a shared box are noisy; best-of-N plus 25%
headroom passes turbo/cache jitter and still catches a real
algorithmic regression (the ablations in DESIGN.md differ by 2-10x).
"""
import json
import sys

# metric name -> how repeated fresh runs fold (min = noise only adds,
# max = noise only subtracts).
METRICS = {
    "v6_bench_benchmark_seconds": min,
    "v6_bench_ipc": max,
    "v6_bench_cache_misses_per_item": min,
}


def load_metrics(path):
    """{metric_name: {benchmark: value}} for the metrics we gate on."""
    with open(path) as f:
        doc = json.load(f)
    out = {name: {} for name in METRICS}
    for metric in doc.get("metrics", []):
        name = metric.get("name")
        if name not in METRICS:
            continue
        bench = metric.get("labels", {}).get("benchmark")
        value = metric.get("value")
        if bench and isinstance(value, (int, float)) and value > 0:
            out[name][bench] = float(value)
    return out


def fold_fresh(paths):
    fresh = {name: {} for name in METRICS}
    for path in paths:
        loaded = load_metrics(path)
        for name, fold in METRICS.items():
            for bench, value in loaded[name].items():
                table = fresh[name]
                table[bench] = (fold(value, table[bench])
                                if bench in table else value)
    return fresh


def print_table(rows, ipc_rows):
    """The delta table: worst time ratio first, IPC column when known."""
    if not rows:
        return
    width = max(len(r[0]) for r in rows)
    print(f"bench gate: {'benchmark':<{width}}  {'baseline':>10}  "
          f"{'fresh':>10}  {'ratio':>6}  {'ipc b->f':>14}")
    for bench, base_s, fresh_s, ratio in rows:
        ipc = ipc_rows.get(bench)
        ipc_text = f"{ipc[0]:5.2f} -> {ipc[1]:5.2f}" if ipc else "-"
        print(f"bench gate: {bench:<{width}}  {base_s:>10.3e}  "
              f"{fresh_s:>10.3e}  {ratio:>5.2f}x  {ipc_text:>14}")


def main(argv):
    threshold = 1.25
    ipc_threshold = 0.75
    merge_out = None
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--ipc-threshold="):
            ipc_threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--merge-out="):
            merge_out = arg.split("=", 1)[1]
        else:
            paths.append(arg)
    if len(paths) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_path, fresh_paths = paths[0], paths[1:]
    base = load_metrics(base_path)
    fresh = fold_fresh(fresh_paths)
    base_s = base["v6_bench_benchmark_seconds"]
    fresh_s = fresh["v6_bench_benchmark_seconds"]
    base_ipc = base["v6_bench_ipc"]
    fresh_ipc = fresh["v6_bench_ipc"]

    if merge_out:
        with open(fresh_paths[0]) as f:
            doc = json.load(f)
        for metric in doc.get("metrics", []):
            name = metric.get("name")
            if name not in METRICS:
                continue
            bench = metric.get("labels", {}).get("benchmark")
            if bench in fresh[name]:
                metric["value"] = fresh[name][bench]
        with open(merge_out, "w") as f:
            json.dump(doc, f, separators=(",", ":"))

    if not base_s:
        print(f"bench gate: no benchmarks in baseline {base_path}; "
              "skipping comparison")
        return 0
    if not fresh_s:
        print("bench gate: no benchmarks in fresh run(s)", file=sys.stderr)
        return 1

    shared = base_s.keys() & fresh_s.keys()
    rows = sorted(((b, base_s[b], fresh_s[b], fresh_s[b] / base_s[b])
                   for b in shared),
                  key=lambda r: -r[3])
    ipc_rows = {b: (base_ipc[b], fresh_ipc[b])
                for b in shared if b in base_ipc and b in fresh_ipc}
    print_table(rows, ipc_rows)

    slow = []
    for bench, b, f, ratio in rows:
        # Wall-clock benchmarks (.../real_time) time thread scheduling,
        # not just the code under test: on a loaded single-vCPU box the
        # same binary swings far past 25% run to run while its CPU time
        # barely moves.  Give them extra headroom — the regressions
        # these gates exist to catch (DESIGN.md ablations) are 2-10x.
        limit = threshold * (1.6 if "/real_time" in bench else 1.0)
        if ratio > limit:
            slow.append((bench, b, f, ratio))
    starved = [(b, *ipc_rows[b]) for b in sorted(ipc_rows)
               if ipc_rows[b][1] < ipc_rows[b][0] * ipc_threshold]
    for bench in sorted(fresh_s.keys() - base_s.keys()):
        print(f"bench gate: new benchmark (not gated): {bench}")
    for bench in sorted(base_s.keys() - fresh_s.keys()):
        print(f"bench gate: benchmark vanished (not gated): {bench}")

    if slow or starved:
        if slow:
            print(f"bench gate: FAIL — {len(slow)} benchmark(s) slower "
                  f"than {threshold:.2f}x baseline:", file=sys.stderr)
            for bench, b, f, ratio in slow:
                print(f"  {bench}: {b:.3e}s -> {f:.3e}s ({ratio:.2f}x)",
                      file=sys.stderr)
        if starved:
            print(f"bench gate: FAIL — {len(starved)} benchmark(s) below "
                  f"{ipc_threshold:.2f}x baseline IPC:", file=sys.stderr)
            for bench, b, f in starved:
                print(f"  {bench}: ipc {b:.2f} -> {f:.2f} "
                      f"({f / b:.2f}x)", file=sys.stderr)
        return 1
    gated = f"{len(shared)} benchmark(s) within {threshold:.2f}x of baseline"
    if ipc_rows:
        gated += (f", {len(ipc_rows)} ipc-gated at "
                  f">= {ipc_threshold:.2f}x")
    print(f"bench gate: OK — {gated}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
