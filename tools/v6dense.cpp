// v6dense — dense-prefix discovery (the paper's n@/p-dense classes).
//
//   v6dense --class=2@112 [--class=3@120 ...] [file]
//       Table-3-style row per class.
//   v6dense --class=2@112 --list [file]
//       list the dense prefixes of the first class.
//   v6dense --class=2@112 --targets=N [file]
//       expand the first class's prefixes into up to N scan targets.
//   v6dense --class=2@112 --least-specific [file]
//       use the general densify (least-specific covering prefixes).
#include "tool_common.h"
#include "v6class/analysis/reports.h"
#include "v6class/spatial/density.h"

using namespace v6;

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    std::vector<std::string> class_texts;
    bool list = false, least_specific = false, targets_given = false;
    std::string targets_text = "65536";
    tools::flag_table table(
        "usage: v6dense --class=N@P [--class=...] [--list | --targets=N]\n"
        "               [--least-specific] [file]\n"
        "dense-prefix discovery over an address set");
    table.add("class", &class_texts, "density class N@P (e.g. 2@112; repeatable)")
        .add("list", &list, "list the dense prefixes of the first class")
        .add("targets", &targets_given, &targets_text,
             "expand the first class into up to N scan targets")
        .add("least-specific", &least_specific,
             "use the general densify (least-specific covering prefixes)");
    if (flags.has("help")) {
        std::fputs(table.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = table.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    const tools::obs_exporter obs_dump(flags);
    std::vector<std::pair<std::uint64_t, unsigned>> classes;
    for (const std::string& text : class_texts) {
        const auto parsed = tools::parse_density_class(text);
        if (!parsed) {
            std::fprintf(stderr, "error: bad --class=%s (want e.g. 2@112)\n",
                         text.c_str());
            return 1;
        }
        classes.push_back(*parsed);
    }
    if (classes.empty()) classes.push_back({2, 112});

    const auto addrs = tools::read_input_addresses(flags);
    if (!addrs) return 1;

    radix_tree tree;
    for (const address& a : *addrs) tree.add(a);

    const auto [n0, p0] = classes.front();
    if (list || targets_given) {
        const std::vector<dense_prefix> dense =
            least_specific ? tree.densify(n0, p0)
                           : tree.dense_prefixes_at(n0, p0);
        if (targets_given) {
            const auto limit =
                static_cast<std::size_t>(std::atol(targets_text.c_str()));
            for (const address& t : expand_scan_targets(dense, limit))
                std::printf("%s\n", t.to_string().c_str());
        } else {
            for (const dense_prefix& d : dense)
                std::printf("%s %llu\n", d.pfx.to_string().c_str(),
                            static_cast<unsigned long long>(d.observed));
        }
        return 0;
    }

    std::fputs(render_table3(compute_density_table(tree, classes), "Observed")
                   .c_str(),
               stdout);
    return 0;
}
