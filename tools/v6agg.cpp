// v6agg — the fleet telemetry aggregator: one process that N federated
// v6stream collectors push V6TEL1 frames to (--push=HOST:PORT on the
// collector side), turning isolated per-vantage-point telemetry into a
// fleet view.
//
//   v6agg [--port=P] [--metrics-port=P] [--state-dir=DIR]
//         [--alerts=FILE] [--alerts-notify=CMD] [--staleness=SECONDS]
//         [--tick=SECONDS] [--keep-days=N]
//
// What it maintains:
//
//   * a per-node registry (last-seen, staleness, frame/record counts,
//     sealed day, sequence gaps), served at GET /api/nodes and as the
//     fleet panel of GET /dashboard;
//   * per-node series: every pushed seal series lands in the tsdb
//     under a `node=<id>` label, queryable via GET /api/series;
//   * global distinct-address estimates: pushed day HLL sketches are
//     union-merged register-wise across nodes — exactly the merge the
//     paper performs across vantage points — and the per-day global
//     estimates are exported as gauges, flushed to the tsdb, and shown
//     on the dashboard next to the per-node values;
//   * alerting: --alerts rules evaluate against the fleet sampler, so
//     `node=<id>` absence rules fire within one hold-down of a
//     collector going silent. SIGHUP hot-reloads the rules file.
//
// Like v6stream, SIGINT/SIGTERM runs an ordered shutdown: the server
// drains, the newest day's global estimates flush, the tsdb commits.
#include <chrono>
#include <csignal>
#include <ctime>
#include <filesystem>
#include <memory>
#include <thread>

#include "tool_common.h"
#include "v6class/obs/alert.h"
#include "v6class/obs/dashboard.h"
#include "v6class/obs/federate.h"
#include "v6class/obs/http.h"
#include "v6class/obs/tsdb.h"

using namespace v6;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

void handle_stop(int) { g_stop = 1; }
void handle_reload(int) { g_reload = 1; }

/// One-line rule summary for the dashboard alert panel (mirrors
/// v6stream's).
std::string alert_detail(const obs::alert_rule& r) {
    std::string out;
    switch (r.cond) {
        case obs::alert_cond::above:
            out = r.series + " above " + obs::event_field_number(r.threshold);
            break;
        case obs::alert_cond::below:
            out = r.series + " below " + obs::event_field_number(r.threshold);
            break;
        case obs::alert_cond::delta:
            out = r.series + " delta " + obs::event_field_number(r.threshold);
            break;
        case obs::alert_cond::absent:
            out = r.series + " absent " + obs::event_field_number(r.threshold);
            break;
        case obs::alert_cond::event:
            out = "event " + r.event_kind;
            break;
    }
    if (!r.label.empty()) out += " {" + r.label + "}";
    if (r.hold) out += " for " + std::to_string(r.hold);
    return out;
}

/// The alert sampler over the aggregator: one snapshot of the node
/// registry per evaluation (captured here, never under the alert
/// mutex against a lock the aggregator's rx thread could hold while
/// calling out — the aggregator mutex is a leaf, but the snapshot
/// keeps the evaluation consistent too).
obs::alert_engine::sampler
fleet_sampler(const obs::federate::telemetry_aggregator& agg) {
    struct snap_t {
        std::vector<obs::federate::node_status> nodes;
        std::int64_t day;
        std::optional<double> addrs, p48s, p64s;
    };
    auto snap = std::make_shared<const snap_t>(snap_t{
        agg.nodes(), agg.newest_day(),
        agg.global_estimate(agg.newest_day(), net::kTelSketchDayAddresses),
        agg.global_estimate(agg.newest_day(), net::kTelSketchDay48s),
        agg.global_estimate(agg.newest_day(), net::kTelSketchDay64s)});
    return [snap](const std::string& series,
                  const std::string& label) -> std::optional<double> {
        if (series == "v6fleet_node_up") {
            for (const obs::federate::node_status& n : snap->nodes)
                if ("node=" + n.name == label)
                    return n.fresh ? std::optional<double>(1.0) : std::nullopt;
            return std::nullopt;  // unknown node == absent
        }
        if (series == "v6fleet_nodes") {
            double fresh = 0;
            for (const obs::federate::node_status& n : snap->nodes)
                if (n.fresh) ++fresh;
            return fresh;
        }
        if (series == "v6fleet_day_distinct_addresses_estimate")
            return snap->addrs;
        if (series == "v6fleet_day_distinct_48s_estimate") return snap->p48s;
        if (series == "v6fleet_day_distinct_64s_estimate") return snap->p64s;
        return std::nullopt;
    };
}

/// The /dashboard model: fleet panel + global-estimate history charts.
obs::dashboard_model build_dashboard(
    const obs::federate::telemetry_aggregator& agg,
    const obs::metrics_server& server, const obs::tsdb::database* tsdb,
    const obs::alert_engine* alerts) {
    obs::dashboard_model model;
    model.title = "v6agg fleet telemetry";
    model.status = server.state();
    model.uptime_seconds = server.uptime_seconds();
    model.show_nodes = true;

    const std::vector<obs::federate::node_status> nodes = agg.nodes();
    std::size_t fresh = 0;
    std::uint64_t records = 0;
    for (const obs::federate::node_status& n : nodes) {
        if (n.fresh) ++fresh;
        records += n.records;
        obs::dashboard_node row;
        row.name = n.name;
        row.fresh = n.fresh;
        row.age_seconds = n.age_seconds;
        row.sealed_day = n.sealed_day;
        row.records = n.records;
        row.frames = n.frames;
        if (n.seq_gaps)
            row.detail = std::to_string(n.seq_gaps) + " seq gaps";
        if (n.open_day >= 0)
            row.detail += (row.detail.empty() ? "" : ", ") + std::string("open day ") +
                          std::to_string(n.open_day);
        model.nodes.push_back(std::move(row));
    }

    const net::tel_decode_stats codec = agg.decode_stats();
    const std::int64_t day = agg.newest_day();
    model.stats = {
        {"nodes", std::to_string(nodes.size())},
        {"fresh", std::to_string(fresh)},
        {"fleet records", std::to_string(records)},
        {"frames", std::to_string(codec.frames)},
        {"rejected", std::to_string(codec.rejected())},
        {"newest day", day < 0 ? "-" : std::to_string(day)},
    };
    if (const auto est = agg.global_estimate(day, net::kTelSketchDayAddresses))
        model.stats.push_back(
            {"global distinct /128s", obs::dashboard_value(*est)});
    if (const auto est = agg.global_estimate(day, net::kTelSketchDay64s))
        model.stats.push_back(
            {"global distinct /64s", obs::dashboard_value(*est)});

    model.links = {{"/metrics", "metrics"},
                   {"/api/nodes", "nodes"},
                   {"/healthz", "healthz"}};
    if (tsdb) model.links.push_back({"/api/series", "series"});
    if (alerts) model.links.push_back({"/alerts", "alerts"});

    // Global vs per-node history: the flushed fleet estimate series
    // plus each node's own pushed estimate, so divergence (a vantage
    // point seeing addresses no one else does) is visible at a glance.
    if (tsdb) {
        constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
        constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
        const auto add_chart = [&](const std::string& name,
                                   const std::string& label,
                                   const std::string& help) {
            const std::vector<obs::tsdb::point> pts =
                tsdb->query(name, label, kMin, kMax);
            if (pts.empty()) return;
            obs::dashboard_chart chart;
            chart.name = label.empty() ? name : name + "{" + label + "}";
            chart.help = help;
            chart.points.reserve(pts.size());
            for (const obs::tsdb::point& p : pts)
                chart.points.push_back({p.ts, p.value});
            model.charts.push_back(std::move(chart));
        };
        add_chart("v6fleet_day_distinct_addresses_estimate", "",
                  "global distinct /128s per day (exact cross-node union)");
        add_chart("v6fleet_day_distinct_64s_estimate", "",
                  "global distinct /64s per day (exact cross-node union)");
        for (const obs::federate::node_status& n : nodes)
            add_chart("v6class_day_distinct_addresses_estimate",
                      "node=" + n.name,
                      "node " + n.name + " distinct /128s per day");
    }

    if (alerts) {
        model.show_alerts = true;
        for (const obs::alert_engine::status& s : alerts->snapshot()) {
            obs::dashboard_alert row;
            row.name = s.rule.name;
            row.state = obs::alert_state_name(s.state);
            row.detail = alert_detail(s.rule);
            if (s.value) {
                row.value = *s.value;
                row.has_value = true;
            }
            model.alerts.push_back(std::move(row));
        }
    }
    return model;
}

/// Applies a pending SIGHUP: hot-reloads the alert rules file,
/// preserving state for definition-identical rules (v6stream's
/// contract).
void maybe_reload(obs::alert_engine* alerts, const std::string& alerts_path) {
    if (!g_reload) return;
    g_reload = 0;
    if (!alerts || alerts_path.empty()) return;
    std::string error;
    if (alerts->load_file(alerts_path, &error)) {
        std::fprintf(stderr, "reloaded %s: %zu alert rules\n",
                     alerts_path.c_str(), alerts->rule_count());
        obs::event_log::global().log(
            obs::event_level::info, "lifecycle", "alert rules reloaded",
            {{"rules", obs::event_field_number(
                           static_cast<double>(alerts->rule_count()))}});
    } else {
        std::fprintf(stderr,
                     "warning: reload of alert rules failed (%s); keeping "
                     "previous rules\n",
                     error.c_str());
    }
}

}  // namespace

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    bool port_given = false, metrics_given = false;
    std::string port_text = "0", metrics_text = "9200";
    std::string state_dir, alerts_path, alerts_notify;
    double staleness_seconds = 10, tick_seconds = 2;
    long keep_days = 4;
    std::size_t retain_bytes = 0;
    tools::flag_table cli(
        "usage: v6agg [--port=P] [--metrics-port=P] [--state-dir=DIR]\n"
        "             [--alerts=FILE] [--alerts-notify=CMD]\n"
        "             [--staleness=SECONDS] [--tick=SECONDS]\n"
        "             [--keep-days=N]\n"
        "fleet telemetry aggregator: ingests V6TEL1 pushes from\n"
        "`v6stream --push`, tracks per-node health, merges series into a\n"
        "flight recorder under node= labels, and maintains global\n"
        "distinct-address estimates by exact cross-node HLL union");
    cli.add("port", &port_given, &port_text,
            "TCP port collectors push to (default: ephemeral, printed to\n"
            "stderr)")
        .add("metrics-port", &metrics_given, &metrics_text,
             "serve /metrics /healthz /dashboard /api/nodes /api/series on\n"
             "0.0.0.0:P")
        .add("state-dir", &state_dir,
             "durable fleet flight recorder under DIR/tsdb (per-node\n"
             "series + flushed global estimates)")
        .add("alerts", &alerts_path,
             "alert rules file; node=<id> rules fire when a collector\n"
             "goes silent; SIGHUP hot-reloads it")
        .add("alerts-notify", &alerts_notify,
             "shell command run on alert firing/resolved transitions")
        .add("staleness", &staleness_seconds,
             "seconds without a frame before a node counts stale\n"
             "(default 10)")
        .add("tick", &tick_seconds,
             "alert evaluation / tsdb commit period in seconds (default 2)")
        .add("keep-days", &keep_days,
             "newest day-sketch windows kept for the global union\n"
             "(default 4)")
        .add("retain-bytes", &retain_bytes,
             "tsdb retention cap in bytes across sealed segments (0 = keep)");
    if (flags.has("help")) {
        std::fputs(cli.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = cli.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    tools::obs_exporter obs_dump(flags);

    std::signal(SIGINT, handle_stop);
    std::signal(SIGTERM, handle_stop);
    std::signal(SIGHUP, handle_reload);

    obs::registry& reg = obs::registry::global();

    // Flight recorder first (the aggregator writes into it).
    std::unique_ptr<obs::tsdb::database> tsdb;
    if (!state_dir.empty()) {
        obs::tsdb::options topt;
        topt.metrics = &reg;
        topt.retain_bytes = retain_bytes;
        std::string error;
        tsdb = obs::tsdb::database::open(
            (std::filesystem::path(state_dir) / "tsdb").string(), topt, &error);
        if (!tsdb) {
            std::fprintf(stderr, "error: cannot open state dir %s: %s\n",
                         state_dir.c_str(), error.c_str());
            return 1;
        }
        std::fprintf(stderr, "flight recorder %s: %llu points recovered\n",
                     tsdb->dir().c_str(),
                     static_cast<unsigned long long>(tsdb->recovered_points()));
    }

    obs::federate::telemetry_aggregator::config acfg;
    acfg.port = static_cast<std::uint16_t>(std::atol(port_text.c_str()));
    acfg.staleness = std::chrono::milliseconds(
        static_cast<long>(staleness_seconds * 1000));
    acfg.metrics = &reg;
    acfg.events = &obs::event_log::global();
    acfg.tsdb = tsdb.get();
    acfg.keep_days = static_cast<int>(keep_days);
    obs::federate::telemetry_aggregator agg(acfg);
    std::string error;
    if (!agg.start(&error)) {
        std::fprintf(stderr, "error: aggregator: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr, "aggregating on tcp port %u\n",
                 static_cast<unsigned>(agg.port()));
    std::fflush(stderr);

    // Alert rules (optional): startup parse errors are fatal, failed
    // SIGHUP reloads keep the previous rules (v6stream's contract).
    std::optional<obs::alert_engine> alerts;
    if (!alerts_path.empty()) {
        alerts.emplace(&reg, &obs::event_log::global());
        if (!alerts->load_file(alerts_path, &error)) {
            std::fprintf(stderr, "error: cannot load %s: %s\n",
                         alerts_path.c_str(), error.c_str());
            return 1;
        }
        if (!alerts_notify.empty()) alerts->set_notify_command(alerts_notify);
        std::fprintf(stderr, "loaded %s: %zu alert rules (SIGHUP reloads)\n",
                     alerts_path.c_str(), alerts->rule_count());
    }
    obs::alert_engine* alert_ptr = alerts ? &*alerts : nullptr;

    obs::metrics_server server;
    if (metrics_given) {
        server.set_health_payload([&agg, alert_ptr] {
            const std::vector<obs::federate::node_status> nodes = agg.nodes();
            std::size_t fresh = 0;
            for (const obs::federate::node_status& n : nodes)
                if (n.fresh) ++fresh;
            std::string out = "\"nodes\":" + std::to_string(nodes.size()) +
                              ",\"fresh\":" + std::to_string(fresh) +
                              ",\"newest_day\":" +
                              std::to_string(agg.newest_day());
            if (alert_ptr)
                out += ",\"alerts\":{\"firing\":" +
                       std::to_string(alert_ptr->firing_count()) +
                       ",\"pending\":" +
                       std::to_string(alert_ptr->pending_count()) + "}";
            return out;
        });
        server.set_dashboard([&agg, &server, &tsdb, alert_ptr] {
            return obs::render_dashboard(
                build_dashboard(agg, server, tsdb.get(), alert_ptr));
        });
        agg.register_http(server);
        if (tsdb) obs::tsdb::register_history_api(server, tsdb.get());
        if (alert_ptr)
            server.add_handler("/alerts", [alert_ptr](const obs::query_params&) {
                obs::http_reply reply;
                reply.body = "{\"firing\":" +
                             std::to_string(alert_ptr->firing_count()) +
                             ",\"pending\":" +
                             std::to_string(alert_ptr->pending_count()) +
                             ",\"evaluations\":" +
                             std::to_string(alert_ptr->evaluations()) +
                             ",\"rules\":" + alert_ptr->status_json() + "}";
                return reply;
            });
        const auto port =
            static_cast<std::uint16_t>(std::atol(metrics_text.c_str()));
        if (!server.start(port, &reg, &error)) {
            std::fprintf(stderr, "error: metrics server: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "metrics on http://0.0.0.0:%u/metrics, fleet dashboard "
                     "on http://0.0.0.0:%u/dashboard\n",
                     static_cast<unsigned>(server.port()),
                     static_cast<unsigned>(server.port()));
        std::fflush(stderr);
    }

    obs::event_log::global().log(obs::event_level::info, "lifecycle",
                                 "v6agg started", {});

    // Main loop: service reloads, evaluate alerts, commit the recorder.
    auto last_tick = std::chrono::steady_clock::now();
    while (!g_stop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        maybe_reload(alert_ptr, alerts_path);
        const auto now = std::chrono::steady_clock::now();
        if (tick_seconds > 0 &&
            now - last_tick >= std::chrono::duration<double>(tick_seconds)) {
            last_tick = now;
            if (alert_ptr)
                alert_ptr->evaluate(fleet_sampler(agg),
                                    static_cast<std::int64_t>(
                                        std::time(nullptr)));
            if (tsdb) tsdb->commit();
        }
    }

    // Ordered shutdown: drain, stop ingest (flushes the newest day's
    // global estimates and commits), then stop serving and dump.
    server.set_state("draining");
    agg.stop();
    const net::tel_decode_stats codec = agg.decode_stats();
    std::fprintf(stderr, "aggregated %llu frames (%llu rejected)\n",
                 static_cast<unsigned long long>(codec.frames),
                 static_cast<unsigned long long>(codec.rejected()));
    server.stop();
    obs_dump.write();
    return 0;
}
