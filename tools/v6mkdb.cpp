// v6mkdb — build (and inspect) the binary ASN/geo enrichment database
// v6stream loads with --asn-db and hot-reloads on SIGHUP.
//
//   v6mkdb --in=SRC --out=DB      compile SRC into the binary db
//   v6mkdb --dump=DB              print a db back as source lines
//
// SRC is RIR-style CSV or route-dump text: "prefix asn [country]" per
// line, comma or whitespace separated ("AS64500" accepted; '#' comments
// and blank lines tolerated; duplicate prefixes keep the last line, so
// a delta file can be appended to a base dump). `v6synth --routes`
// writes a compatible routes.txt. The build is offline and the write is
// atomic (tmp + rename), so regenerating the db under a live collector
// and SIGHUPing it is always safe — the xenoeye geodb workflow.
#include "tool_common.h"
#include "v6class/net/enrich.h"

using namespace v6;

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    std::string in, out, dump;
    tools::flag_table cli(
        "usage: v6mkdb --in=SRC --out=DB\n"
        "       v6mkdb --dump=DB\n"
        "compile \"prefix asn [country]\" source into the binary ASN/geo\n"
        "db for v6stream --asn-db (or dump one back to source lines)");
    cli.add("in", &in, "source file (\"prefix asn [country]\" lines / CSV)")
        .add("out", &out, "binary db to write (atomic tmp + rename)")
        .add("dump", &dump, "print an existing db as source lines");
    if (flags.has("help")) {
        std::fputs(cli.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = cli.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    const tools::obs_exporter obs_dump(flags);

    if (!dump.empty()) {
        std::string error;
        const auto db = net::asn_db::load(dump, 0, &error);
        if (!db) {
            std::fprintf(stderr, "error: %s: %s\n", dump.c_str(), error.c_str());
            return 1;
        }
        // Re-decode for the entry list: asn_db keeps only the trie.
        std::ifstream raw(dump, std::ios::binary);
        std::vector<std::uint8_t> image((std::istreambuf_iterator<char>(raw)),
                                        std::istreambuf_iterator<char>());
        const auto entries = net::decode_asn_db(image.data(), image.size(), &error);
        if (!entries) {
            std::fprintf(stderr, "error: %s: %s\n", dump.c_str(), error.c_str());
            return 1;
        }
        for (const net::enrich_entry& e : *entries)
            std::printf("%s %u %c%c\n", e.pfx.to_string().c_str(), e.info.asn,
                        e.info.country[0], e.info.country[1]);
        return 0;
    }

    if (in.empty() || out.empty()) {
        std::fputs(cli.usage().c_str(), stdout);
        return 1;
    }

    std::uint64_t malformed = 0;
    const auto entries = net::read_enrich_source(in, &malformed);
    if (!entries) {
        std::fprintf(stderr, "error: cannot open %s\n", in.c_str());
        return 1;
    }
    if (malformed)
        std::fprintf(stderr, "warning: %llu malformed lines in %s skipped\n",
                     static_cast<unsigned long long>(malformed), in.c_str());
    if (entries->empty()) {
        std::fprintf(stderr, "error: no usable entries in %s\n", in.c_str());
        return 1;
    }
    if (!net::write_asn_db(out, *entries)) {
        std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
        return 1;
    }

    // Round-trip sanity: the file we just wrote must load.
    std::string error;
    const auto db = net::asn_db::load(out, 0, &error);
    if (!db) {
        std::fprintf(stderr, "error: verification reload of %s failed: %s\n",
                     out.c_str(), error.c_str());
        return 1;
    }
    std::fprintf(stderr, "wrote %s: %zu prefixes\n", out.c_str(), db->size());
    return 0;
}
