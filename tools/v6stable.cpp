// v6stable — temporal (stability) classification over a log corpus.
//
//   v6stable --corpus=DIR --ref=DAY [--n=3] [--back=7] [--fwd=7]
//            [--prefix-length=128] [--print-stable] [--spectrum=MAX]
//
// DIR holds day_<index>.log files (see v6synth / cdnsim::corpus). The
// reference day is classified with the paper's nd-stable definition.
#include "tool_common.h"
#include "v6class/analysis/format.h"
#include "v6class/cdnsim/corpus.h"
#include "v6class/temporal/observation_store.h"
#include "v6class/temporal/stability.h"

using namespace v6;

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    std::string corpus;
    int ref = 0, back = 7, fwd = 7;
    unsigned n = 3, plen = 128;
    bool print_stable = false, spectrum_given = false;
    std::string spectrum_text = "14";
    tools::flag_table cli(
        "usage: v6stable --corpus=DIR --ref=DAY [--n=3] [--back=7] [--fwd=7]\n"
        "                [--prefix-length=L] [--print-stable] [--spectrum=MAX]\n"
        "stability classification over a corpus of day_<n>.log files");
    cli.add("corpus", &corpus, "directory of day_<n>.log files (required)")
        .add("ref", &ref, "reference day index (required)")
        .add("n", &n, "stability threshold in days (default 3)")
        .add("back", &back, "window days before ref (default 7)")
        .add("fwd", &fwd, "window days after ref (default 7)")
        .add("prefix-length", &plen, "aggregate to /L before classifying")
        .add("print-stable", &print_stable, "print the stable addresses")
        .add("spectrum", &spectrum_given, &spectrum_text,
             "also print the lifetime spectrum up to MAX days (default 14)");
    if (flags.has("help")) {
        std::fputs(cli.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = cli.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    if (corpus.empty() || !flags.has("ref")) {
        std::fputs(cli.usage().c_str(), stdout);
        return 1;
    }
    const tools::obs_exporter obs_dump(flags);

    daily_series series;
    try {
        series = read_corpus(corpus);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    if (series.days().empty()) {
        std::fprintf(stderr, "error: no day_<n>.log files in %s\n",
                     corpus.c_str());
        return 1;
    }
    if (plen < 128) series = series.project(plen);

    stability_options opt;
    opt.window_back = back;
    opt.window_fwd = fwd;
    stability_analyzer an(series, opt);
    const stability_split split = an.classify_day(ref, n);
    const std::uint64_t total = split.stable.size() + split.not_stable.size();
    if (total == 0) {
        std::fprintf(stderr, "error: nothing active on day %d\n", ref);
        return 1;
    }
    std::printf("day %d: %s active %s\n", ref,
                format_count(static_cast<double>(total)).c_str(),
                plen < 128 ? ("/" + std::to_string(plen) + " prefixes").c_str()
                           : "addresses");
    std::printf("  %ud-stable (-%dd,+%dd):  %s (%s)\n", n, opt.window_back,
                opt.window_fwd,
                format_count(static_cast<double>(split.stable.size())).c_str(),
                format_pct(static_cast<double>(split.stable.size()) /
                           static_cast<double>(total))
                    .c_str());
    std::printf("  not %ud-stable:         %s (%s)\n", n,
                format_count(static_cast<double>(split.not_stable.size())).c_str(),
                format_pct(static_cast<double>(split.not_stable.size()) /
                           static_cast<double>(total))
                    .c_str());

    if (spectrum_given) {
        const auto max_n =
            static_cast<unsigned>(std::atol(spectrum_text.c_str()));
        observation_store store(plen);
        for (const int d : series.days()) store.record_day(d, series.day(d));
        const auto spectrum = store.stability_spectrum(max_n);
        std::puts("\nlifetime spectrum over the whole corpus (span >= n days):");
        for (unsigned i = 0; i <= max_n; ++i)
            std::printf("  n=%-3u %s\n", i,
                        format_count(static_cast<double>(spectrum[i])).c_str());
    }

    if (print_stable)
        for (const address& a : split.stable)
            std::printf("%s\n", a.to_string().c_str());
    return 0;
}
