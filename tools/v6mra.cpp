// v6mra — Multi-Resolution Aggregate analysis of an address set.
//
//   v6mra [file]                        ASCII MRA plot to stdout
//   v6mra --csv [file]                  "p,k,ratio" series instead
//   v6mra --gnuplot=DIR --stem=NAME     also write NAME.dat/NAME.gp
//   v6mra --title=TEXT                  plot title (default: file name)
//   v6mra --compare=FILE2 [file]        RMS log-ratio distance between the
//                                       two populations' MRA shapes (same
//                                       plan ~ <0.5, different plans >1)
#include "tool_common.h"
#include "v6class/spatial/gnuplot.h"
#include "v6class/spatial/mra_compare.h"
#include "v6class/spatial/mra_plot.h"

using namespace v6;

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    bool csv = false, gnuplot = false;
    std::string gnuplot_dir = ".", stem = "mra", title, compare;
    tools::flag_table table(
        "usage: v6mra [--csv] [--gnuplot=DIR [--stem=NAME]] [--title=T]\n"
        "             [--compare=FILE2] [file]\n"
        "MRA plot of an address set (one address per line)");
    table.add("csv", &csv, "emit a \"p,k,ratio\" series instead of the plot")
        .add("gnuplot", &gnuplot, &gnuplot_dir,
             "also write NAME.dat/NAME.gp under DIR (default .)")
        .add("stem", &stem, "gnuplot file stem (default mra)")
        .add("title", &title, "plot title (default: file name)")
        .add("compare", &compare,
             "RMS log-ratio MRA distance to FILE2's population");
    if (flags.has("help")) {
        std::fputs(table.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = table.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    const tools::obs_exporter obs_dump(flags);
    const auto addrs = tools::read_input_addresses(flags);
    if (!addrs) return 1;
    if (addrs->empty()) {
        std::fprintf(stderr, "error: no addresses in input\n");
        return 1;
    }

    if (!compare.empty()) {
        std::ifstream other(compare);
        if (!other) {
            std::fprintf(stderr, "error: cannot open %s\n", compare.c_str());
            return 1;
        }
        std::vector<address> addrs2;
        tools::report_malformed_lines(read_addresses(other, addrs2), compare);
        if (addrs2.empty()) {
            std::fprintf(stderr, "error: no addresses in %s\n", compare.c_str());
            return 1;
        }
        const double d =
            mra_distance(compute_mra(*addrs), compute_mra(std::move(addrs2)), 4);
        std::printf("%.4f\n", d);
        return 0;
    }

    if (title.empty())
        title = flags.positional().empty() ? "stdin" : flags.positional()[0];
    const mra_plot_data plot = make_mra_plot(compute_mra(*addrs), title);

    if (csv)
        std::fputs(to_csv(plot).c_str(), stdout);
    else
        std::fputs(render_ascii(plot).c_str(), stdout);

    if (gnuplot) {
        const std::string dir = gnuplot_dir;
        const auto script = write_mra_gnuplot(dir, stem, plot);
        std::fprintf(stderr, "wrote %s (render with: gnuplot -p %s)\n",
                     script.string().c_str(), script.string().c_str());
    }
    return 0;
}
