// v6arpa — ip6.arpa reverse-DNS utilities.
//
//   v6arpa [file]                 print the ip6.arpa PTR query name for
//                                 each input address
//   v6arpa --zone=FILE [file]     resolve each address against a zone
//                                 file ("name. PTR target." lines, as
//                                 written by export_zone_file / v6synth)
//   v6arpa --zone=FILE --scan [file]
//                                 bulk-scan mode: only print addresses
//                                 that resolve, with counts to stderr
#include <fstream>

#include "tool_common.h"
#include "v6class/dnssim/reverse_zone.h"

using namespace v6;

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    std::string zone_file;
    bool scan = false;
    tools::flag_table table(
        "usage: v6arpa [--zone=FILE [--scan]] [file]\n"
        "ip6.arpa name generation and zone-file resolution");
    table.add("zone", &zone_file, "resolve against this PTR zone file")
        .add("scan", &scan, "bulk-scan mode: only resolving addresses");
    if (flags.has("help")) {
        std::fputs(table.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = table.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    const tools::obs_exporter obs_dump(flags);
    const auto addrs = tools::read_input_addresses(flags);
    if (!addrs) return 1;

    if (zone_file.empty()) {
        for (const address& a : *addrs)
            std::printf("%s\n", ip6_arpa_name(a).c_str());
        return 0;
    }

    reverse_zone zone;
    {
        std::ifstream in(zone_file);
        if (!in) {
            std::fprintf(stderr, "error: cannot open %s\n", zone_file.c_str());
            return 1;
        }
        const std::size_t loaded = import_zone_file(in, zone);
        std::fprintf(stderr, "loaded %zu PTR records\n", loaded);
    }

    if (scan) {
        const auto result = zone.scan(*addrs);
        for (const address& a : result.named)
            std::printf("%s\t%s\n", a.to_string().c_str(),
                        std::string(*zone.query(a)).c_str());
        std::fprintf(stderr, "%llu/%llu queries resolved\n",
                     static_cast<unsigned long long>(result.names_found),
                     static_cast<unsigned long long>(result.queries));
        return 0;
    }

    for (const address& a : *addrs) {
        const auto name = zone.query(a);
        std::printf("%s\t%s\n", a.to_string().c_str(),
                    name ? std::string(*name).c_str() : "NXDOMAIN");
    }
    return 0;
}
