// v6stream — always-on streaming classification of a live observation
// feed (the Section 5.1 "ongoing basis" deployment, as a daemon-shaped
// tool).
//
//   v6synth --stream ... | v6stream --shards=4
//   v6stream [--shards=N] [--batch=N] [--queue=N] [--n=3] [--back=7]
//            [--fwd=7] [--class=N@P ...] [--status-every=RECORDS]
//            [--spectrum=MAX] [feed-file|-]
//   v6stream --listen[=PORT]            ingest v6wire UDP datagrams
//   v6stream --replay=PATH [--rate=R]   replay a day_<n>.log corpus
//                                       directory, a .v6w wire capture,
//                                       or a .pcap file
//
// The text feed is "day address [hits]" lines (blank lines and '#'
// comments tolerated) from a file, a FIFO, or stdin; --listen and
// --replay push the binary wire format through the identical engine
// path. Emits JSON lines on stdout: a "day" object per sealed day (the
// asynchronous roll-up: windowed nd-stable split and n@/p density
// classes), a "day_asn" object per sealed day when --asn-db is active,
// a periodic "status" object, and a "final" object with the lifetime
// spectrum on EOF or SIGINT / SIGTERM (graceful shutdown: the open day
// is sealed and reported). With --asn-db, SIGHUP hot-reloads the
// enrichment database without dropping a record.
//
// With --state-dir=DIR the daemon keeps a durable flight recorder
// (v6::obs::tsdb) under DIR/tsdb: every day seal appends the live
// derived series, the per-ASN ledger rows, and new log events; a
// restart re-anchors on the stored history, so /api/series spans runs
// with no gap or duplicate. The history API rides the metrics server:
//
//   GET /api/series?name=...&label=...&from=...&to=...&step=...
//   GET /api/events?level=...&from=...&to=...&limit=...
//   GET /alerts
//
// With --alerts=FILE an alert rules engine (v6::obs::alert) evaluates
// threshold / rate-of-change / absence / event-sourced rules at every
// seal and wall-clock tick; SIGHUP reloads the rules file alongside the
// ASN db, preserving state for unchanged rules.
//
// With --push=HOST:PORT the daemon federates: every day seal pushes the
// seal-derived series and the day's HLL/P² sketches to a v6agg
// aggregator as V6TEL1 frames, and periodic status/event frames ride
// the same connection, all labeled --node=NAME. Pushes are best-effort
// (a down aggregator costs a counted failure, never ingest).
#include <chrono>
#include <csignal>
#include <ctime>
#include <filesystem>
#include <memory>
#include <thread>

#include "tool_common.h"
#include "v6class/cdnsim/corpus.h"
#include "v6class/net/collector.h"
#include "v6class/net/enrich.h"
#include "v6class/net/replay.h"
#include "v6class/obs/alert.h"
#include "v6class/obs/dashboard.h"
#include "v6class/obs/federate.h"
#include "v6class/obs/http.h"
#include "v6class/obs/introspect.h"
#include "v6class/obs/tsdb.h"
#include "v6class/simd/kernels.h"
#include "v6class/stream/engine.h"

using namespace v6;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

void handle_stop(int) { g_stop = 1; }
void handle_reload(int) { g_reload = 1; }

void print_density(const std::vector<density_row>& rows) {
    std::printf("\"dense\":[");
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::printf("%s{\"n\":%llu,\"p\":%u,\"prefixes\":%llu,\"covered\":%llu}",
                    i ? "," : "",
                    static_cast<unsigned long long>(rows[i].n), rows[i].p,
                    static_cast<unsigned long long>(rows[i].dense_prefix_count),
                    static_cast<unsigned long long>(rows[i].covered_addresses));
    std::printf("]");
}

void print_day_report(const day_report& r) {
    std::printf("{\"type\":\"day\",\"day\":%d,\"ref_day\":%d,\"active\":%llu,"
                "\"stable\":%llu,\"not_stable\":%llu,\"distinct_addrs\":%zu,"
                "\"distinct_64s\":%zu,",
                r.day, r.ref_day, static_cast<unsigned long long>(r.active),
                static_cast<unsigned long long>(r.stable),
                static_cast<unsigned long long>(r.not_stable),
                r.distinct_addresses, r.distinct_projected);
    print_density(r.density);
    std::printf(",\"gamma1\":%.4f,\"gamma4\":%.4f,\"gamma16\":%.4f,"
                "\"stable_fraction\":%.4f",
                r.gamma1, r.gamma4, r.gamma16, r.stable_fraction);
    if (r.est_day_addresses > 0)
        std::printf(",\"est_day_addrs\":%.0f,\"est_day_48s\":%.0f,"
                    "\"est_day_64s\":%.0f",
                    r.est_day_addresses, r.est_day_48s, r.est_day_64s);
    std::printf("}\n");
}

/// One "day_asn" JSON line: the sealed day's per-origin-ASN breakdown,
/// emitted right after the day's roll-up so downstream consumers can
/// join them on "day". ASN 0 is the no-covering-prefix bucket.
void print_day_asn(int day, const std::vector<net::asn_row>& rows) {
    std::printf("{\"type\":\"day_asn\",\"day\":%d,\"rows\":[", day);
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::printf("%s{\"asn\":%u,\"country\":\"%c%c\",\"records\":%llu,"
                    "\"hits\":%llu}",
                    i ? "," : "", rows[i].asn, rows[i].country[0],
                    rows[i].country[1],
                    static_cast<unsigned long long>(rows[i].records),
                    static_cast<unsigned long long>(rows[i].hits));
    std::printf("]}\n");
}

/// One-line rule summary for the dashboard alert panel.
std::string alert_detail(const obs::alert_rule& r) {
    std::string out;
    switch (r.cond) {
        case obs::alert_cond::above:
            out = r.series + " above " + obs::event_field_number(r.threshold);
            break;
        case obs::alert_cond::below:
            out = r.series + " below " + obs::event_field_number(r.threshold);
            break;
        case obs::alert_cond::delta:
            out = r.series + " delta " + obs::event_field_number(r.threshold);
            break;
        case obs::alert_cond::absent:
            out = r.series + " absent " + obs::event_field_number(r.threshold);
            break;
        case obs::alert_cond::event:
            out = "event " + r.event_kind;
            break;
    }
    if (!r.label.empty()) out += " {" + r.label + "}";
    if (r.hold) out += " for " + std::to_string(r.hold);
    return out;
}

/// The wall-clock tick's alert sampler: live derived series by registry
/// metric name + label. The engine view is snapshotted *once, here* —
/// never from inside evaluate(), which holds the alert mutex: the roll
/// thread's seal path also calls evaluate(), so a sampler that locked
/// the engine under the alert mutex would invert the lock order against
/// a concurrent seal and deadlock the daemon.
obs::alert_engine::sampler live_sampler(const stream_engine& engine) {
    auto lv = std::make_shared<const live_view>(engine.live(0));
    return [lv](const std::string& series,
                const std::string& label) -> std::optional<double> {
        for (const live_series_view& v : lv->series)
            if (v.metric == series && v.label == label && !v.history.empty())
                return v.current;
        return std::nullopt;
    };
}

/// Builds the /dashboard model from a consistent engine view plus the
/// server's own lifecycle state.
obs::dashboard_model build_dashboard(const stream_engine& engine,
                                     const obs::metrics_server& server,
                                     const net::enrichment* enrich,
                                     const net::asn_ledger* ledger,
                                     const obs::tsdb::database* tsdb,
                                     const obs::alert_engine* alerts) {
    const stream_stats s = engine.stats();
    const live_view lv = engine.live();
    obs::dashboard_model model;
    model.title = "v6stream live classification";
    model.status = server.state();
    model.uptime_seconds = server.uptime_seconds();
    model.stats = {
        {"epoch", lv.epoch == kNoDay ? "-" : std::to_string(lv.epoch)},
        {"open day", s.open_day == kNoDay ? "-" : std::to_string(s.open_day)},
        {"records", std::to_string(s.records)},
        {"distinct /128s", std::to_string(s.distinct_addresses)},
        {"distinct /64s", std::to_string(s.distinct_projected)},
        {"late dropped", std::to_string(s.late_dropped)},
        {"drift events", std::to_string(engine.events().total())},
    };
    if (enrich) {
        const auto snap = enrich->snapshot();
        model.stats.push_back(
            {"asn db", snap ? "gen " + std::to_string(snap->generation()) +
                                  ", " + std::to_string(snap->size()) +
                                  " prefixes"
                            : "not loaded"});
    }
    if (ledger) {
        for (const net::asn_row& row : ledger->top(3)) {
            const std::string name =
                row.asn ? "AS" + std::to_string(row.asn) : "unrouted";
            model.stats.push_back(
                {"top asn " + name, std::to_string(row.records) + " records"});
        }
    }
    model.series.reserve(lv.series.size());
    for (const live_series_view& v : lv.series)
        model.series.push_back({v.name, v.help, v.current, v.history, v.alarmed});
    model.events = lv.events;
    model.links = {{"/metrics", "metrics"},
                   {"/trace", "trace"},
                   {"/profile", "profile"},
                   {"/pmu", "pmu"},
                   {"/healthz", "healthz"}};
    if (tsdb) model.links.push_back({"/api/series", "series"});
    if (alerts) model.links.push_back({"/alerts", "alerts"});

    // Runtime panel: the process-level gauges that /metrics exports but
    // the dashboard never surfaced — which kernel tier is live, how big
    // the process is, how full the trie arena runs, and whether hardware
    // counters back the IPC series. Arena numbers come back through the
    // interning registry (the engine registered them unlabeled).
    obs::registry& greg = obs::registry::global();
    model.runtime.push_back(
        {"simd", std::string(simd::level_name(simd::active_level()))});
    model.runtime.push_back(
        {"rss", obs::dashboard_value(
                    static_cast<double>(obs::process_rss_bytes()) / (1 << 20)) +
                    " MiB"});
    model.runtime.push_back(
        {"arena live",
         std::to_string(greg.get_gauge("v6_trie_arena_live_nodes").value())});
    model.runtime.push_back(
        {"arena free",
         std::to_string(greg.get_gauge("v6_trie_arena_free_slots").value())});
    const obs::pmu::availability& pa = obs::pmu::available();
    model.runtime.push_back(
        {"pmu", pa.hardware()
                    ? std::string(obs::pmu::mode_name(pa.tier))
                    : std::string(obs::pmu::mode_name(pa.tier)) + " (" +
                          pa.reason + ")"});
    if (pa.hardware()) {
        const obs::pmu::site_stats ingest =
            obs::pmu::site_totals("shard.ingest_batch");
        if (ingest.spans > 0)
            model.runtime.push_back(
                {"ingest ipc", obs::dashboard_value(ingest.ipc())});
    }

    // Flight-recorder charts: the headline derived series over their
    // whole stored range (they survive restarts, unlike the in-memory
    // sparklines above), downsampled to chart resolution.
    if (tsdb) {
        static constexpr std::pair<const char*, const char*> kCharts[] = {
            {"v6class_gamma16_48", "gamma^16 at p=48 over all stored days"},
            {"v6class_gamma4_60", "gamma^4 at p=60 over all stored days"},
            {"v6class_stable_fraction",
             "nd-stable fraction over all stored days"},
            {"v6class_active_addresses",
             "active addresses per classified day"},
            {"v6class_day_distinct_addresses_estimate",
             "HLL distinct-address estimate per sealed day"},
        };
        constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
        constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
        for (const auto& [name, help] : kCharts) {
            const std::vector<obs::tsdb::point> pts =
                tsdb->query(name, "", kMin, kMax);
            if (pts.empty()) continue;
            const std::int64_t span = pts.back().ts - pts.front().ts;
            const std::vector<obs::tsdb::point> ds =
                obs::tsdb::downsample(pts, span > 200 ? span / 200 : 1);
            obs::dashboard_chart chart;
            chart.name = name;
            chart.help = help;
            chart.points.reserve(ds.size());
            for (const obs::tsdb::point& p : ds)
                chart.points.push_back({p.ts, p.value});
            model.charts.push_back(std::move(chart));
        }
    }

    if (alerts) {
        model.show_alerts = true;
        for (const obs::alert_engine::status& s : alerts->snapshot()) {
            obs::dashboard_alert row;
            row.name = s.rule.name;
            row.state = obs::alert_state_name(s.state);
            row.detail = alert_detail(s.rule);
            if (s.value) {
                row.value = *s.value;
                row.has_value = true;
            }
            model.alerts.push_back(std::move(row));
        }
    }
    return model;
}

void print_status(const stream_stats& s, double rate) {
    std::printf("{\"type\":\"status\",\"fed\":%llu,\"records\":%llu,"
                "\"hits\":%llu,\"late_dropped\":%llu,\"dropped\":%llu,"
                "\"rate\":%.0f,\"open_day\":%d,\"sealed_day\":%d,"
                "\"distinct_addrs\":%zu,\"distinct_64s\":%zu}\n",
                static_cast<unsigned long long>(s.fed),
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.late_dropped),
                static_cast<unsigned long long>(s.dropped), rate,
                s.open_day == kNoDay ? -1 : s.open_day,
                s.sealed_day == kNoDay ? -1 : s.sealed_day,
                s.distinct_addresses, s.distinct_projected);
}

void print_final(const stream_snapshot& s, std::uint64_t malformed) {
    std::printf("{\"type\":\"final\",\"epoch\":%d,\"records\":%llu,"
                "\"hits\":%llu,\"late_dropped\":%llu,\"malformed\":%llu,"
                "\"distinct_addrs\":%zu,\"distinct_64s\":%zu,\"spectrum\":[",
                s.epoch == kNoDay ? -1 : s.epoch,
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.late_dropped),
                static_cast<unsigned long long>(malformed),
                s.distinct_addresses, s.distinct_projected);
    for (std::size_t n = 0; n < s.spectrum.size(); ++n)
        std::printf("%s%llu", n ? "," : "",
                    static_cast<unsigned long long>(s.spectrum[n]));
    std::printf("],");
    print_density(s.density);
    std::printf("}\n");
}

/// Drains and prints day reports not yet printed (each followed by its
/// per-ASN breakdown when a ledger is active); returns the new count.
/// With a flight recorder, the sealed day's top-ASN rows become durable
/// series here too (the live derived series are flushed by the engine's
/// own seal path).
std::size_t drain_reports(const stream_engine& engine, std::size_t printed,
                          net::asn_ledger* ledger,
                          obs::tsdb::database* tsdb = nullptr) {
    const std::vector<day_report> reports = engine.reports();
    bool flushed = false;
    for (std::size_t i = printed; i < reports.size(); ++i) {
        print_day_report(reports[i]);
        if (ledger) {
            const auto rows = ledger->take_day(reports[i].day);
            if (!rows.empty()) {
                print_day_asn(reports[i].day, rows);
                if (tsdb) {
                    net::flush_day_asn(*tsdb, reports[i].day, rows);
                    flushed = true;
                }
            }
        }
    }
    if (flushed) tsdb->commit();
    if (reports.size() > printed) std::fflush(stdout);
    return reports.size();
}

/// Applies a pending SIGHUP: hot-reloads the enrichment db and the
/// alert rules file. Both follow the same contract — the swap happens
/// only after the replacement loaded cleanly, so a failed reload logs
/// and keeps the previous state serving. Unchanged alert rules keep
/// their firing/pending state across the reload.
void maybe_reload(net::enrichment* enrich, obs::alert_engine* alerts,
                  const std::string& alerts_path) {
    if (!g_reload) return;
    g_reload = 0;
    if (enrich) {
        std::string error;
        if (enrich->reload(&error)) {
            const auto snap = enrich->snapshot();
            std::fprintf(stderr,
                         "reloaded %s: %zu prefixes (generation %llu)\n",
                         enrich->path().c_str(), snap ? snap->size() : 0,
                         static_cast<unsigned long long>(
                             snap ? snap->generation() : 0));
        } else {
            std::fprintf(stderr, "warning: reload of %s failed (%s); keeping "
                                 "previous database\n",
                         enrich->path().c_str(), error.c_str());
        }
    }
    if (alerts && !alerts_path.empty()) {
        std::string error;
        if (alerts->load_file(alerts_path, &error)) {
            std::fprintf(stderr, "reloaded %s: %zu alert rules\n",
                         alerts_path.c_str(), alerts->rule_count());
            obs::event_log::global().log(
                obs::event_level::info, "lifecycle", "alert rules reloaded",
                {{"rules", obs::event_field_number(
                               static_cast<double>(alerts->rule_count()))}});
        } else {
            std::fprintf(stderr, "warning: reload of alert rules failed (%s); "
                                 "keeping previous rules\n",
                         error.c_str());
        }
    }
}

/// One periodic federation push: the node's status frame plus any
/// events logged since the last push (the cursor makes event frames
/// incremental — a reconnecting pusher re-sends nothing already sent).
void push_telemetry(obs::federate::telemetry_pusher* pusher,
                    const stream_engine& engine,
                    std::uint64_t& event_cursor) {
    if (!pusher) return;
    const stream_stats s = engine.stats();
    net::tel_status st;
    st.records = s.records;
    st.open_day = s.open_day == kNoDay ? -1 : s.open_day;
    st.sealed_day = s.sealed_day == kNoDay ? -1 : s.sealed_day;
    st.unix_time = std::chrono::duration<double>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
    pusher->push_status(st);
    const std::vector<obs::event> events =
        obs::event_log::global().since(event_cursor);
    if (!events.empty()) {
        event_cursor = events.back().seq;
        pusher->push_events(events);
    }
}

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    unsigned shards = 4, n = 3, spectrum_max = 14;
    int back = 7, fwd = 7;
    std::size_t batch = 1024, queue = 64;
    long status_every = 100000;
    std::vector<std::string> class_texts;
    bool listen_given = false, metrics_given = false;
    std::string listen_text = "0", metrics_text = "9100";
    std::string replay_path, asn_db_path;
    std::string state_dir, alerts_path, alerts_notify;
    std::string push_text, node_name = "node";
    double tick_seconds = 60;
    std::size_t retain_bytes = 0, events_cap = 8u << 20;
    long retain_days = 0;
    double rate = 0;
    long pcap_port = 0;
    tools::flag_table cli(
        "usage: v6stream [--shards=N] [--batch=N] [--queue=N] [--n=3]\n"
        "                [--back=7] [--fwd=7] [--class=N@P ...]\n"
        "                [--status-every=RECORDS] [--spectrum=MAX]\n"
        "                [--metrics-port=P] [--asn-db=FILE]\n"
        "                [--state-dir=DIR] [--alerts=FILE]\n"
        "                [--push=HOST:PORT --node=NAME]\n"
        "                [--listen[=PORT] | --replay=PATH [--rate=R]]\n"
        "                [feed-file|-]\n"
        "streaming classification of a \"day address [hits]\" feed;\n"
        "emits JSON lines (day roll-ups, per-ASN day breakdowns, status,\n"
        "final report)");
    cli.add("shards", &shards, "engine worker shards (default 4)")
        .add("batch", &batch, "records per shard batch (default 1024)")
        .add("queue", &queue, "shard queue capacity in batches (default 64)")
        .add("n", &n, "stability threshold in days (default 3)")
        .add("back", &back, "stability window days back (default 7)")
        .add("fwd", &fwd, "stability window days forward (default 7)")
        .add("class", &class_texts, "density class N@P (repeatable)")
        .add("status-every", &status_every,
             "status JSON every N feed records (default 100000; 0 = off)")
        .add("spectrum", &spectrum_max, "lifetime spectrum max n (default 14)")
        .add("metrics-port", &metrics_given, &metrics_text,
             "serve /metrics /healthz /dashboard /trace /profile on 0.0.0.0:P")
        .add("asn-db", &asn_db_path,
             "v6mkdb binary ASN/geo db; tags records at ingest and emits\n"
             "per-ASN day breakdowns; SIGHUP hot-reloads it")
        .add("state-dir", &state_dir,
             "durable flight recorder under DIR/tsdb; day seals append the\n"
             "live series + events, restarts resume the stored history")
        .add("alerts", &alerts_path,
             "alert rules file (one \"name key=value ...\" rule per line);\n"
             "SIGHUP hot-reloads it, preserving state for unchanged rules")
        .add("alerts-notify", &alerts_notify,
             "shell command run on alert firing/resolved transitions\n"
             "(invoked with the transition JSON as its argument)")
        .add("push", &push_text,
             "federate to a v6agg aggregator at HOST:PORT: day seals push\n"
             "series + sketches, status/events ride along periodically")
        .add("node", &node_name,
             "node identity carried in every pushed frame and as the\n"
             "aggregator-side node= series label (default \"node\")")
        .add("events-cap", &events_cap,
             "--events-out file size cap in bytes before rotation to .1\n"
             "(default 8 MiB)")
        .add("tick", &tick_seconds,
             "wall-clock gauge/alert evaluation period in --listen mode,\n"
             "seconds (default 60; 0 = off)")
        .add("retain-bytes", &retain_bytes,
             "tsdb retention cap in bytes across sealed segments (0 = keep)")
        .add("retain-days", &retain_days,
             "tsdb retention horizon in day-timestamp units (0 = keep)")
        .add("listen", &listen_given, &listen_text,
             "ingest v6wire UDP datagrams on PORT (default: ephemeral,\n"
             "printed to stderr) instead of a text feed")
        .add("replay", &replay_path,
             "replay a day_<n>.log corpus dir, .v6w wire capture, or .pcap")
        .add("rate", &rate, "replay pacing in records/second (0 = line rate)")
        .add("pcap-port", &pcap_port,
             "UDP dst-port filter for --replay of a .pcap (0 = any)");
    if (flags.has("help")) {
        std::fputs(cli.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = cli.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    if (listen_given && !replay_path.empty()) {
        std::fprintf(stderr, "error: --listen and --replay are exclusive\n");
        return 1;
    }
    tools::obs_exporter obs_dump(flags);

    // One startup line stating where hardware counters stand, so a
    // daemon log always explains a missing IPC panel (paranoid sysctl,
    // VM without a PMU, or an explicit V6CLASS_DISABLE_PMU).
    {
        const obs::pmu::availability& pa = obs::pmu::available();
        std::fprintf(stderr, "pmu: %s (%s)\n", obs::pmu::mode_name(pa.tier),
                     pa.reason.c_str());
    }

    stream_config cfg;
    cfg.shards = shards;
    cfg.batch_size = batch;
    cfg.queue_capacity = queue;
    cfg.stability_n = n;
    cfg.window.window_back = back;
    cfg.window.window_fwd = fwd;
    cfg.spectrum_max = spectrum_max;
    std::vector<std::pair<std::uint64_t, unsigned>> classes;
    for (const std::string& text : class_texts) {
        const auto parsed = tools::parse_density_class(text);
        if (!parsed) {
            std::fprintf(stderr, "error: bad --class=%s (want e.g. 2@112)\n",
                         text.c_str());
            return 1;
        }
        classes.push_back(*parsed);
    }
    if (!classes.empty()) cfg.density_classes = std::move(classes);

    std::signal(SIGINT, handle_stop);
    std::signal(SIGTERM, handle_stop);
    std::signal(SIGHUP, handle_reload);

    // The daemon shares the process-wide registry so one /metrics endpoint
    // covers the engine, the library phase timers, and the tool itself —
    // and likewise the process-wide event log, so --events-out sees the
    // engine's drift alarms.
    obs::registry& reg = obs::registry::global();
    cfg.metrics_registry = &reg;
    cfg.events = &obs::event_log::global();
    const obs::counter malformed_total = reg.get_counter(
        "v6_stream_malformed_total", {},
        "Feed lines that failed to parse and were skipped.");
    const obs::gauge ingest_rate = reg.get_gauge(
        "v6_stream_ingest_rate", {},
        "Accepted records per second, averaged over the last status interval.");

    // --events-out switches the event log to streaming mode up front, so
    // every event from here on (lifecycle, drift alarms, alert
    // transitions) lands in the file as it happens instead of as an
    // exit-time dump, with size-capped rotation to FILE.1.
    if (flags.has("events-out"))
        obs::event_log::global().enable_file(flags.get("events-out"),
                                             events_cap, &reg);

    // Durable flight recorder (optional): open/recover BEFORE the engine
    // so init_live() can re-anchor the live series on the stored history.
    std::unique_ptr<obs::tsdb::database> tsdb;
    if (!state_dir.empty()) {
        obs::tsdb::options topt;
        topt.metrics = &reg;
        topt.retain_bytes = retain_bytes;
        topt.retain_age = retain_days;
        std::string error;
        tsdb = obs::tsdb::database::open(
            (std::filesystem::path(state_dir) / "tsdb").string(), topt, &error);
        if (!tsdb) {
            std::fprintf(stderr, "error: cannot open state dir %s: %s\n",
                         state_dir.c_str(), error.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "flight recorder %s: %llu points recovered, %zu series, "
                     "%zu segments%s\n",
                     tsdb->dir().c_str(),
                     static_cast<unsigned long long>(tsdb->recovered_points()),
                     tsdb->list_series().size(), tsdb->segment_count(),
                     tsdb->truncated_bytes() ? " [torn tail truncated]" : "");
        cfg.tsdb = tsdb.get();
    }

    // Alert rules engine (optional): a startup parse error is an
    // operator error and fatal, unlike a failed SIGHUP *re*load, which
    // keeps the previous rules running. Constructed before the engine so
    // stream_config::alerts is evaluated at every seal.
    std::optional<obs::alert_engine> alerts;
    if (!alerts_path.empty()) {
        alerts.emplace(&reg, &obs::event_log::global());
        std::string error;
        if (!alerts->load_file(alerts_path, &error)) {
            std::fprintf(stderr, "error: cannot load %s: %s\n",
                         alerts_path.c_str(), error.c_str());
            return 1;
        }
        if (!alerts_notify.empty()) alerts->set_notify_command(alerts_notify);
        std::fprintf(stderr, "loaded %s: %zu alert rules (SIGHUP reloads)\n",
                     alerts_path.c_str(), alerts->rule_count());
        cfg.alerts = &*alerts;
    }
    obs::alert_engine* alert_ptr = alerts ? &*alerts : nullptr;

    // Federation pusher (optional): constructed before the engine so
    // stream_config::federate is armed for the very first seal. The
    // connection itself is lazy — a not-yet-started aggregator costs
    // counted failures, not a startup error.
    std::unique_ptr<obs::federate::telemetry_pusher> pusher;
    std::uint64_t push_event_cursor = 0;
    if (!push_text.empty()) {
        const std::size_t colon = push_text.rfind(':');
        const long push_port =
            colon == std::string::npos
                ? 0
                : std::atol(push_text.c_str() + colon + 1);
        if (colon == std::string::npos || push_port <= 0 ||
            push_port > 65535) {
            std::fprintf(stderr, "error: bad --push=%s (want HOST:PORT)\n",
                         push_text.c_str());
            return 1;
        }
        obs::federate::telemetry_pusher::config pcfg;
        pcfg.host = push_text.substr(0, colon);
        pcfg.port = static_cast<std::uint16_t>(push_port);
        pcfg.node = node_name;
        pusher = std::make_unique<obs::federate::telemetry_pusher>(pcfg);
        cfg.federate = [p = pusher.get()](
                           const obs::federate::seal_snapshot& snap) {
            p->push_seal(snap);
        };
        std::fprintf(stderr, "pushing telemetry to %s as node %s\n",
                     push_text.c_str(), node_name.c_str());
    }

    stream_engine engine(cfg);

    // Logged after the alert engine exists (its event cursor starts at
    // construction time), so an event=lifecycle rule sees the start.
    obs::event_log::global().log(obs::event_level::info, "lifecycle",
                                 "v6stream started", {});

    // Enrichment (optional): load the db up front — a missing db at
    // startup is an operator error, unlike a failed *re*load, which
    // keeps the previous snapshot serving.
    std::optional<net::enrichment> enrich;
    std::optional<net::asn_ledger> ledger;
    if (!asn_db_path.empty()) {
        enrich.emplace(asn_db_path, &reg);
        std::string error;
        if (!enrich->reload(&error)) {
            std::fprintf(stderr, "error: cannot load %s: %s\n",
                         asn_db_path.c_str(), error.c_str());
            return 1;
        }
        ledger.emplace(&reg);
        const auto snap = enrich->snapshot();
        std::fprintf(stderr, "loaded %s: %zu prefixes (SIGHUP reloads)\n",
                     asn_db_path.c_str(), snap ? snap->size() : 0);
    }
    net::enrichment* enrich_ptr = enrich ? &*enrich : nullptr;
    net::asn_ledger* ledger_ptr = ledger ? &*ledger : nullptr;

    obs::metrics_server server;
    if (metrics_given) {
        server.set_health_payload([&engine, &state_dir, alert_ptr] {
            const stream_stats s = engine.stats();
            std::string out =
                "\"last_seal_day\":" +
                std::to_string(s.sealed_day == kNoDay ? -1 : s.sealed_day) +
                ",\"open_day\":" +
                std::to_string(s.open_day == kNoDay ? -1 : s.open_day) +
                ",\"records\":" + std::to_string(s.records);
            if (!state_dir.empty())
                out += ",\"state_dir\":" + obs::event_field_string(state_dir);
            if (alert_ptr)
                out += ",\"alerts\":{\"firing\":" +
                       std::to_string(alert_ptr->firing_count()) +
                       ",\"pending\":" +
                       std::to_string(alert_ptr->pending_count()) + "}";
            return out;
        });
        server.set_dashboard(
            [&engine, &server, enrich_ptr, ledger_ptr, &tsdb, alert_ptr] {
                return obs::render_dashboard(build_dashboard(
                    engine, server, enrich_ptr, ledger_ptr, tsdb.get(),
                    alert_ptr));
            });

        // The history API (tsdb-backed) and the alert status endpoint
        // ride the same server via the generic handler table. The
        // history handlers are the shared tsdb ones — v6agg mounts the
        // identical pair over the fleet store.
        if (tsdb) obs::tsdb::register_history_api(server, tsdb.get());
        if (alert_ptr)
            server.add_handler("/alerts", [alert_ptr](const obs::query_params&) {
                obs::http_reply reply;
                reply.body = "{\"firing\":" +
                             std::to_string(alert_ptr->firing_count()) +
                             ",\"pending\":" +
                             std::to_string(alert_ptr->pending_count()) +
                             ",\"evaluations\":" +
                             std::to_string(alert_ptr->evaluations()) +
                             ",\"rules\":" + alert_ptr->status_json() + "}";
                return reply;
            });

        std::string error;
        const auto port =
            static_cast<std::uint16_t>(std::atol(metrics_text.c_str()));
        if (!server.start(port, &reg, &error)) {
            std::fprintf(stderr, "error: metrics server: %s\n", error.c_str());
            return 1;
        }
        // A live observability port implies live tracing and profiling:
        // /trace serves the span rings, /profile the sampled stacks.
        // (--trace-out may have enabled the tracer already; enable() is
        // idempotent, and the profiler start is skipped if --profile-out
        // already started it.)
        obs::tracer::enable();
        obs::pmu::enable();  // /pmu serves live deltas; no-op when denied
        if (!obs::profiler::running()) obs::profiler::start();
        std::fprintf(stderr,
                     "metrics on http://0.0.0.0:%u/metrics, dashboard on "
                     "http://0.0.0.0:%u/dashboard (links to /trace, "
                     "/profile, /healthz)\n",
                     static_cast<unsigned>(server.port()),
                     static_cast<unsigned>(server.port()));
    }

    std::uint64_t malformed = 0;
    std::size_t printed_reports = 0;
    auto rate_mark = std::chrono::steady_clock::now();
    std::uint64_t rate_records = 0;

    if (listen_given) {
        // Live collector mode: the rx thread owns the socket; this loop
        // only drains reports, emits periodic status, and services
        // SIGHUP reloads until SIGINT/SIGTERM.
        net::collector_config ccfg;
        ccfg.port = static_cast<std::uint16_t>(std::atol(listen_text.c_str()));
        ccfg.registry = &reg;
        net::udp_collector collector(engine, ccfg, enrich_ptr, ledger_ptr);
        std::string error;
        if (!collector.start(&error)) {
            std::fprintf(stderr, "error: collector: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr, "listening on udp port %u\n",
                     static_cast<unsigned>(collector.port()));
        std::fflush(stderr);
        auto last_status = std::chrono::steady_clock::now();
        auto last_tick = last_status;
        while (!g_stop) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            maybe_reload(enrich_ptr, alert_ptr, alerts_path);
            printed_reports =
                drain_reports(engine, printed_reports, ledger_ptr, tsdb.get());
            const auto now = std::chrono::steady_clock::now();
            // Wall-clock tick: a listening daemon may go days between
            // seals, so the throughput gauges are recorded (and the
            // alert rules evaluated) on unix-seconds cadence too.
            if (tick_seconds > 0 && (tsdb || alert_ptr || pusher) &&
                now - last_tick >=
                    std::chrono::duration<double>(tick_seconds)) {
                last_tick = now;
                push_telemetry(pusher.get(), engine, push_event_cursor);
                const auto now_unix =
                    static_cast<std::int64_t>(std::time(nullptr));
                if (tsdb) {
                    const stream_stats s = engine.stats();
                    tsdb->append("v6_stream_records_total", "", now_unix,
                                 static_cast<double>(s.records));
                    tsdb->append("v6_stream_ingest_rate", "", now_unix,
                                 static_cast<double>(ingest_rate.value()));
                    tsdb->append("v6_stream_distinct_addresses", "", now_unix,
                                 static_cast<double>(s.distinct_addresses));
                    tsdb->commit();
                }
                if (alert_ptr)
                    alert_ptr->evaluate(live_sampler(engine), now_unix);
            }
            if (status_every > 0 &&
                now - last_status >= std::chrono::seconds(2)) {
                const stream_stats s = engine.stats();
                const double dt =
                    std::chrono::duration<double>(now - rate_mark).count();
                const double r =
                    dt > 0.0
                        ? static_cast<double>(s.records - rate_records) / dt
                        : 0.0;
                rate_mark = now;
                rate_records = s.records;
                ingest_rate.set(static_cast<std::int64_t>(r));
                print_status(s, r);
                last_status = now;
            }
        }
        // Stop receiving BEFORE sealing: everything the socket accepted
        // is in the engine when finish() runs below.
        collector.stop();
        const net::collector_stats cs = collector.stats();
        std::fprintf(stderr,
                     "collector: %llu datagrams, %llu records, %llu rejected\n",
                     static_cast<unsigned long long>(cs.datagrams),
                     static_cast<unsigned long long>(cs.records),
                     static_cast<unsigned long long>(cs.decode.rejected()));
    } else if (!replay_path.empty() &&
               !std::filesystem::is_directory(replay_path)) {
        // Wire-capture / pcap replay through the shared ingest path.
        net::replay_options opt;
        opt.rate = rate;
        opt.pcap_port = static_cast<std::uint16_t>(pcap_port);
        opt.stop = &g_stop;
        const net::replay_result result =
            ends_with(replay_path, ".pcap")
                ? net::replay_pcap_file(replay_path, engine, enrich_ptr,
                                        ledger_ptr, opt)
                : net::replay_wire_file(replay_path, engine, enrich_ptr,
                                        ledger_ptr, opt);
        if (!result.ok()) {
            std::fprintf(stderr, "error: %s\n", result.error.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "replayed %llu datagrams, %llu records%s (%llu rejected)\n",
                     static_cast<unsigned long long>(result.datagrams),
                     static_cast<unsigned long long>(result.records),
                     result.stopped ? " [interrupted]" : "",
                     static_cast<unsigned long long>(result.decode.rejected()));
        printed_reports = drain_reports(engine, printed_reports, ledger_ptr, tsdb.get());
    } else if (!replay_path.empty()) {
        // Replay a day_<n>.log corpus directory in day order. The stop
        // flag is honoured between *records*, not just between days, so
        // SIGINT interrupts a multi-million-record day promptly and
        // still flows into the ordered seal-then-report shutdown below.
        namespace fs = std::filesystem;
        std::vector<int> days;
        try {
            for (const auto& entry : fs::directory_iterator(replay_path)) {
                int day = 0;
                if (entry.is_regular_file() &&
                    std::sscanf(entry.path().filename().string().c_str(),
                                "day_%d.log", &day) == 1)
                    days.push_back(day);
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
        std::sort(days.begin(), days.end());
        const auto replay_start = std::chrono::steady_clock::now();
        std::uint64_t pushed = 0;
        std::shared_ptr<const net::asn_db> snap;
        for (const int day : days) {
            if (g_stop) break;
            maybe_reload(enrich_ptr, alert_ptr, alerts_path);
            const daily_log log = read_log_file(
                fs::path(replay_path) / corpus_file_name(day), day);
            for (const observation& o : log.records) {
                if (g_stop) break;
                if (rate > 0) {
                    // Same pacing contract as the wire replay driver:
                    // target time from records pushed, short sleeps so
                    // SIGINT lands within ~50 ms.
                    for (;;) {
                        const double target = static_cast<double>(pushed) / rate;
                        const double elapsed =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - replay_start)
                                .count();
                        if (elapsed >= target || g_stop) break;
                        std::this_thread::sleep_for(std::chrono::duration<double>(
                            std::min(target - elapsed, 0.05)));
                    }
                    if (g_stop) break;
                }
                if (ledger_ptr)
                    ledger_ptr->note(
                        day,
                        enrich_ptr ? enrich_ptr->lookup(o.addr, snap) : nullptr,
                        o.hits);
                engine.push(day, o.addr, o.hits);
                ++pushed;
            }
            printed_reports = drain_reports(engine, printed_reports, ledger_ptr, tsdb.get());
        }
    } else {
        std::ifstream file;
        const bool use_stdin =
            flags.positional().empty() || flags.positional()[0] == "-";
        if (!use_stdin) {
            file.open(flags.positional()[0]);
            if (!file) {
                std::fprintf(stderr, "error: cannot open %s\n",
                             flags.positional()[0].c_str());
                return 1;
            }
        }
        std::istream& in = use_stdin ? std::cin : file;

        std::string line;
        std::uint64_t line_number = 0;
        stream_record record;
        std::shared_ptr<const net::asn_db> snap;
        while (!g_stop && std::getline(in, line)) {
            ++line_number;
            const std::string_view text = trim(line);
            if (text.empty() || text.front() == '#') continue;
            if (!parse_stream_record(text, record)) {
                malformed_total.inc();
                if (++malformed <= 8)
                    std::fprintf(stderr, "warning: line %llu: malformed: %s\n",
                                 static_cast<unsigned long long>(line_number),
                                 line.c_str());
                continue;
            }
            maybe_reload(enrich_ptr, alert_ptr, alerts_path);
            if (ledger_ptr)
                ledger_ptr->note(
                    record.day,
                    enrich_ptr ? enrich_ptr->lookup(record.addr, snap) : nullptr,
                    record.hits);
            engine.push(record);
            if (status_every > 0 &&
                line_number % static_cast<std::uint64_t>(status_every) == 0) {
                const stream_stats s = engine.stats();
                const auto now = std::chrono::steady_clock::now();
                const double dt =
                    std::chrono::duration<double>(now - rate_mark).count();
                const double r =
                    dt > 0.0
                        ? static_cast<double>(s.records - rate_records) / dt
                        : 0.0;
                rate_mark = now;
                rate_records = s.records;
                ingest_rate.set(static_cast<std::int64_t>(r));
                print_status(s, r);
                printed_reports = drain_reports(engine, printed_reports, ledger_ptr, tsdb.get());
            }
        }
    }

    // Ordered shutdown (also the SIGINT/SIGTERM path, since the loops above
    // merely break out on g_stop): mark the server draining so probes stop
    // routing here, then finish() seals the open day and joins the roll
    // thread; we drain the reports and print the final object, stop the
    // metrics server, and only then write the metrics/events dumps — so the
    // files reflect the fully-settled registry, including the last seal.
    server.set_state("draining");
    engine.finish();
    printed_reports = drain_reports(engine, printed_reports, ledger_ptr, tsdb.get());
    // Final federation push: the aggregator sees the last seal's status
    // (and any shutdown events) before the connection drops.
    push_telemetry(pusher.get(), engine, push_event_cursor);
    print_final(engine.snapshot(), malformed);
    server.stop();
    obs_dump.write();
    return 0;
}
