// v6stream — always-on streaming classification of a live observation
// feed (the Section 5.1 "ongoing basis" deployment, as a daemon-shaped
// tool).
//
//   v6synth --stream ... | v6stream --shards=4
//   v6stream [--shards=N] [--batch=N] [--queue=N] [--n=3] [--back=7]
//            [--fwd=7] [--class=N@P ...] [--status-every=RECORDS]
//            [--spectrum=MAX] [feed-file|-]
//   v6stream --replay=DIR ...            replay a day_<n>.log corpus
//
// The feed is "day address [hits]" lines (blank lines and '#' comments
// tolerated) from a file, a FIFO, or stdin. Emits JSON lines on stdout:
// a "day" object per sealed day (the asynchronous roll-up: windowed
// nd-stable split and n@/p density classes), a periodic "status" object,
// and a "final" object with the lifetime spectrum on EOF or SIGINT /
// SIGTERM (graceful shutdown: the open day is sealed and reported).
#include <chrono>
#include <csignal>
#include <filesystem>

#include "tool_common.h"
#include "v6class/cdnsim/corpus.h"
#include "v6class/obs/dashboard.h"
#include "v6class/obs/http.h"
#include "v6class/stream/engine.h"

using namespace v6;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

void print_density(const std::vector<density_row>& rows) {
    std::printf("\"dense\":[");
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::printf("%s{\"n\":%llu,\"p\":%u,\"prefixes\":%llu,\"covered\":%llu}",
                    i ? "," : "",
                    static_cast<unsigned long long>(rows[i].n), rows[i].p,
                    static_cast<unsigned long long>(rows[i].dense_prefix_count),
                    static_cast<unsigned long long>(rows[i].covered_addresses));
    std::printf("]");
}

void print_day_report(const day_report& r) {
    std::printf("{\"type\":\"day\",\"day\":%d,\"ref_day\":%d,\"active\":%llu,"
                "\"stable\":%llu,\"not_stable\":%llu,\"distinct_addrs\":%zu,"
                "\"distinct_64s\":%zu,",
                r.day, r.ref_day, static_cast<unsigned long long>(r.active),
                static_cast<unsigned long long>(r.stable),
                static_cast<unsigned long long>(r.not_stable),
                r.distinct_addresses, r.distinct_projected);
    print_density(r.density);
    std::printf(",\"gamma1\":%.4f,\"gamma4\":%.4f,\"gamma16\":%.4f,"
                "\"stable_fraction\":%.4f",
                r.gamma1, r.gamma4, r.gamma16, r.stable_fraction);
    if (r.est_day_addresses > 0)
        std::printf(",\"est_day_addrs\":%.0f,\"est_day_48s\":%.0f,"
                    "\"est_day_64s\":%.0f",
                    r.est_day_addresses, r.est_day_48s, r.est_day_64s);
    std::printf("}\n");
}

/// Builds the /dashboard model from a consistent engine view plus the
/// server's own lifecycle state.
obs::dashboard_model build_dashboard(const stream_engine& engine,
                                     const obs::metrics_server& server) {
    const stream_stats s = engine.stats();
    const live_view lv = engine.live();
    obs::dashboard_model model;
    model.title = "v6stream live classification";
    model.status = server.state();
    model.uptime_seconds = server.uptime_seconds();
    model.stats = {
        {"epoch", lv.epoch == kNoDay ? "-" : std::to_string(lv.epoch)},
        {"open day", s.open_day == kNoDay ? "-" : std::to_string(s.open_day)},
        {"records", std::to_string(s.records)},
        {"distinct /128s", std::to_string(s.distinct_addresses)},
        {"distinct /64s", std::to_string(s.distinct_projected)},
        {"late dropped", std::to_string(s.late_dropped)},
        {"drift events", std::to_string(engine.events().total())},
    };
    model.series.reserve(lv.series.size());
    for (const live_series_view& v : lv.series)
        model.series.push_back({v.name, v.help, v.current, v.history, v.alarmed});
    model.events = lv.events;
    model.links = {{"/metrics", "metrics"},
                   {"/trace", "trace"},
                   {"/profile", "profile"},
                   {"/healthz", "healthz"}};
    return model;
}

void print_status(const stream_stats& s, double rate) {
    std::printf("{\"type\":\"status\",\"fed\":%llu,\"records\":%llu,"
                "\"hits\":%llu,\"late_dropped\":%llu,\"dropped\":%llu,"
                "\"rate\":%.0f,\"open_day\":%d,\"sealed_day\":%d,"
                "\"distinct_addrs\":%zu,\"distinct_64s\":%zu}\n",
                static_cast<unsigned long long>(s.fed),
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.late_dropped),
                static_cast<unsigned long long>(s.dropped), rate,
                s.open_day == kNoDay ? -1 : s.open_day,
                s.sealed_day == kNoDay ? -1 : s.sealed_day,
                s.distinct_addresses, s.distinct_projected);
}

void print_final(const stream_snapshot& s, std::uint64_t malformed) {
    std::printf("{\"type\":\"final\",\"epoch\":%d,\"records\":%llu,"
                "\"hits\":%llu,\"late_dropped\":%llu,\"malformed\":%llu,"
                "\"distinct_addrs\":%zu,\"distinct_64s\":%zu,\"spectrum\":[",
                s.epoch == kNoDay ? -1 : s.epoch,
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.late_dropped),
                static_cast<unsigned long long>(malformed),
                s.distinct_addresses, s.distinct_projected);
    for (std::size_t n = 0; n < s.spectrum.size(); ++n)
        std::printf("%s%llu", n ? "," : "",
                    static_cast<unsigned long long>(s.spectrum[n]));
    std::printf("],");
    print_density(s.density);
    std::printf("}\n");
}

/// Drains and prints day reports not yet printed; returns the new count.
std::size_t drain_reports(const stream_engine& engine, std::size_t printed) {
    const std::vector<day_report> reports = engine.reports();
    for (std::size_t i = printed; i < reports.size(); ++i)
        print_day_report(reports[i]);
    if (reports.size() > printed) std::fflush(stdout);
    return reports.size();
}

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

}  // namespace

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    if (flags.has("help")) {
        std::puts(
            "usage: v6stream [--shards=N] [--batch=N] [--queue=N] [--n=3]\n"
            "                [--back=7] [--fwd=7] [--class=N@P ...]\n"
            "                [--status-every=RECORDS] [--spectrum=MAX]\n"
            "                [--metrics-port=P] [--replay=DIR] [feed-file|-]\n"
            "streaming classification of a \"day address [hits]\" feed;\n"
            "emits JSON lines (day roll-ups, status, final report)\n"
            "  --metrics-port=P   serve GET /metrics (Prometheus text),\n"
            "                     GET /healthz (JSON liveness),\n"
            "                     GET /dashboard (live HTML sparklines of\n"
            "                     the derived series + drift events),\n"
            "                     GET /trace (Chrome-trace JSON of the\n"
            "                     pipeline spans), and GET /profile\n"
            "                     (folded stacks from the sampling\n"
            "                     profiler) on 0.0.0.0:P while running");
        std::puts(tools::obs_exporter::help_lines());
        return 0;
    }
    tools::obs_exporter obs_dump(flags);

    stream_config cfg;
    cfg.shards = static_cast<unsigned>(flags.get_int("shards", 4));
    cfg.batch_size = static_cast<std::size_t>(flags.get_int("batch", 1024));
    cfg.queue_capacity = static_cast<std::size_t>(flags.get_int("queue", 64));
    cfg.stability_n = static_cast<unsigned>(flags.get_int("n", 3));
    cfg.window.window_back = static_cast<int>(flags.get_int("back", 7));
    cfg.window.window_fwd = static_cast<int>(flags.get_int("fwd", 7));
    cfg.spectrum_max = static_cast<unsigned>(flags.get_int("spectrum", 14));
    std::vector<std::pair<std::uint64_t, unsigned>> classes;
    for (const std::string& text : flags.get_all("class")) {
        const auto parsed = tools::parse_density_class(text);
        if (!parsed) {
            std::fprintf(stderr, "error: bad --class=%s (want e.g. 2@112)\n",
                         text.c_str());
            return 1;
        }
        classes.push_back(*parsed);
    }
    if (!classes.empty()) cfg.density_classes = std::move(classes);
    const auto status_every =
        static_cast<std::uint64_t>(flags.get_int("status-every", 100000));

    std::signal(SIGINT, handle_stop);
    std::signal(SIGTERM, handle_stop);

    // The daemon shares the process-wide registry so one /metrics endpoint
    // covers the engine, the library phase timers, and the tool itself —
    // and likewise the process-wide event log, so --events-out sees the
    // engine's drift alarms.
    obs::registry& reg = obs::registry::global();
    cfg.metrics_registry = &reg;
    cfg.events = &obs::event_log::global();
    const obs::counter malformed_total = reg.get_counter(
        "v6_stream_malformed_total", {},
        "Feed lines that failed to parse and were skipped.");
    const obs::gauge ingest_rate = reg.get_gauge(
        "v6_stream_ingest_rate", {},
        "Accepted records per second, averaged over the last status interval.");

    stream_engine engine(cfg);

    obs::metrics_server server;
    if (flags.has("metrics-port")) {
        server.set_health_payload([&engine] {
            const stream_stats s = engine.stats();
            return "\"last_seal_day\":" +
                   std::to_string(s.sealed_day == kNoDay ? -1 : s.sealed_day) +
                   ",\"open_day\":" +
                   std::to_string(s.open_day == kNoDay ? -1 : s.open_day) +
                   ",\"records\":" + std::to_string(s.records);
        });
        server.set_dashboard([&engine, &server] {
            return obs::render_dashboard(build_dashboard(engine, server));
        });
        std::string error;
        const auto port = static_cast<std::uint16_t>(
            flags.get_int("metrics-port", 9100));
        if (!server.start(port, &reg, &error)) {
            std::fprintf(stderr, "error: metrics server: %s\n", error.c_str());
            return 1;
        }
        // A live observability port implies live tracing and profiling:
        // /trace serves the span rings, /profile the sampled stacks.
        // (--trace-out may have enabled the tracer already; enable() is
        // idempotent, and the profiler start is skipped if --profile-out
        // already started it.)
        obs::tracer::enable();
        if (!obs::profiler::running()) obs::profiler::start();
        std::fprintf(stderr,
                     "metrics on http://0.0.0.0:%u/metrics, dashboard on "
                     "http://0.0.0.0:%u/dashboard (links to /trace, "
                     "/profile, /healthz)\n",
                     static_cast<unsigned>(server.port()),
                     static_cast<unsigned>(server.port()));
    }

    std::uint64_t malformed = 0;
    std::size_t printed_reports = 0;
    auto rate_mark = std::chrono::steady_clock::now();
    std::uint64_t rate_records = 0;

    if (flags.has("replay")) {
        // Replay a day_<n>.log corpus directory in day order.
        namespace fs = std::filesystem;
        std::vector<int> days;
        try {
            for (const auto& entry : fs::directory_iterator(flags.get("replay"))) {
                int day = 0;
                if (entry.is_regular_file() &&
                    std::sscanf(entry.path().filename().string().c_str(),
                                "day_%d.log", &day) == 1)
                    days.push_back(day);
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
        std::sort(days.begin(), days.end());
        for (const int day : days) {
            if (g_stop) break;
            const daily_log log = read_log_file(
                fs::path(flags.get("replay")) / corpus_file_name(day), day);
            for (const observation& o : log.records) engine.push(day, o.addr, o.hits);
            printed_reports = drain_reports(engine, printed_reports);
        }
    } else {
        std::ifstream file;
        const bool use_stdin =
            flags.positional().empty() || flags.positional()[0] == "-";
        if (!use_stdin) {
            file.open(flags.positional()[0]);
            if (!file) {
                std::fprintf(stderr, "error: cannot open %s\n",
                             flags.positional()[0].c_str());
                return 1;
            }
        }
        std::istream& in = use_stdin ? std::cin : file;

        std::string line;
        std::uint64_t line_number = 0;
        stream_record record;
        while (!g_stop && std::getline(in, line)) {
            ++line_number;
            const std::string_view text = trim(line);
            if (text.empty() || text.front() == '#') continue;
            if (!parse_stream_record(text, record)) {
                malformed_total.inc();
                if (++malformed <= 8)
                    std::fprintf(stderr, "warning: line %llu: malformed: %s\n",
                                 static_cast<unsigned long long>(line_number),
                                 line.c_str());
                continue;
            }
            engine.push(record);
            if (status_every > 0 && line_number % status_every == 0) {
                const stream_stats s = engine.stats();
                const auto now = std::chrono::steady_clock::now();
                const double dt =
                    std::chrono::duration<double>(now - rate_mark).count();
                const double rate =
                    dt > 0.0
                        ? static_cast<double>(s.records - rate_records) / dt
                        : 0.0;
                rate_mark = now;
                rate_records = s.records;
                ingest_rate.set(static_cast<std::int64_t>(rate));
                print_status(s, rate);
                printed_reports = drain_reports(engine, printed_reports);
            }
        }
    }

    // Ordered shutdown (also the SIGINT/SIGTERM path, since the loops above
    // merely break out on g_stop): mark the server draining so probes stop
    // routing here, then finish() seals the open day and joins the roll
    // thread; we drain the reports and print the final object, stop the
    // metrics server, and only then write the metrics/events dumps — so the
    // files reflect the fully-settled registry, including the last seal.
    server.set_state("draining");
    engine.finish();
    printed_reports = drain_reports(engine, printed_reports);
    print_final(engine.snapshot(), malformed);
    server.stop();
    obs_dump.write();
    return 0;
}
