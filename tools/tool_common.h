// tool_common.h — shared plumbing for the command-line tools: flag
// parsing, input selection (file or stdin), consistent diagnostics, and
// the uniform observability flags (--metrics-out / --trace-out /
// --events-out).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "v6class/ip/io.h"
#include "v6class/obs/atomic_file.h"
#include "v6class/obs/event_log.h"
#include "v6class/obs/introspect.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/pmu.h"
#include "v6class/obs/profile.h"
#include "v6class/obs/timer.h"

namespace v6::tools {

/// Minimal GNU-style flag parser: collects "--name=value" and "--name"
/// into a map, everything else into positional arguments.
class flag_set {
public:
    flag_set(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                const std::size_t eq = arg.find('=');
                if (eq == std::string::npos)
                    flags_.emplace_back(arg.substr(2), "");
                else
                    flags_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
            } else {
                positional_.push_back(arg);
            }
        }
    }

    bool has(const std::string& name) const {
        for (const auto& [k, v] : flags_)
            if (k == name) return true;
        return false;
    }

    std::string get(const std::string& name, const std::string& fallback = "") const {
        for (const auto& [k, v] : flags_)
            if (k == name) return v;
        return fallback;
    }

    long get_int(const std::string& name, long fallback) const {
        const std::string v = get(name);
        return v.empty() ? fallback : std::atol(v.c_str());
    }

    double get_double(const std::string& name, double fallback) const {
        const std::string v = get(name);
        return v.empty() ? fallback : std::atof(v.c_str());
    }

    /// Every value given for a repeatable flag.
    std::vector<std::string> get_all(const std::string& name) const {
        std::vector<std::string> out;
        for (const auto& [k, v] : flags_)
            if (k == name) out.push_back(v);
        return out;
    }

    const std::vector<std::string>& positional() const { return positional_; }

    /// Every (name, value) pair in command-line order, for table-driven
    /// parsing (flag_table below).
    const std::vector<std::pair<std::string, std::string>>& entries() const {
        return flags_;
    }

private:
    std::vector<std::pair<std::string, std::string>> flags_;
    std::vector<std::string> positional_;
};

/// Declarative flag table: a tool declares each flag once — name, bound
/// target variable, help line — and gets type-checked parsing, unknown-
/// flag rejection, and generated usage text from one place, instead of
/// re-implementing `flags.get_int(...)` chains by hand.
///
///     double scale = 0.2;
///     bool wire = false;
///     tools::flag_table table("usage: v6synth --out=DIR [--scale=S]");
///     table.add("scale", &scale, "world scale factor");
///     table.add("wire", &wire, "emit the corpus as a v6wire file");
///     if (const auto err = table.parse(flags)) { ... }
///
/// Targets keep their initialized value when the flag is absent, so the
/// declaration *is* the default. parse() rejects flags not in the table
/// (catching typos like --shard=4) and non-numeric values for numeric
/// targets; the uniform observability flags (--metrics-out and friends,
/// consumed by obs_exporter) and --help are always accepted.
class flag_table {
public:
    explicit flag_table(std::string synopsis) : synopsis_(std::move(synopsis)) {}

    flag_table& add(const char* name, bool* target, const char* help) {
        defs_.push_back({name, kind::toggle, target, help});
        return *this;
    }
    flag_table& add(const char* name, long* target, const char* help) {
        defs_.push_back({name, kind::integer, target, help});
        return *this;
    }
    flag_table& add(const char* name, int* target, const char* help) {
        defs_.push_back({name, kind::int32, target, help});
        return *this;
    }
    flag_table& add(const char* name, unsigned* target, const char* help) {
        defs_.push_back({name, kind::uint32, target, help});
        return *this;
    }
    flag_table& add(const char* name, std::uint16_t* target, const char* help) {
        defs_.push_back({name, kind::uint16, target, help});
        return *this;
    }
    flag_table& add(const char* name, std::size_t* target, const char* help) {
        defs_.push_back({name, kind::size, target, help});
        return *this;
    }
    flag_table& add(const char* name, double* target, const char* help) {
        defs_.push_back({name, kind::real, target, help});
        return *this;
    }
    flag_table& add(const char* name, std::string* target, const char* help) {
        defs_.push_back({name, kind::text, target, help});
        return *this;
    }
    /// Repeatable: every occurrence appends.
    flag_table& add(const char* name, std::vector<std::string>* target,
                    const char* help) {
        defs_.push_back({name, kind::text_list, target, help});
        return *this;
    }
    /// Optional-value flag (`--x` or `--x=V`): presence sets *given,
    /// a non-empty value overwrites *value.
    flag_table& add(const char* name, bool* given, std::string* value,
                    const char* help) {
        defs_.push_back({name, kind::opt_text, given, help, value});
        return *this;
    }

    /// Applies every command-line flag to its target. Returns an error
    /// message for an unknown flag or unparsable value, nullopt on
    /// success.
    std::optional<std::string> parse(const flag_set& flags) const {
        for (const auto& [name, value] : flags.entries()) {
            if (is_uniform(name)) continue;
            const def* d = find(name);
            if (!d)
                return "unknown flag --" + name + " (see --help)";
            if (const auto err = apply(*d, value))
                return "--" + name + "=" + value + ": " + *err;
        }
        return std::nullopt;
    }

    /// The generated help text: synopsis, one line per declared flag,
    /// then the uniform observability flags.
    std::string usage() const {
        std::string out = synopsis_;
        if (!out.empty() && out.back() != '\n') out += '\n';
        out += "options:\n";
        for (const def& d : defs_) {
            std::string line = "  --";
            line += d.name;
            switch (d.k) {
                case kind::toggle: break;
                case kind::opt_text: line += "[=V]"; break;
                default: line += "=V"; break;
            }
            while (line.size() < 20) line += ' ';
            line += ' ';
            line += d.help;
            out += line;
            out += '\n';
        }
        out += obs_exporter_help();
        return out;
    }

private:
    enum class kind { toggle, integer, int32, uint32, uint16, size, real, text, text_list, opt_text };

    struct def {
        const char* name;
        kind k;
        void* target;
        const char* help;
        void* extra = nullptr;  // opt_text: the string target
    };

    static bool is_uniform(const std::string& name) {
        return name == "help" || name == "metrics-out" || name == "trace-out" ||
               name == "events-out" || name == "profile-out" ||
               name == "profile-hz" || name == "pmu-out";
    }

    const def* find(const std::string& name) const {
        for (const def& d : defs_)
            if (name == d.name) return &d;
        return nullptr;
    }

    static std::optional<std::string> apply(const def& d, const std::string& value) {
        switch (d.k) {
            case kind::toggle:
                *static_cast<bool*>(d.target) = true;
                return std::nullopt;
            case kind::opt_text:
                *static_cast<bool*>(d.target) = true;
                if (!value.empty()) *static_cast<std::string*>(d.extra) = value;
                return std::nullopt;
            case kind::text:
                *static_cast<std::string*>(d.target) = value;
                return std::nullopt;
            case kind::text_list:
                static_cast<std::vector<std::string>*>(d.target)->push_back(value);
                return std::nullopt;
            case kind::real: {
                char* end = nullptr;
                const double v = std::strtod(value.c_str(), &end);
                if (value.empty() || end != value.c_str() + value.size())
                    return "expected a number";
                *static_cast<double*>(d.target) = v;
                return std::nullopt;
            }
            default: {
                char* end = nullptr;
                const long long v = std::strtoll(value.c_str(), &end, 10);
                if (value.empty() || end != value.c_str() + value.size())
                    return "expected an integer";
                switch (d.k) {
                    case kind::integer:
                        *static_cast<long*>(d.target) = static_cast<long>(v);
                        break;
                    case kind::int32:
                        *static_cast<int*>(d.target) = static_cast<int>(v);
                        break;
                    case kind::uint32:
                        if (v < 0) return "expected a non-negative integer";
                        *static_cast<unsigned*>(d.target) = static_cast<unsigned>(v);
                        break;
                    case kind::uint16:
                        if (v < 0 || v > 65535) return "expected a port number (0..65535)";
                        *static_cast<std::uint16_t*>(d.target) =
                            static_cast<std::uint16_t>(v);
                        break;
                    case kind::size:
                        if (v < 0) return "expected a non-negative integer";
                        *static_cast<std::size_t*>(d.target) =
                            static_cast<std::size_t>(v);
                        break;
                    default:
                        break;
                }
                return std::nullopt;
            }
        }
    }

    /// Forwarded here (rather than calling obs_exporter::help_lines()
    /// directly) so usage() stays definable before obs_exporter.
    static std::string obs_exporter_help();

    std::string synopsis_;
    std::vector<def> defs_;
};

/// The uniform observability flags every tool accepts:
///
///   --metrics-out=FILE   dump the process metrics registry on exit
///                        (FILE ending in .prom: Prometheus text;
///                        anything else: structured JSON)
///   --trace-out=FILE     Chrome-trace JSON of the run's phase spans
///                        (load in chrome://tracing / ui.perfetto.dev)
///   --events-out=FILE    JSON-lines dump of the process event log
///                        (drift alarms, lifecycle events)
///   --profile-out=FILE   folded-stack text from the sampling profiler
///                        (feed to flamegraph.pl / speedscope); sampling
///                        runs for the whole tool lifetime at
///                        --profile-hz=N (default 97)
///   --pmu-out=FILE       arm hardware-counter scopes (v6::obs::pmu)
///                        and write the final per-thread/per-site
///                        snapshot as JSON; where perf_event_open is
///                        restricted the snapshot carries the reason
///                        instead of counters
///
/// All writes are atomic (tmp-file + rename), so a dump is never
/// observed half-written. Declare one after flag parsing; the
/// destructor writes the dumps on every return path, after all other
/// work of main() has finished.
class obs_exporter {
public:
    explicit obs_exporter(const flag_set& flags)
        : metrics_out_(flags.get("metrics-out")),
          events_out_(flags.get("events-out")),
          profile_out_(flags.get("profile-out")),
          pmu_out_(flags.get("pmu-out")) {
        const std::string trace_out = flags.get("trace-out");
        if (!trace_out.empty()) obs::trace_log::enable(trace_out);
        if (!pmu_out_.empty()) obs::pmu::enable();  // no-op when denied
        if (!profile_out_.empty()) {
            const auto hz =
                static_cast<unsigned>(flags.get_int("profile-hz", 97));
            if (!obs::profiler::start(hz)) {
                std::fprintf(stderr,
                             "warning: profiler unavailable; ignoring "
                             "--profile-out\n");
                profile_out_.clear();
            }
        }
    }

    ~obs_exporter() { write(); }

    obs_exporter(const obs_exporter&) = delete;
    obs_exporter& operator=(const obs_exporter&) = delete;

    /// Writes the dumps now (idempotent; also called by the destructor).
    /// Tools with an ordering requirement — v6stream must join the roll
    /// thread before the final dump — call this explicitly at the right
    /// point.
    void write() {
        if (written_) return;
        written_ = true;
        if (!metrics_out_.empty()) {
            obs::update_process_gauges(obs::registry::global());
            if (!obs::registry::global().write_file(metrics_out_))
                std::fprintf(stderr, "warning: cannot write %s\n",
                             metrics_out_.c_str());
        }
        // When the log streams to the file already (v6stream's daemon
        // mode enables size-capped rotation), the exit dump would
        // clobber the rotated file with just the retained window.
        if (!events_out_.empty() && !obs::event_log::global().file_enabled() &&
            !obs::event_log::global().dump(events_out_))
            std::fprintf(stderr, "warning: cannot write %s\n",
                         events_out_.c_str());
        if (!profile_out_.empty()) {
            obs::profiler::stop();
            if (!obs::atomic_write_file(profile_out_,
                                        obs::profiler::folded_text()))
                std::fprintf(stderr, "warning: cannot write %s\n",
                             profile_out_.c_str());
        }
        if (!pmu_out_.empty() &&
            !obs::atomic_write_file(pmu_out_, obs::pmu::snapshot_json()))
            std::fprintf(stderr, "warning: cannot write %s\n",
                         pmu_out_.c_str());
    }

    static const char* help_lines() {
        return "  --metrics-out=F  dump metrics on exit (.prom = Prometheus, "
               "else JSON)\n"
               "  --trace-out=F    write a Chrome-trace JSON of the run\n"
               "  --events-out=F   write the event log (drift alarms) as "
               "JSON lines\n"
               "  --profile-out=F  sample the process (--profile-hz=N, "
               "default 97) and\n"
               "                   write folded stacks for flamegraph.pl\n"
               "  --pmu-out=F      count hardware events (cycles, cache "
               "misses, ...) and\n"
               "                   write the final PMU snapshot as JSON";
    }

private:
    std::string metrics_out_;
    std::string events_out_;
    std::string profile_out_;
    std::string pmu_out_;
    bool written_ = false;
};

inline std::string flag_table::obs_exporter_help() {
    return std::string(obs_exporter::help_lines()) + "\n";
}

/// Parses a density-class spec "N@P" or "N@/P" (e.g. "2@112", the
/// paper's n@/p classes); shared by v6dense and v6stream.
inline std::optional<std::pair<std::uint64_t, unsigned>> parse_density_class(
    const std::string& text) {
    const std::size_t at = text.find('@');
    if (at == std::string::npos) return std::nullopt;
    const long n = std::atol(text.substr(0, at).c_str());
    std::string p_text = text.substr(at + 1);
    if (!p_text.empty() && p_text[0] == '/') p_text.erase(0, 1);
    const long p = std::atol(p_text.c_str());
    if (n < 1 || p < 0 || p > 128) return std::nullopt;
    return std::make_pair(static_cast<std::uint64_t>(n), static_cast<unsigned>(p));
}

/// Prints the uniform malformed-line warning: how many lines were
/// skipped, and where the first few are (line number + content), so a
/// bad feed is locatable. Blank lines and '#' comments are tolerated by
/// the readers and never reported here.
inline void report_malformed_lines(const read_report& report,
                                   const std::string& source) {
    if (report.malformed == 0) return;
    std::fprintf(stderr, "warning: %s: %llu malformed line(s) skipped\n",
                 source.c_str(),
                 static_cast<unsigned long long>(report.malformed));
    for (const read_error& e : report.first_errors)
        std::fprintf(stderr, "warning:   line %llu: %s\n",
                     static_cast<unsigned long long>(e.line_number),
                     e.text.c_str());
}

/// Reads addresses from the first positional argument (a file) or stdin
/// when none is given ("-" also means stdin). Blank lines and '#'
/// comments are tolerated; malformed lines are reported to stderr with
/// their line numbers. Returns nullopt when the file cannot be opened.
inline std::optional<std::vector<address>> read_input_addresses(const flag_set& flags) {
    static const obs::histogram read_hist = obs::registry::global().get_histogram(
        "v6_tools_read_input_seconds", obs::latency_buckets(), {},
        "Time to read and parse the input address list.");
    const obs::trace_scope span("read_input", read_hist);
    std::vector<address> addrs;
    read_report report;
    std::string source = "<stdin>";
    if (flags.positional().empty() || flags.positional()[0] == "-") {
        report = read_addresses(std::cin, addrs);
    } else {
        source = flags.positional()[0];
        std::ifstream in(source);
        if (!in) {
            std::fprintf(stderr, "error: cannot open %s\n", source.c_str());
            return std::nullopt;
        }
        report = read_addresses(in, addrs);
    }
    report_malformed_lines(report, source);
    return addrs;
}

}  // namespace v6::tools
