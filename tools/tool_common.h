// tool_common.h — shared plumbing for the command-line tools: flag
// parsing, input selection (file or stdin), and consistent diagnostics.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "v6class/ip/io.h"

namespace v6::tools {

/// Minimal GNU-style flag parser: collects "--name=value" and "--name"
/// into a map, everything else into positional arguments.
class flag_set {
public:
    flag_set(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                const std::size_t eq = arg.find('=');
                if (eq == std::string::npos)
                    flags_.emplace_back(arg.substr(2), "");
                else
                    flags_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
            } else {
                positional_.push_back(arg);
            }
        }
    }

    bool has(const std::string& name) const {
        for (const auto& [k, v] : flags_)
            if (k == name) return true;
        return false;
    }

    std::string get(const std::string& name, const std::string& fallback = "") const {
        for (const auto& [k, v] : flags_)
            if (k == name) return v;
        return fallback;
    }

    long get_int(const std::string& name, long fallback) const {
        const std::string v = get(name);
        return v.empty() ? fallback : std::atol(v.c_str());
    }

    double get_double(const std::string& name, double fallback) const {
        const std::string v = get(name);
        return v.empty() ? fallback : std::atof(v.c_str());
    }

    /// Every value given for a repeatable flag.
    std::vector<std::string> get_all(const std::string& name) const {
        std::vector<std::string> out;
        for (const auto& [k, v] : flags_)
            if (k == name) out.push_back(v);
        return out;
    }

    const std::vector<std::string>& positional() const { return positional_; }

private:
    std::vector<std::pair<std::string, std::string>> flags_;
    std::vector<std::string> positional_;
};

/// Reads addresses from the first positional argument (a file) or stdin
/// when none is given ("-" also means stdin). Reports parse accounting
/// to stderr; returns nullopt when the file cannot be opened.
inline std::optional<std::vector<address>> read_input_addresses(const flag_set& flags) {
    std::vector<address> addrs;
    read_report report;
    if (flags.positional().empty() || flags.positional()[0] == "-") {
        report = read_addresses(std::cin, addrs);
    } else {
        std::ifstream in(flags.positional()[0]);
        if (!in) {
            std::fprintf(stderr, "error: cannot open %s\n",
                         flags.positional()[0].c_str());
            return std::nullopt;
        }
        report = read_addresses(in, addrs);
    }
    if (report.malformed > 0) {
        std::fprintf(stderr, "warning: %llu malformed line(s) skipped; first: %s\n",
                     static_cast<unsigned long long>(report.malformed),
                     report.first_errors.empty() ? "?"
                                                 : report.first_errors[0].c_str());
    }
    return addrs;
}

}  // namespace v6::tools
