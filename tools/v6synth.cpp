// v6synth — generate a synthetic CDN log corpus (and companion files) so
// the other tools have realistic data to chew on.
//
//   v6synth --out=DIR [--first=358] [--last=372] [--scale=0.2] [--seed=42]
//           [--routes] [--routers] [--zone]
//   v6synth --stream [--first=D] [--last=D] [--scale=S] [--seed=N]
//   v6synth --wire=FILE [--wire-batch=N] [--first=D] ...
//
// Writes day_<n>.log files; with --routes also writes routes.txt
// ("prefix asn" lines, for v6profile / v6mkdb); with --routers a
// routers.txt of simulated router interface addresses (for v6dense);
// with --zone a zone.ptr reverse-DNS file (for v6arpa). With --stream,
// emits the corpus to stdout as "day address hits" feed lines instead —
// the live observation-feed format v6stream ingests. With --wire, the
// same feed is written to FILE in the v6wire binary container (replay
// with `v6stream --replay=FILE` or `v6wire send`).
#include <fstream>
#include <iostream>

#include "tool_common.h"
#include "v6class/cdnsim/corpus.h"
#include "v6class/cdnsim/world.h"
#include "v6class/dnssim/reverse_zone.h"
#include "v6class/net/wire.h"
#include "v6class/routersim/topology.h"
#include "v6class/stream/record.h"

using namespace v6;

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    std::string out, wire_file;
    bool stream = false, routes = false, routers = false, zone = false;
    double scale = 0.2;
    long seed = 42;
    int first = kMar2015 - 7, last = kMar2015 + 7;
    std::size_t wire_batch = net::kWireDefaultBatch;
    tools::flag_table cli(
        "usage: v6synth --out=DIR [--first=D] [--last=D] [--scale=S]\n"
        "               [--seed=N] [--routes] [--routers] [--zone]\n"
        "       v6synth --stream [--first=D] [--last=D] [--scale=S] [--seed=N]\n"
        "       v6synth --wire=FILE [--wire-batch=N] [--first=D] ...\n"
        "generate a synthetic aggregated-log corpus (--stream: emit it as\n"
        "\"day address hits\" feed lines on stdout; --wire: write it to FILE\n"
        "in the v6wire binary container, for v6stream --replay / v6wire send)");
    cli.add("out", &out, "write day_<n>.log corpus under DIR")
        .add("stream", &stream, "emit the corpus as feed lines on stdout")
        .add("wire", &wire_file, "write the corpus as a v6wire capture file")
        .add("wire-batch", &wire_batch, "records per wire datagram (default 43)")
        .add("first", &first, "first day index (default 358)")
        .add("last", &last, "last day index (default 372)")
        .add("scale", &scale, "world scale factor (default 0.2)")
        .add("seed", &seed, "world RNG seed (default 42)")
        .add("routes", &routes, "also write routes.txt (\"prefix asn\" lines)")
        .add("routers", &routers, "also write routers.txt interface addresses")
        .add("zone", &zone, "also write zone.ptr reverse-DNS records");
    if (flags.has("help")) {
        std::fputs(cli.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = cli.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    if (out.empty() && !stream && wire_file.empty()) {
        std::fputs(cli.usage().c_str(), stdout);
        return 1;
    }
    const tools::obs_exporter obs_dump(flags);
    world_config cfg;
    cfg.scale = scale;
    cfg.seed = static_cast<std::uint64_t>(seed);
    const world w(cfg);
    if (last < first) {
        std::fprintf(stderr, "error: --last before --first\n");
        return 1;
    }
    if (wire_batch == 0 || wire_batch > net::kWireMaxBatch) {
        std::fprintf(stderr, "error: --wire-batch out of range (1..%zu)\n",
                     net::kWireMaxBatch);
        return 1;
    }

    if (stream) {
        std::uint64_t emitted = 0;
        for (int d = first; d <= last; ++d) {
            const daily_log log = w.day_log(d);
            for (const observation& o : log.records) {
                write_stream_record(std::cout, stream_record{d, o.addr, o.hits});
                ++emitted;
            }
        }
        std::cout.flush();
        std::fprintf(stderr, "emitted %llu feed records for days %d..%d\n",
                     static_cast<unsigned long long>(emitted), first, last);
    }

    if (!wire_file.empty()) {
        std::vector<stream_record> records;
        for (int d = first; d <= last; ++d) {
            const daily_log log = w.day_log(d);
            for (const observation& o : log.records)
                records.push_back(stream_record{d, o.addr, o.hits});
        }
        const auto written = net::write_wire_file(wire_file, records, wire_batch);
        if (!written) {
            std::fprintf(stderr, "error: cannot write %s\n", wire_file.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "wrote %zu wire records (%llu datagrams) to %s\n",
                     records.size(), static_cast<unsigned long long>(*written),
                     wire_file.c_str());
    }

    if (out.empty()) return 0;

    const std::filesystem::path dir = out;
    try {
        const int written = write_corpus(w, first, last, dir);
        std::fprintf(stderr, "wrote %d day logs to %s\n", written,
                     dir.string().c_str());
        if (routes) {
            std::ofstream route_out(dir / "routes.txt");
            for (const bgp_route& r : w.registry().routes())
                route_out << r.pfx.to_string() << ' ' << r.asn << '\n';
            std::fprintf(stderr, "wrote %zu routes to %s\n",
                         w.registry().routes().size(),
                         (dir / "routes.txt").string().c_str());
        }
        if (routers) {
            const router_topology topo(w);
            std::ofstream router_out(dir / "routers.txt");
            for (const address& a : topo.interfaces())
                router_out << a.to_string() << '\n';
            std::fprintf(stderr, "wrote %zu router addresses to %s\n",
                         topo.interfaces().size(),
                         (dir / "routers.txt").string().c_str());
        }
        if (zone) {
            const router_topology topo(w);
            const reverse_zone rzone = build_world_zone(w, &topo);
            std::ofstream zone_out(dir / "zone.ptr");
            export_zone_file(rzone, zone_out);
            std::fprintf(stderr, "wrote %zu PTR records to %s\n", rzone.size(),
                         (dir / "zone.ptr").string().c_str());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
