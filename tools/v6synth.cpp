// v6synth — generate a synthetic CDN log corpus (and companion files) so
// the other tools have realistic data to chew on.
//
//   v6synth --out=DIR [--first=358] [--last=372] [--scale=0.2] [--seed=42]
//           [--routes] [--routers] [--zone]
//   v6synth --stream [--first=D] [--last=D] [--scale=S] [--seed=N]
//
// Writes day_<n>.log files; with --routes also writes routes.txt
// ("prefix asn" lines, for v6profile); with --routers a routers.txt of
// simulated router interface addresses (for v6dense); with --zone a
// zone.ptr reverse-DNS file (for v6arpa). With --stream, emits the
// corpus to stdout as "day address hits" feed lines instead — the live
// observation-feed format v6stream ingests.
#include <fstream>
#include <iostream>

#include "tool_common.h"
#include "v6class/cdnsim/corpus.h"
#include "v6class/cdnsim/world.h"
#include "v6class/dnssim/reverse_zone.h"
#include "v6class/routersim/topology.h"
#include "v6class/stream/record.h"

using namespace v6;

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    if (flags.has("help") || (!flags.has("out") && !flags.has("stream"))) {
        std::puts(
            "usage: v6synth --out=DIR [--first=D] [--last=D] [--scale=S]\n"
            "               [--seed=N] [--routes] [--routers] [--zone]\n"
            "       v6synth --stream [--first=D] [--last=D] [--scale=S] [--seed=N]\n"
            "generate a synthetic aggregated-log corpus (--stream: emit it as\n"
            "\"day address hits\" feed lines on stdout, for v6stream)");
        std::puts(tools::obs_exporter::help_lines());
        return flags.has("help") ? 0 : 1;
    }
    const tools::obs_exporter obs_dump(flags);
    world_config cfg;
    cfg.scale = flags.get_double("scale", 0.2);
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    const world w(cfg);
    const int first = static_cast<int>(flags.get_int("first", kMar2015 - 7));
    const int last = static_cast<int>(flags.get_int("last", kMar2015 + 7));
    if (last < first) {
        std::fprintf(stderr, "error: --last before --first\n");
        return 1;
    }

    if (flags.has("stream")) {
        std::uint64_t emitted = 0;
        for (int d = first; d <= last; ++d) {
            const daily_log log = w.day_log(d);
            for (const observation& o : log.records) {
                write_stream_record(std::cout, stream_record{d, o.addr, o.hits});
                ++emitted;
            }
        }
        std::cout.flush();
        std::fprintf(stderr, "emitted %llu feed records for days %d..%d\n",
                     static_cast<unsigned long long>(emitted), first, last);
        if (!flags.has("out")) return 0;
    }

    const std::filesystem::path dir = flags.get("out");
    try {
        const int written = write_corpus(w, first, last, dir);
        std::fprintf(stderr, "wrote %d day logs to %s\n", written,
                     dir.string().c_str());
        if (flags.has("routes")) {
            std::ofstream out(dir / "routes.txt");
            for (const bgp_route& r : w.registry().routes())
                out << r.pfx.to_string() << ' ' << r.asn << '\n';
            std::fprintf(stderr, "wrote %zu routes to %s\n",
                         w.registry().routes().size(),
                         (dir / "routes.txt").string().c_str());
        }
        if (flags.has("routers")) {
            const router_topology topo(w);
            std::ofstream out(dir / "routers.txt");
            for (const address& a : topo.interfaces()) out << a.to_string() << '\n';
            std::fprintf(stderr, "wrote %zu router addresses to %s\n",
                         topo.interfaces().size(),
                         (dir / "routers.txt").string().c_str());
        }
        if (flags.has("zone")) {
            const router_topology topo(w);
            const reverse_zone zone = build_world_zone(w, &topo);
            std::ofstream out(dir / "zone.ptr");
            export_zone_file(zone, out);
            std::fprintf(stderr, "wrote %zu PTR records to %s\n", zone.size(),
                         (dir / "zone.ptr").string().c_str());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
