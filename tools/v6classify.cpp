// v6classify — classify IPv6 addresses by content.
//
//   v6classify [file]               TSV: addr, transition, scope, iid,
//                                   malone label, decoded MAC / IPv4
//   v6classify --summary [file]     class counts only
//   v6classify --spatial [file]     adds the spatial class of each
//                                   address within the input population
//
// Reads one address per line from `file` or stdin.
#include <map>

#include "tool_common.h"
#include "v6class/addrtype/classify.h"
#include "v6class/addrtype/malone.h"
#include "v6class/ip/ipv4.h"
#include "v6class/spatial/spatial_class.h"

using namespace v6;

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    bool summary = false, spatial = false;
    tools::flag_table table(
        "usage: v6classify [--summary] [--spatial] [file]\n"
        "classify IPv6 addresses (one per line; '-' or no file = stdin)");
    table.add("summary", &summary, "print class counts only")
        .add("spatial", &spatial, "add each address's spatial class");
    if (flags.has("help")) {
        std::fputs(table.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = table.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    const tools::obs_exporter obs_dump(flags);
    const auto addrs = tools::read_input_addresses(flags);
    if (!addrs) return 1;

    if (summary) {
        std::map<std::string, std::uint64_t> transitions, iids, malones;
        for (const address& a : *addrs) {
            const classification c = classify(a);
            ++transitions[std::string(to_string(c.transition))];
            ++iids[std::string(to_string(c.iid))];
            ++malones[std::string(to_string(malone_classify(a)))];
        }
        std::printf("%zu addresses\n\ntransition:\n", addrs->size());
        for (const auto& [k, v] : transitions)
            std::printf("  %-14s %llu\n", k.c_str(),
                        static_cast<unsigned long long>(v));
        std::puts("\niid kind:");
        for (const auto& [k, v] : iids)
            std::printf("  %-14s %llu\n", k.c_str(),
                        static_cast<unsigned long long>(v));
        std::puts("\nmalone label:");
        for (const auto& [k, v] : malones)
            std::printf("  %-14s %llu\n", k.c_str(),
                        static_cast<unsigned long long>(v));
        return 0;
    }

    radix_tree population;
    std::optional<spatial_classifier> spatial_cls;
    if (spatial) {
        for (const address& a : *addrs) population.add(a);
        spatial_cls.emplace(population);
    }

    std::printf("address\ttransition\tscope\tiid\tmalone%s\tdetail\n",
                spatial ? "\tspatial" : "");
    for (const address& a : *addrs) {
        const classification c = classify(a);
        std::string detail;
        if (c.mac) detail = "mac=" + c.mac->to_string();
        if (c.embedded_ipv4) {
            if (!detail.empty()) detail += ' ';
            detail += "v4=" + ipv4_address{*c.embedded_ipv4}.to_string();
        }
        std::string spatial_col;
        if (spatial)
            spatial_col =
                "\t" + std::string(to_string(spatial_cls->classify(a)));
        std::printf("%s\t%s\t%s\t%s\t%s%s\t%s\n", a.to_string().c_str(),
                    std::string(to_string(c.transition)).c_str(),
                    std::string(to_string(c.scope)).c_str(),
                    std::string(to_string(c.iid)).c_str(),
                    std::string(to_string(malone_classify(a))).c_str(),
                    spatial_col.c_str(), detail.c_str());
    }
    return 0;
}
