// v6profile — per-network addressing-practice inference over a corpus
// (the Section 7.1 extension: practice-aware subscriber estimation).
//
//   v6profile --corpus=DIR --routes=FILE --ref=DAY
//
// FILE holds "prefix asn" lines (v6synth --routes writes one). Emits one
// line per origin ASN with its fingerprint, inferred practice, and
// subscriber estimate vs. the naive /64 count.
#include <fstream>

#include "tool_common.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/network_profile.h"
#include "v6class/cdnsim/corpus.h"
#include "v6class/cdnsim/log.h"

using namespace v6;

namespace {

bool load_routes(const std::string& file, rir_registry& registry) {
    std::ifstream in(file);
    if (!in) return false;
    const read_report report =
        read_prefix_lines(in, [&](const prefix& pfx, std::uint64_t asn) {
            registry.advertise(pfx, static_cast<std::uint32_t>(asn));
        });
    tools::report_malformed_lines(report, file);
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    std::string corpus, routes;
    int ref = 0;
    tools::flag_table cli(
        "usage: v6profile --corpus=DIR --routes=FILE --ref=DAY\n"
        "per-ASN addressing-practice inference and subscriber estimates");
    cli.add("corpus", &corpus, "directory of day_<n>.log files (required)")
        .add("routes", &routes, "\"prefix asn\" route file (required)")
        .add("ref", &ref, "reference day index (required)");
    if (flags.has("help")) {
        std::fputs(cli.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = cli.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    if (corpus.empty() || routes.empty() || !flags.has("ref")) {
        std::fputs(cli.usage().c_str(), stdout);
        return 1;
    }
    const tools::obs_exporter obs_dump(flags);

    rir_registry registry;
    if (!load_routes(routes, registry)) {
        std::fprintf(stderr, "error: cannot read %s\n", routes.c_str());
        return 1;
    }

    daily_series raw;
    try {
        raw = read_corpus(corpus);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    daily_series native;
    for (const int d : raw.days())
        native.set_day(d, cull_transition(raw.day(d)).other);

    const auto profiles = profile_networks(registry, native, ref);
    if (profiles.empty()) {
        std::fprintf(stderr, "error: no routed activity on day %d\n", ref);
        return 1;
    }

    text_table table({"ASN", "addrs/day", "/64s/day", "a-per-64", "priv",
                      "stable64", "dense112", "practice", "subs-est",
                      "naive-64"});
    for (const network_profile& p : profiles) {
        table.add_row({"AS" + std::to_string(p.asn),
                       format_count(static_cast<double>(p.daily_addresses)),
                       format_count(static_cast<double>(p.daily_64s)),
                       format_fixed(p.addrs_per_64, 2),
                       format_pct(p.pseudorandom_share),
                       format_pct(p.stable_64_share_3d),
                       format_pct(p.dense_112_share),
                       std::string(to_string(p.guess)),
                       format_count(p.subscriber_estimate),
                       format_count(p.naive_64_estimate)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    return 0;
}
