// v6wire — inspect, dump, and transmit v6wire capture files.
//
//   v6wire info FILE              datagram/record counts and decode stats
//   v6wire dump FILE              decode to "day address hits" feed lines
//                                 (byte-identical to v6synth --stream for
//                                 a capture of the same world)
//   v6wire send FILE HOST PORT    replay the capture's datagrams over UDP
//          [--rate=R]             to a v6stream --listen collector
#include <csignal>
#include <iostream>

#include "tool_common.h"
#include "v6class/net/replay.h"
#include "v6class/net/wire.h"
#include "v6class/stream/record.h"

using namespace v6;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

/// Runs every datagram of `path` through a decoder; returns false on a
/// file-level error (message already printed).
bool scan_file(const std::string& path, net::wire_decoder* decoder,
               const std::function<void(const std::vector<stream_record>&)>& sink,
               std::uint64_t* bytes) {
    net::wire_file_reader reader(path);
    if (!reader.valid()) {
        std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
        return false;
    }
    std::vector<std::uint8_t> datagram;
    std::vector<stream_record> records;
    while (reader.next(datagram)) {
        if (bytes) *bytes += datagram.size();
        records.clear();
        if (decoder->decode(datagram.data(), datagram.size(), records) && sink)
            sink(records);
    }
    if (!reader.error().empty()) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                     reader.error().c_str());
        return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    const tools::flag_set flags(argc, argv);
    double rate = 0;
    tools::flag_table cli(
        "usage: v6wire info FILE\n"
        "       v6wire dump FILE\n"
        "       v6wire send FILE HOST PORT [--rate=R]\n"
        "inspect / dump / transmit a v6wire capture file\n"
        "(dump emits \"day address hits\" feed lines; send paces at R\n"
        "records/second, 0 = line rate)");
    cli.add("rate", &rate, "send pacing in records/second (0 = line rate)");
    if (flags.has("help")) {
        std::fputs(cli.usage().c_str(), stdout);
        return 0;
    }
    if (const auto err = cli.parse(flags)) {
        std::fprintf(stderr, "error: %s\n", err->c_str());
        return 1;
    }
    const tools::obs_exporter obs_dump(flags);
    const auto& pos = flags.positional();
    if (pos.size() < 2) {
        std::fputs(cli.usage().c_str(), stdout);
        return 1;
    }
    const std::string& verb = pos[0];
    const std::string& path = pos[1];

    if (verb == "info") {
        net::wire_decoder decoder;
        std::uint64_t bytes = 0;
        if (!scan_file(path, &decoder, nullptr, &bytes)) return 1;
        const net::wire_decode_stats& s = decoder.stats();
        std::printf("%s:\n", path.c_str());
        std::printf("  datagrams   %llu\n",
                    static_cast<unsigned long long>(s.datagrams));
        std::printf("  records     %llu\n",
                    static_cast<unsigned long long>(s.records));
        std::printf("  bytes       %llu\n",
                    static_cast<unsigned long long>(bytes));
        std::printf("  rejected    %llu\n",
                    static_cast<unsigned long long>(s.rejected()));
        if (s.rejected())
            std::printf("    short_header=%llu bad_magic=%llu bad_version=%llu\n"
                        "    bad_flags=%llu truncated=%llu trailing=%llu\n",
                        static_cast<unsigned long long>(s.short_header),
                        static_cast<unsigned long long>(s.bad_magic),
                        static_cast<unsigned long long>(s.bad_version),
                        static_cast<unsigned long long>(s.bad_flags),
                        static_cast<unsigned long long>(s.truncated),
                        static_cast<unsigned long long>(s.trailing));
        std::printf("  seq gaps    %llu (reordered %llu)\n",
                    static_cast<unsigned long long>(s.seq_gaps),
                    static_cast<unsigned long long>(s.seq_reorder));
        return 0;
    }

    if (verb == "dump") {
        net::wire_decoder decoder;
        const bool ok = scan_file(
            path, &decoder,
            [](const std::vector<stream_record>& records) {
                for (const stream_record& r : records)
                    write_stream_record(std::cout, r);
            },
            nullptr);
        std::cout.flush();
        if (!ok) return 1;
        const net::wire_decode_stats& s = decoder.stats();
        std::fprintf(stderr, "dumped %llu records (%llu datagrams, %llu rejected)\n",
                     static_cast<unsigned long long>(s.records),
                     static_cast<unsigned long long>(s.datagrams),
                     static_cast<unsigned long long>(s.rejected()));
        return 0;
    }

    if (verb == "send") {
        if (pos.size() != 4) {
            std::fputs(cli.usage().c_str(), stdout);
            return 1;
        }
        const long port = std::atol(pos[3].c_str());
        if (port <= 0 || port > 65535) {
            std::fprintf(stderr, "error: bad port %s\n", pos[3].c_str());
            return 1;
        }
        std::signal(SIGINT, handle_stop);
        std::signal(SIGTERM, handle_stop);
        net::replay_options opt;
        opt.rate = rate;
        opt.stop = &g_stop;
        const net::replay_result result = net::send_wire_file(
            path, pos[2], static_cast<std::uint16_t>(port), opt);
        if (!result.ok()) {
            std::fprintf(stderr, "error: %s\n", result.error.c_str());
            return 1;
        }
        std::fprintf(stderr, "sent %llu datagrams (%llu records, %llu bytes)%s\n",
                     static_cast<unsigned long long>(result.datagrams),
                     static_cast<unsigned long long>(result.records),
                     static_cast<unsigned long long>(result.bytes),
                     result.stopped ? " [interrupted]" : "");
        return 0;
    }

    std::fprintf(stderr, "error: unknown subcommand '%s' (info|dump|send)\n",
                 verb.c_str());
    return 1;
}
