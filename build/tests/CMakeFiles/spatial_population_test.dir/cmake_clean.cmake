file(REMOVE_RECURSE
  "CMakeFiles/spatial_population_test.dir/spatial_population_test.cpp.o"
  "CMakeFiles/spatial_population_test.dir/spatial_population_test.cpp.o.d"
  "spatial_population_test"
  "spatial_population_test.pdb"
  "spatial_population_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_population_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
