# Empty compiler generated dependencies file for spatial_population_test.
# This may be replaced when dependencies are built.
