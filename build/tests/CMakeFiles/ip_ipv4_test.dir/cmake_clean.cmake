file(REMOVE_RECURSE
  "CMakeFiles/ip_ipv4_test.dir/ip_ipv4_test.cpp.o"
  "CMakeFiles/ip_ipv4_test.dir/ip_ipv4_test.cpp.o.d"
  "ip_ipv4_test"
  "ip_ipv4_test.pdb"
  "ip_ipv4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_ipv4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
