# Empty compiler generated dependencies file for trie_property_test.
# This may be replaced when dependencies are built.
