file(REMOVE_RECURSE
  "CMakeFiles/spatial_mra_test.dir/spatial_mra_test.cpp.o"
  "CMakeFiles/spatial_mra_test.dir/spatial_mra_test.cpp.o.d"
  "spatial_mra_test"
  "spatial_mra_test.pdb"
  "spatial_mra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_mra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
