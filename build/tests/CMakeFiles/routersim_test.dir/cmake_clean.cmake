file(REMOVE_RECURSE
  "CMakeFiles/routersim_test.dir/routersim_test.cpp.o"
  "CMakeFiles/routersim_test.dir/routersim_test.cpp.o.d"
  "routersim_test"
  "routersim_test.pdb"
  "routersim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routersim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
