# Empty dependencies file for routersim_test.
# This may be replaced when dependencies are built.
