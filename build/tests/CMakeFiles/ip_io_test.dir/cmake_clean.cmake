file(REMOVE_RECURSE
  "CMakeFiles/ip_io_test.dir/ip_io_test.cpp.o"
  "CMakeFiles/ip_io_test.dir/ip_io_test.cpp.o.d"
  "ip_io_test"
  "ip_io_test.pdb"
  "ip_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
