# Empty dependencies file for ip_io_test.
# This may be replaced when dependencies are built.
