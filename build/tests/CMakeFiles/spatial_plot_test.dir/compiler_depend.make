# Empty compiler generated dependencies file for spatial_plot_test.
# This may be replaced when dependencies are built.
