file(REMOVE_RECURSE
  "CMakeFiles/spatial_plot_test.dir/spatial_plot_test.cpp.o"
  "CMakeFiles/spatial_plot_test.dir/spatial_plot_test.cpp.o.d"
  "spatial_plot_test"
  "spatial_plot_test.pdb"
  "spatial_plot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
