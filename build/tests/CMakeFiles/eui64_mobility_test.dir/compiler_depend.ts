# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for eui64_mobility_test.
