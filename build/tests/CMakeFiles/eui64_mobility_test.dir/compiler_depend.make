# Empty compiler generated dependencies file for eui64_mobility_test.
# This may be replaced when dependencies are built.
