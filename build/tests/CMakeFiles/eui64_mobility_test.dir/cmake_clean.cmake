file(REMOVE_RECURSE
  "CMakeFiles/eui64_mobility_test.dir/eui64_mobility_test.cpp.o"
  "CMakeFiles/eui64_mobility_test.dir/eui64_mobility_test.cpp.o.d"
  "eui64_mobility_test"
  "eui64_mobility_test.pdb"
  "eui64_mobility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eui64_mobility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
