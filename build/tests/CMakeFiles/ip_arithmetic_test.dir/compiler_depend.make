# Empty compiler generated dependencies file for ip_arithmetic_test.
# This may be replaced when dependencies are built.
