file(REMOVE_RECURSE
  "CMakeFiles/ip_arithmetic_test.dir/ip_arithmetic_test.cpp.o"
  "CMakeFiles/ip_arithmetic_test.dir/ip_arithmetic_test.cpp.o.d"
  "ip_arithmetic_test"
  "ip_arithmetic_test.pdb"
  "ip_arithmetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_arithmetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
