file(REMOVE_RECURSE
  "CMakeFiles/parse_differential_test.dir/parse_differential_test.cpp.o"
  "CMakeFiles/parse_differential_test.dir/parse_differential_test.cpp.o.d"
  "parse_differential_test"
  "parse_differential_test.pdb"
  "parse_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
