# Empty compiler generated dependencies file for spatial_density_test.
# This may be replaced when dependencies are built.
