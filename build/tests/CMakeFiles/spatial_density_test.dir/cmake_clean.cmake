file(REMOVE_RECURSE
  "CMakeFiles/spatial_density_test.dir/spatial_density_test.cpp.o"
  "CMakeFiles/spatial_density_test.dir/spatial_density_test.cpp.o.d"
  "spatial_density_test"
  "spatial_density_test.pdb"
  "spatial_density_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_density_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
