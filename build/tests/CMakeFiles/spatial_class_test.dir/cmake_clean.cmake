file(REMOVE_RECURSE
  "CMakeFiles/spatial_class_test.dir/spatial_class_test.cpp.o"
  "CMakeFiles/spatial_class_test.dir/spatial_class_test.cpp.o.d"
  "spatial_class_test"
  "spatial_class_test.pdb"
  "spatial_class_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
