# Empty compiler generated dependencies file for spatial_class_test.
# This may be replaced when dependencies are built.
