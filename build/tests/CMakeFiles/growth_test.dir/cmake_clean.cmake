file(REMOVE_RECURSE
  "CMakeFiles/growth_test.dir/growth_test.cpp.o"
  "CMakeFiles/growth_test.dir/growth_test.cpp.o.d"
  "growth_test"
  "growth_test.pdb"
  "growth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/growth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
