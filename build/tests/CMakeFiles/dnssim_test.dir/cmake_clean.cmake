file(REMOVE_RECURSE
  "CMakeFiles/dnssim_test.dir/dnssim_test.cpp.o"
  "CMakeFiles/dnssim_test.dir/dnssim_test.cpp.o.d"
  "dnssim_test"
  "dnssim_test.pdb"
  "dnssim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnssim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
