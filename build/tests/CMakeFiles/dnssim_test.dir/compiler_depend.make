# Empty compiler generated dependencies file for dnssim_test.
# This may be replaced when dependencies are built.
