file(REMOVE_RECURSE
  "CMakeFiles/cdnsim_test.dir/cdnsim_test.cpp.o"
  "CMakeFiles/cdnsim_test.dir/cdnsim_test.cpp.o.d"
  "cdnsim_test"
  "cdnsim_test.pdb"
  "cdnsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdnsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
