# Empty compiler generated dependencies file for cdnsim_test.
# This may be replaced when dependencies are built.
