# Empty dependencies file for aguri_test.
# This may be replaced when dependencies are built.
