file(REMOVE_RECURSE
  "CMakeFiles/aguri_test.dir/aguri_test.cpp.o"
  "CMakeFiles/aguri_test.dir/aguri_test.cpp.o.d"
  "aguri_test"
  "aguri_test.pdb"
  "aguri_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aguri_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
