# Empty compiler generated dependencies file for observation_store_test.
# This may be replaced when dependencies are built.
