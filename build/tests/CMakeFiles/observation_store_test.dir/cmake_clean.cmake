file(REMOVE_RECURSE
  "CMakeFiles/observation_store_test.dir/observation_store_test.cpp.o"
  "CMakeFiles/observation_store_test.dir/observation_store_test.cpp.o.d"
  "observation_store_test"
  "observation_store_test.pdb"
  "observation_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observation_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
