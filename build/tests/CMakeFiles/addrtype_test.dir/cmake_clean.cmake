file(REMOVE_RECURSE
  "CMakeFiles/addrtype_test.dir/addrtype_test.cpp.o"
  "CMakeFiles/addrtype_test.dir/addrtype_test.cpp.o.d"
  "addrtype_test"
  "addrtype_test.pdb"
  "addrtype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/addrtype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
