# Empty compiler generated dependencies file for addrtype_test.
# This may be replaced when dependencies are built.
