# Empty dependencies file for mra_compare_test.
# This may be replaced when dependencies are built.
