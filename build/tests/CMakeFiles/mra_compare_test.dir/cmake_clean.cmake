file(REMOVE_RECURSE
  "CMakeFiles/mra_compare_test.dir/mra_compare_test.cpp.o"
  "CMakeFiles/mra_compare_test.dir/mra_compare_test.cpp.o.d"
  "mra_compare_test"
  "mra_compare_test.pdb"
  "mra_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mra_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
