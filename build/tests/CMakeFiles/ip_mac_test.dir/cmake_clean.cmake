file(REMOVE_RECURSE
  "CMakeFiles/ip_mac_test.dir/ip_mac_test.cpp.o"
  "CMakeFiles/ip_mac_test.dir/ip_mac_test.cpp.o.d"
  "ip_mac_test"
  "ip_mac_test.pdb"
  "ip_mac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_mac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
