# Empty dependencies file for ip_mac_test.
# This may be replaced when dependencies are built.
