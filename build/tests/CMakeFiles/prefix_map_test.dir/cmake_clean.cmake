file(REMOVE_RECURSE
  "CMakeFiles/prefix_map_test.dir/prefix_map_test.cpp.o"
  "CMakeFiles/prefix_map_test.dir/prefix_map_test.cpp.o.d"
  "prefix_map_test"
  "prefix_map_test.pdb"
  "prefix_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
