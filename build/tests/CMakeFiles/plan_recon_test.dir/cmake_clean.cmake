file(REMOVE_RECURSE
  "CMakeFiles/plan_recon_test.dir/plan_recon_test.cpp.o"
  "CMakeFiles/plan_recon_test.dir/plan_recon_test.cpp.o.d"
  "plan_recon_test"
  "plan_recon_test.pdb"
  "plan_recon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_recon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
