# Empty dependencies file for plan_recon_test.
# This may be replaced when dependencies are built.
