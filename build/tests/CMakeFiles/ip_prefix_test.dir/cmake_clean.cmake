file(REMOVE_RECURSE
  "CMakeFiles/ip_prefix_test.dir/ip_prefix_test.cpp.o"
  "CMakeFiles/ip_prefix_test.dir/ip_prefix_test.cpp.o.d"
  "ip_prefix_test"
  "ip_prefix_test.pdb"
  "ip_prefix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_prefix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
