# Empty dependencies file for ip_prefix_test.
# This may be replaced when dependencies are built.
