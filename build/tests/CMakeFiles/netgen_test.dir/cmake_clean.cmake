file(REMOVE_RECURSE
  "CMakeFiles/netgen_test.dir/netgen_test.cpp.o"
  "CMakeFiles/netgen_test.dir/netgen_test.cpp.o.d"
  "netgen_test"
  "netgen_test.pdb"
  "netgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
