file(REMOVE_RECURSE
  "CMakeFiles/network_profile_test.dir/network_profile_test.cpp.o"
  "CMakeFiles/network_profile_test.dir/network_profile_test.cpp.o.d"
  "network_profile_test"
  "network_profile_test.pdb"
  "network_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
