# Empty dependencies file for network_profile_test.
# This may be replaced when dependencies are built.
