# Empty compiler generated dependencies file for malone_test.
# This may be replaced when dependencies are built.
