file(REMOVE_RECURSE
  "CMakeFiles/malone_test.dir/malone_test.cpp.o"
  "CMakeFiles/malone_test.dir/malone_test.cpp.o.d"
  "malone_test"
  "malone_test.pdb"
  "malone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
