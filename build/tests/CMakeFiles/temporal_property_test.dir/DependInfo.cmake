
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/temporal_property_test.cpp" "tests/CMakeFiles/temporal_property_test.dir/temporal_property_test.cpp.o" "gcc" "tests/CMakeFiles/temporal_property_test.dir/temporal_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/temporal/CMakeFiles/v6_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/netgen/CMakeFiles/v6_netgen.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/v6_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/v6_ip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
