# Empty dependencies file for temporal_property_test.
# This may be replaced when dependencies are built.
