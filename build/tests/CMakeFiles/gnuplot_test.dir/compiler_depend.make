# Empty compiler generated dependencies file for gnuplot_test.
# This may be replaced when dependencies are built.
