file(REMOVE_RECURSE
  "CMakeFiles/gnuplot_test.dir/gnuplot_test.cpp.o"
  "CMakeFiles/gnuplot_test.dir/gnuplot_test.cpp.o.d"
  "gnuplot_test"
  "gnuplot_test.pdb"
  "gnuplot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnuplot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
