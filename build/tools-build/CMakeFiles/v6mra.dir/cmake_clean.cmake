file(REMOVE_RECURSE
  "../tools/v6mra"
  "../tools/v6mra.pdb"
  "CMakeFiles/v6mra.dir/v6mra.cpp.o"
  "CMakeFiles/v6mra.dir/v6mra.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6mra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
