# Empty compiler generated dependencies file for v6mra.
# This may be replaced when dependencies are built.
