# Empty compiler generated dependencies file for v6profile.
# This may be replaced when dependencies are built.
