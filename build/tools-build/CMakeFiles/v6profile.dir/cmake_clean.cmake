file(REMOVE_RECURSE
  "../tools/v6profile"
  "../tools/v6profile.pdb"
  "CMakeFiles/v6profile.dir/v6profile.cpp.o"
  "CMakeFiles/v6profile.dir/v6profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
