# Empty dependencies file for v6classify.
# This may be replaced when dependencies are built.
