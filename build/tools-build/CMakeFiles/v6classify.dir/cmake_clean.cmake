file(REMOVE_RECURSE
  "../tools/v6classify"
  "../tools/v6classify.pdb"
  "CMakeFiles/v6classify.dir/v6classify.cpp.o"
  "CMakeFiles/v6classify.dir/v6classify.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
