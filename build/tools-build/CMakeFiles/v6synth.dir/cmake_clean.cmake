file(REMOVE_RECURSE
  "../tools/v6synth"
  "../tools/v6synth.pdb"
  "CMakeFiles/v6synth.dir/v6synth.cpp.o"
  "CMakeFiles/v6synth.dir/v6synth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
