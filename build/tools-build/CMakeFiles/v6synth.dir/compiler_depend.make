# Empty compiler generated dependencies file for v6synth.
# This may be replaced when dependencies are built.
