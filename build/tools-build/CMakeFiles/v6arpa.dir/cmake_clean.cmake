file(REMOVE_RECURSE
  "../tools/v6arpa"
  "../tools/v6arpa.pdb"
  "CMakeFiles/v6arpa.dir/v6arpa.cpp.o"
  "CMakeFiles/v6arpa.dir/v6arpa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6arpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
