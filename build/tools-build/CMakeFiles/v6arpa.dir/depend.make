# Empty dependencies file for v6arpa.
# This may be replaced when dependencies are built.
