# Empty dependencies file for v6stable.
# This may be replaced when dependencies are built.
