file(REMOVE_RECURSE
  "../tools/v6stable"
  "../tools/v6stable.pdb"
  "CMakeFiles/v6stable.dir/v6stable.cpp.o"
  "CMakeFiles/v6stable.dir/v6stable.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6stable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
