file(REMOVE_RECURSE
  "../tools/v6dense"
  "../tools/v6dense.pdb"
  "CMakeFiles/v6dense.dir/v6dense.cpp.o"
  "CMakeFiles/v6dense.dir/v6dense.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
