# Empty compiler generated dependencies file for v6dense.
# This may be replaced when dependencies are built.
