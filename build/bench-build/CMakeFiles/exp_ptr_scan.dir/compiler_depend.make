# Empty compiler generated dependencies file for exp_ptr_scan.
# This may be replaced when dependencies are built.
