file(REMOVE_RECURSE
  "../bench/exp_ptr_scan"
  "../bench/exp_ptr_scan.pdb"
  "CMakeFiles/exp_ptr_scan.dir/exp_ptr_scan.cpp.o"
  "CMakeFiles/exp_ptr_scan.dir/exp_ptr_scan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ptr_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
