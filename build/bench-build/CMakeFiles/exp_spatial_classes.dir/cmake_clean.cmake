file(REMOVE_RECURSE
  "../bench/exp_spatial_classes"
  "../bench/exp_spatial_classes.pdb"
  "CMakeFiles/exp_spatial_classes.dir/exp_spatial_classes.cpp.o"
  "CMakeFiles/exp_spatial_classes.dir/exp_spatial_classes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_spatial_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
