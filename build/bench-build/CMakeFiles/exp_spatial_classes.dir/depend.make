# Empty dependencies file for exp_spatial_classes.
# This may be replaced when dependencies are built.
