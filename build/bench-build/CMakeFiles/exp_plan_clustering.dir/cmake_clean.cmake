file(REMOVE_RECURSE
  "../bench/exp_plan_clustering"
  "../bench/exp_plan_clustering.pdb"
  "CMakeFiles/exp_plan_clustering.dir/exp_plan_clustering.cpp.o"
  "CMakeFiles/exp_plan_clustering.dir/exp_plan_clustering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_plan_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
