# Empty compiler generated dependencies file for exp_plan_clustering.
# This may be replaced when dependencies are built.
