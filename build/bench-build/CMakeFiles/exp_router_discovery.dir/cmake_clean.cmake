file(REMOVE_RECURSE
  "../bench/exp_router_discovery"
  "../bench/exp_router_discovery.pdb"
  "CMakeFiles/exp_router_discovery.dir/exp_router_discovery.cpp.o"
  "CMakeFiles/exp_router_discovery.dir/exp_router_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_router_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
