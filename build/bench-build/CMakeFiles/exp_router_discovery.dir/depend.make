# Empty dependencies file for exp_router_discovery.
# This may be replaced when dependencies are built.
