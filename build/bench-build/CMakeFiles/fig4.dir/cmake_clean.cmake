file(REMOVE_RECURSE
  "../bench/fig4"
  "../bench/fig4.pdb"
  "CMakeFiles/fig4.dir/fig4.cpp.o"
  "CMakeFiles/fig4.dir/fig4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
