file(REMOVE_RECURSE
  "../bench/exp_active_scan"
  "../bench/exp_active_scan.pdb"
  "CMakeFiles/exp_active_scan.dir/exp_active_scan.cpp.o"
  "CMakeFiles/exp_active_scan.dir/exp_active_scan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_active_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
