# Empty compiler generated dependencies file for exp_active_scan.
# This may be replaced when dependencies are built.
