file(REMOVE_RECURSE
  "../bench/fig3"
  "../bench/fig3.pdb"
  "CMakeFiles/fig3.dir/fig3.cpp.o"
  "CMakeFiles/fig3.dir/fig3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
