file(REMOVE_RECURSE
  "../bench/fig5a"
  "../bench/fig5a.pdb"
  "CMakeFiles/fig5a.dir/fig5a.cpp.o"
  "CMakeFiles/fig5a.dir/fig5a.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
