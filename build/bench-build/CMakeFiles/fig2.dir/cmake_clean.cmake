file(REMOVE_RECURSE
  "../bench/fig2"
  "../bench/fig2.pdb"
  "CMakeFiles/fig2.dir/fig2.cpp.o"
  "CMakeFiles/fig2.dir/fig2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
