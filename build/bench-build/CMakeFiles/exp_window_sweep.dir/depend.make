# Empty dependencies file for exp_window_sweep.
# This may be replaced when dependencies are built.
