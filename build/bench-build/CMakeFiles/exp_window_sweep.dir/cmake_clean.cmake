file(REMOVE_RECURSE
  "../bench/exp_window_sweep"
  "../bench/exp_window_sweep.pdb"
  "CMakeFiles/exp_window_sweep.dir/exp_window_sweep.cpp.o"
  "CMakeFiles/exp_window_sweep.dir/exp_window_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
