file(REMOVE_RECURSE
  "../bench/exp_growth_churn"
  "../bench/exp_growth_churn.pdb"
  "CMakeFiles/exp_growth_churn.dir/exp_growth_churn.cpp.o"
  "CMakeFiles/exp_growth_churn.dir/exp_growth_churn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_growth_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
