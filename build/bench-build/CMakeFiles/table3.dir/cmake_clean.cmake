file(REMOVE_RECURSE
  "../bench/table3"
  "../bench/table3.pdb"
  "CMakeFiles/table3.dir/table3.cpp.o"
  "CMakeFiles/table3.dir/table3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
