# Empty dependencies file for exp_eui64_mobility.
# This may be replaced when dependencies are built.
