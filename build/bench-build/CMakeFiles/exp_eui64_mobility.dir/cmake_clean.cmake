file(REMOVE_RECURSE
  "../bench/exp_eui64_mobility"
  "../bench/exp_eui64_mobility.pdb"
  "CMakeFiles/exp_eui64_mobility.dir/exp_eui64_mobility.cpp.o"
  "CMakeFiles/exp_eui64_mobility.dir/exp_eui64_mobility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_eui64_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
