file(REMOVE_RECURSE
  "../bench/exp_aguri_budget"
  "../bench/exp_aguri_budget.pdb"
  "CMakeFiles/exp_aguri_budget.dir/exp_aguri_budget.cpp.o"
  "CMakeFiles/exp_aguri_budget.dir/exp_aguri_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_aguri_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
