# Empty compiler generated dependencies file for exp_aguri_budget.
# This may be replaced when dependencies are built.
