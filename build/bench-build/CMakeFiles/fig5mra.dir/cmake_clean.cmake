file(REMOVE_RECURSE
  "../bench/fig5mra"
  "../bench/fig5mra.pdb"
  "CMakeFiles/fig5mra.dir/fig5mra.cpp.o"
  "CMakeFiles/fig5mra.dir/fig5mra.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5mra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
