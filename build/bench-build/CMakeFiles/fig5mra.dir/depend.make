# Empty dependencies file for fig5mra.
# This may be replaced when dependencies are built.
