file(REMOVE_RECURSE
  "../bench/exp_malone_baseline"
  "../bench/exp_malone_baseline.pdb"
  "CMakeFiles/exp_malone_baseline.dir/exp_malone_baseline.cpp.o"
  "CMakeFiles/exp_malone_baseline.dir/exp_malone_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_malone_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
