# Empty compiler generated dependencies file for exp_malone_baseline.
# This may be replaced when dependencies are built.
