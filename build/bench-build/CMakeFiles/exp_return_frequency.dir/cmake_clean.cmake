file(REMOVE_RECURSE
  "../bench/exp_return_frequency"
  "../bench/exp_return_frequency.pdb"
  "CMakeFiles/exp_return_frequency.dir/exp_return_frequency.cpp.o"
  "CMakeFiles/exp_return_frequency.dir/exp_return_frequency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_return_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
