# Empty dependencies file for exp_return_frequency.
# This may be replaced when dependencies are built.
