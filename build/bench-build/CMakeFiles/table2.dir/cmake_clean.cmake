file(REMOVE_RECURSE
  "../bench/table2"
  "../bench/table2.pdb"
  "CMakeFiles/table2.dir/table2.cpp.o"
  "CMakeFiles/table2.dir/table2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
