file(REMOVE_RECURSE
  "../bench/fig5b"
  "../bench/fig5b.pdb"
  "CMakeFiles/fig5b.dir/fig5b.cpp.o"
  "CMakeFiles/fig5b.dir/fig5b.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
