file(REMOVE_RECURSE
  "../bench/exp_stable_prefixes"
  "../bench/exp_stable_prefixes.pdb"
  "CMakeFiles/exp_stable_prefixes.dir/exp_stable_prefixes.cpp.o"
  "CMakeFiles/exp_stable_prefixes.dir/exp_stable_prefixes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_stable_prefixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
