# Empty compiler generated dependencies file for exp_stable_prefixes.
# This may be replaced when dependencies are built.
