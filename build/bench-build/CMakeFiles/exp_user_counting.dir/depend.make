# Empty dependencies file for exp_user_counting.
# This may be replaced when dependencies are built.
