file(REMOVE_RECURSE
  "../bench/exp_user_counting"
  "../bench/exp_user_counting.pdb"
  "CMakeFiles/exp_user_counting.dir/exp_user_counting.cpp.o"
  "CMakeFiles/exp_user_counting.dir/exp_user_counting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_user_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
