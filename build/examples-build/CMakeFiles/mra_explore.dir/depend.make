# Empty dependencies file for mra_explore.
# This may be replaced when dependencies are built.
