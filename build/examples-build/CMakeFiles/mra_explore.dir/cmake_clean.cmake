file(REMOVE_RECURSE
  "../examples/mra_explore"
  "../examples/mra_explore.pdb"
  "CMakeFiles/mra_explore.dir/mra_explore.cpp.o"
  "CMakeFiles/mra_explore.dir/mra_explore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mra_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
