# Empty compiler generated dependencies file for traffic_profile.
# This may be replaced when dependencies are built.
