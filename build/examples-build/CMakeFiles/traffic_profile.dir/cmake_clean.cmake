file(REMOVE_RECURSE
  "../examples/traffic_profile"
  "../examples/traffic_profile.pdb"
  "CMakeFiles/traffic_profile.dir/traffic_profile.cpp.o"
  "CMakeFiles/traffic_profile.dir/traffic_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
