# Empty compiler generated dependencies file for dense_hunt.
# This may be replaced when dependencies are built.
