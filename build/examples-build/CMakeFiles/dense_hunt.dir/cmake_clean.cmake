file(REMOVE_RECURSE
  "../examples/dense_hunt"
  "../examples/dense_hunt.pdb"
  "CMakeFiles/dense_hunt.dir/dense_hunt.cpp.o"
  "CMakeFiles/dense_hunt.dir/dense_hunt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
