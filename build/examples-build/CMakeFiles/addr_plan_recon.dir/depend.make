# Empty dependencies file for addr_plan_recon.
# This may be replaced when dependencies are built.
