file(REMOVE_RECURSE
  "../examples/addr_plan_recon"
  "../examples/addr_plan_recon.pdb"
  "CMakeFiles/addr_plan_recon.dir/addr_plan_recon.cpp.o"
  "CMakeFiles/addr_plan_recon.dir/addr_plan_recon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/addr_plan_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
