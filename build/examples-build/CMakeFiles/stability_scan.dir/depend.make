# Empty dependencies file for stability_scan.
# This may be replaced when dependencies are built.
