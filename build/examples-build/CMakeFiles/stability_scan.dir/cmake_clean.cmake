file(REMOVE_RECURSE
  "../examples/stability_scan"
  "../examples/stability_scan.pdb"
  "CMakeFiles/stability_scan.dir/stability_scan.cpp.o"
  "CMakeFiles/stability_scan.dir/stability_scan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
