file(REMOVE_RECURSE
  "libv6_analysis.a"
)
