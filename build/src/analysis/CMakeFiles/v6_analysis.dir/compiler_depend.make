# Empty compiler generated dependencies file for v6_analysis.
# This may be replaced when dependencies are built.
