file(REMOVE_RECURSE
  "CMakeFiles/v6_analysis.dir/eui64_mobility.cpp.o"
  "CMakeFiles/v6_analysis.dir/eui64_mobility.cpp.o.d"
  "CMakeFiles/v6_analysis.dir/format.cpp.o"
  "CMakeFiles/v6_analysis.dir/format.cpp.o.d"
  "CMakeFiles/v6_analysis.dir/growth.cpp.o"
  "CMakeFiles/v6_analysis.dir/growth.cpp.o.d"
  "CMakeFiles/v6_analysis.dir/network_profile.cpp.o"
  "CMakeFiles/v6_analysis.dir/network_profile.cpp.o.d"
  "CMakeFiles/v6_analysis.dir/plan_recon.cpp.o"
  "CMakeFiles/v6_analysis.dir/plan_recon.cpp.o.d"
  "CMakeFiles/v6_analysis.dir/reports.cpp.o"
  "CMakeFiles/v6_analysis.dir/reports.cpp.o.d"
  "libv6_analysis.a"
  "libv6_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
