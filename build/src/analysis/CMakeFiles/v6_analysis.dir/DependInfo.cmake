
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/eui64_mobility.cpp" "src/analysis/CMakeFiles/v6_analysis.dir/eui64_mobility.cpp.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/eui64_mobility.cpp.o.d"
  "/root/repo/src/analysis/format.cpp" "src/analysis/CMakeFiles/v6_analysis.dir/format.cpp.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/format.cpp.o.d"
  "/root/repo/src/analysis/growth.cpp" "src/analysis/CMakeFiles/v6_analysis.dir/growth.cpp.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/growth.cpp.o.d"
  "/root/repo/src/analysis/network_profile.cpp" "src/analysis/CMakeFiles/v6_analysis.dir/network_profile.cpp.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/network_profile.cpp.o.d"
  "/root/repo/src/analysis/plan_recon.cpp" "src/analysis/CMakeFiles/v6_analysis.dir/plan_recon.cpp.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/plan_recon.cpp.o.d"
  "/root/repo/src/analysis/reports.cpp" "src/analysis/CMakeFiles/v6_analysis.dir/reports.cpp.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/reports.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/v6_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/addrtype/CMakeFiles/v6_addrtype.dir/DependInfo.cmake"
  "/root/repo/build/src/cdnsim/CMakeFiles/v6_cdnsim.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/v6_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/netgen/CMakeFiles/v6_netgen.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/v6_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/v6_trie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
