# Empty dependencies file for v6_routersim.
# This may be replaced when dependencies are built.
