file(REMOVE_RECURSE
  "CMakeFiles/v6_routersim.dir/scan.cpp.o"
  "CMakeFiles/v6_routersim.dir/scan.cpp.o.d"
  "CMakeFiles/v6_routersim.dir/targets.cpp.o"
  "CMakeFiles/v6_routersim.dir/targets.cpp.o.d"
  "CMakeFiles/v6_routersim.dir/topology.cpp.o"
  "CMakeFiles/v6_routersim.dir/topology.cpp.o.d"
  "libv6_routersim.a"
  "libv6_routersim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_routersim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
