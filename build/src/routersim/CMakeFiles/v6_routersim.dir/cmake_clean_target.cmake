file(REMOVE_RECURSE
  "libv6_routersim.a"
)
