file(REMOVE_RECURSE
  "libv6_netgen.a"
)
