
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netgen/models_edu.cpp" "src/netgen/CMakeFiles/v6_netgen.dir/models_edu.cpp.o" "gcc" "src/netgen/CMakeFiles/v6_netgen.dir/models_edu.cpp.o.d"
  "/root/repo/src/netgen/models_isp.cpp" "src/netgen/CMakeFiles/v6_netgen.dir/models_isp.cpp.o" "gcc" "src/netgen/CMakeFiles/v6_netgen.dir/models_isp.cpp.o.d"
  "/root/repo/src/netgen/models_mobile.cpp" "src/netgen/CMakeFiles/v6_netgen.dir/models_mobile.cpp.o" "gcc" "src/netgen/CMakeFiles/v6_netgen.dir/models_mobile.cpp.o.d"
  "/root/repo/src/netgen/models_transition.cpp" "src/netgen/CMakeFiles/v6_netgen.dir/models_transition.cpp.o" "gcc" "src/netgen/CMakeFiles/v6_netgen.dir/models_transition.cpp.o.d"
  "/root/repo/src/netgen/rir_registry.cpp" "src/netgen/CMakeFiles/v6_netgen.dir/rir_registry.cpp.o" "gcc" "src/netgen/CMakeFiles/v6_netgen.dir/rir_registry.cpp.o.d"
  "/root/repo/src/netgen/rng.cpp" "src/netgen/CMakeFiles/v6_netgen.dir/rng.cpp.o" "gcc" "src/netgen/CMakeFiles/v6_netgen.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/v6_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/v6_trie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
