file(REMOVE_RECURSE
  "CMakeFiles/v6_netgen.dir/models_edu.cpp.o"
  "CMakeFiles/v6_netgen.dir/models_edu.cpp.o.d"
  "CMakeFiles/v6_netgen.dir/models_isp.cpp.o"
  "CMakeFiles/v6_netgen.dir/models_isp.cpp.o.d"
  "CMakeFiles/v6_netgen.dir/models_mobile.cpp.o"
  "CMakeFiles/v6_netgen.dir/models_mobile.cpp.o.d"
  "CMakeFiles/v6_netgen.dir/models_transition.cpp.o"
  "CMakeFiles/v6_netgen.dir/models_transition.cpp.o.d"
  "CMakeFiles/v6_netgen.dir/rir_registry.cpp.o"
  "CMakeFiles/v6_netgen.dir/rir_registry.cpp.o.d"
  "CMakeFiles/v6_netgen.dir/rng.cpp.o"
  "CMakeFiles/v6_netgen.dir/rng.cpp.o.d"
  "libv6_netgen.a"
  "libv6_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
