# Empty dependencies file for v6_netgen.
# This may be replaced when dependencies are built.
