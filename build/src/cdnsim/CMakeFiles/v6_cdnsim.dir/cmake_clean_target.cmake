file(REMOVE_RECURSE
  "libv6_cdnsim.a"
)
