file(REMOVE_RECURSE
  "CMakeFiles/v6_cdnsim.dir/corpus.cpp.o"
  "CMakeFiles/v6_cdnsim.dir/corpus.cpp.o.d"
  "CMakeFiles/v6_cdnsim.dir/log.cpp.o"
  "CMakeFiles/v6_cdnsim.dir/log.cpp.o.d"
  "CMakeFiles/v6_cdnsim.dir/world.cpp.o"
  "CMakeFiles/v6_cdnsim.dir/world.cpp.o.d"
  "libv6_cdnsim.a"
  "libv6_cdnsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_cdnsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
