# Empty dependencies file for v6_cdnsim.
# This may be replaced when dependencies are built.
