file(REMOVE_RECURSE
  "libv6_temporal.a"
)
