# Empty compiler generated dependencies file for v6_temporal.
# This may be replaced when dependencies are built.
