file(REMOVE_RECURSE
  "CMakeFiles/v6_temporal.dir/daily_series.cpp.o"
  "CMakeFiles/v6_temporal.dir/daily_series.cpp.o.d"
  "CMakeFiles/v6_temporal.dir/observation_store.cpp.o"
  "CMakeFiles/v6_temporal.dir/observation_store.cpp.o.d"
  "CMakeFiles/v6_temporal.dir/stability.cpp.o"
  "CMakeFiles/v6_temporal.dir/stability.cpp.o.d"
  "libv6_temporal.a"
  "libv6_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
