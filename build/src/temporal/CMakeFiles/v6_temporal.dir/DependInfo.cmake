
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/daily_series.cpp" "src/temporal/CMakeFiles/v6_temporal.dir/daily_series.cpp.o" "gcc" "src/temporal/CMakeFiles/v6_temporal.dir/daily_series.cpp.o.d"
  "/root/repo/src/temporal/observation_store.cpp" "src/temporal/CMakeFiles/v6_temporal.dir/observation_store.cpp.o" "gcc" "src/temporal/CMakeFiles/v6_temporal.dir/observation_store.cpp.o.d"
  "/root/repo/src/temporal/stability.cpp" "src/temporal/CMakeFiles/v6_temporal.dir/stability.cpp.o" "gcc" "src/temporal/CMakeFiles/v6_temporal.dir/stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/v6_ip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
