# Empty dependencies file for v6_trie.
# This may be replaced when dependencies are built.
