file(REMOVE_RECURSE
  "libv6_trie.a"
)
