
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trie/aguri_profiler.cpp" "src/trie/CMakeFiles/v6_trie.dir/aguri_profiler.cpp.o" "gcc" "src/trie/CMakeFiles/v6_trie.dir/aguri_profiler.cpp.o.d"
  "/root/repo/src/trie/radix_tree.cpp" "src/trie/CMakeFiles/v6_trie.dir/radix_tree.cpp.o" "gcc" "src/trie/CMakeFiles/v6_trie.dir/radix_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/v6_ip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
