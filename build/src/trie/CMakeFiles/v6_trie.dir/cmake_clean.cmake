file(REMOVE_RECURSE
  "CMakeFiles/v6_trie.dir/aguri_profiler.cpp.o"
  "CMakeFiles/v6_trie.dir/aguri_profiler.cpp.o.d"
  "CMakeFiles/v6_trie.dir/radix_tree.cpp.o"
  "CMakeFiles/v6_trie.dir/radix_tree.cpp.o.d"
  "libv6_trie.a"
  "libv6_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
