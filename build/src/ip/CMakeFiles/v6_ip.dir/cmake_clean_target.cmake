file(REMOVE_RECURSE
  "libv6_ip.a"
)
