
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ip/address.cpp" "src/ip/CMakeFiles/v6_ip.dir/address.cpp.o" "gcc" "src/ip/CMakeFiles/v6_ip.dir/address.cpp.o.d"
  "/root/repo/src/ip/arithmetic.cpp" "src/ip/CMakeFiles/v6_ip.dir/arithmetic.cpp.o" "gcc" "src/ip/CMakeFiles/v6_ip.dir/arithmetic.cpp.o.d"
  "/root/repo/src/ip/io.cpp" "src/ip/CMakeFiles/v6_ip.dir/io.cpp.o" "gcc" "src/ip/CMakeFiles/v6_ip.dir/io.cpp.o.d"
  "/root/repo/src/ip/ipv4.cpp" "src/ip/CMakeFiles/v6_ip.dir/ipv4.cpp.o" "gcc" "src/ip/CMakeFiles/v6_ip.dir/ipv4.cpp.o.d"
  "/root/repo/src/ip/mac.cpp" "src/ip/CMakeFiles/v6_ip.dir/mac.cpp.o" "gcc" "src/ip/CMakeFiles/v6_ip.dir/mac.cpp.o.d"
  "/root/repo/src/ip/prefix.cpp" "src/ip/CMakeFiles/v6_ip.dir/prefix.cpp.o" "gcc" "src/ip/CMakeFiles/v6_ip.dir/prefix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
