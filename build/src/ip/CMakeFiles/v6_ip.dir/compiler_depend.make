# Empty compiler generated dependencies file for v6_ip.
# This may be replaced when dependencies are built.
