file(REMOVE_RECURSE
  "CMakeFiles/v6_ip.dir/address.cpp.o"
  "CMakeFiles/v6_ip.dir/address.cpp.o.d"
  "CMakeFiles/v6_ip.dir/arithmetic.cpp.o"
  "CMakeFiles/v6_ip.dir/arithmetic.cpp.o.d"
  "CMakeFiles/v6_ip.dir/io.cpp.o"
  "CMakeFiles/v6_ip.dir/io.cpp.o.d"
  "CMakeFiles/v6_ip.dir/ipv4.cpp.o"
  "CMakeFiles/v6_ip.dir/ipv4.cpp.o.d"
  "CMakeFiles/v6_ip.dir/mac.cpp.o"
  "CMakeFiles/v6_ip.dir/mac.cpp.o.d"
  "CMakeFiles/v6_ip.dir/prefix.cpp.o"
  "CMakeFiles/v6_ip.dir/prefix.cpp.o.d"
  "libv6_ip.a"
  "libv6_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
