file(REMOVE_RECURSE
  "CMakeFiles/v6_addrtype.dir/classify.cpp.o"
  "CMakeFiles/v6_addrtype.dir/classify.cpp.o.d"
  "CMakeFiles/v6_addrtype.dir/malone.cpp.o"
  "CMakeFiles/v6_addrtype.dir/malone.cpp.o.d"
  "libv6_addrtype.a"
  "libv6_addrtype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_addrtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
