# Empty dependencies file for v6_addrtype.
# This may be replaced when dependencies are built.
