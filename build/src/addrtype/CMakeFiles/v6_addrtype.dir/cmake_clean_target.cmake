file(REMOVE_RECURSE
  "libv6_addrtype.a"
)
