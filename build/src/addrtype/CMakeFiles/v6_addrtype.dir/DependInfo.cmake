
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/addrtype/classify.cpp" "src/addrtype/CMakeFiles/v6_addrtype.dir/classify.cpp.o" "gcc" "src/addrtype/CMakeFiles/v6_addrtype.dir/classify.cpp.o.d"
  "/root/repo/src/addrtype/malone.cpp" "src/addrtype/CMakeFiles/v6_addrtype.dir/malone.cpp.o" "gcc" "src/addrtype/CMakeFiles/v6_addrtype.dir/malone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/v6_ip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
