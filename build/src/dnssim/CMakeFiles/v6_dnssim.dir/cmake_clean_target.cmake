file(REMOVE_RECURSE
  "libv6_dnssim.a"
)
