# Empty compiler generated dependencies file for v6_dnssim.
# This may be replaced when dependencies are built.
