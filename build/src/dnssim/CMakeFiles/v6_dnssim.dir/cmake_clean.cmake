file(REMOVE_RECURSE
  "CMakeFiles/v6_dnssim.dir/reverse_zone.cpp.o"
  "CMakeFiles/v6_dnssim.dir/reverse_zone.cpp.o.d"
  "libv6_dnssim.a"
  "libv6_dnssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_dnssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
