
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/boxplot.cpp" "src/spatial/CMakeFiles/v6_spatial.dir/boxplot.cpp.o" "gcc" "src/spatial/CMakeFiles/v6_spatial.dir/boxplot.cpp.o.d"
  "/root/repo/src/spatial/density.cpp" "src/spatial/CMakeFiles/v6_spatial.dir/density.cpp.o" "gcc" "src/spatial/CMakeFiles/v6_spatial.dir/density.cpp.o.d"
  "/root/repo/src/spatial/gnuplot.cpp" "src/spatial/CMakeFiles/v6_spatial.dir/gnuplot.cpp.o" "gcc" "src/spatial/CMakeFiles/v6_spatial.dir/gnuplot.cpp.o.d"
  "/root/repo/src/spatial/mra.cpp" "src/spatial/CMakeFiles/v6_spatial.dir/mra.cpp.o" "gcc" "src/spatial/CMakeFiles/v6_spatial.dir/mra.cpp.o.d"
  "/root/repo/src/spatial/mra_compare.cpp" "src/spatial/CMakeFiles/v6_spatial.dir/mra_compare.cpp.o" "gcc" "src/spatial/CMakeFiles/v6_spatial.dir/mra_compare.cpp.o.d"
  "/root/repo/src/spatial/mra_plot.cpp" "src/spatial/CMakeFiles/v6_spatial.dir/mra_plot.cpp.o" "gcc" "src/spatial/CMakeFiles/v6_spatial.dir/mra_plot.cpp.o.d"
  "/root/repo/src/spatial/population.cpp" "src/spatial/CMakeFiles/v6_spatial.dir/population.cpp.o" "gcc" "src/spatial/CMakeFiles/v6_spatial.dir/population.cpp.o.d"
  "/root/repo/src/spatial/spatial_class.cpp" "src/spatial/CMakeFiles/v6_spatial.dir/spatial_class.cpp.o" "gcc" "src/spatial/CMakeFiles/v6_spatial.dir/spatial_class.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/v6_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/v6_trie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
