# Empty compiler generated dependencies file for v6_spatial.
# This may be replaced when dependencies are built.
