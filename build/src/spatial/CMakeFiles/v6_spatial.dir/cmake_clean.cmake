file(REMOVE_RECURSE
  "CMakeFiles/v6_spatial.dir/boxplot.cpp.o"
  "CMakeFiles/v6_spatial.dir/boxplot.cpp.o.d"
  "CMakeFiles/v6_spatial.dir/density.cpp.o"
  "CMakeFiles/v6_spatial.dir/density.cpp.o.d"
  "CMakeFiles/v6_spatial.dir/gnuplot.cpp.o"
  "CMakeFiles/v6_spatial.dir/gnuplot.cpp.o.d"
  "CMakeFiles/v6_spatial.dir/mra.cpp.o"
  "CMakeFiles/v6_spatial.dir/mra.cpp.o.d"
  "CMakeFiles/v6_spatial.dir/mra_compare.cpp.o"
  "CMakeFiles/v6_spatial.dir/mra_compare.cpp.o.d"
  "CMakeFiles/v6_spatial.dir/mra_plot.cpp.o"
  "CMakeFiles/v6_spatial.dir/mra_plot.cpp.o.d"
  "CMakeFiles/v6_spatial.dir/population.cpp.o"
  "CMakeFiles/v6_spatial.dir/population.cpp.o.d"
  "CMakeFiles/v6_spatial.dir/spatial_class.cpp.o"
  "CMakeFiles/v6_spatial.dir/spatial_class.cpp.o.d"
  "libv6_spatial.a"
  "libv6_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
