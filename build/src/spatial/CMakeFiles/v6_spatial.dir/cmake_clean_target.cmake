file(REMOVE_RECURSE
  "libv6_spatial.a"
)
