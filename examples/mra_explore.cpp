// mra_explore — tour the simulated Internet's networks through MRA plots.
//
// Regenerates the address sets of the flagship operator models over a
// simulated week and renders each network's Multi-Resolution Aggregate
// plot, the way the paper explores Figures 2 and 5.
//
//   ./examples/mra_explore [network] [scale]
//
// network: all | 6to4 | us-mobile | eu-isp | jp-isp | us-univ | jp-telco
//          | dept   (default: a tour of all of them)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "v6class/cdnsim/world.h"
#include "v6class/spatial/mra_plot.h"

using namespace v6;

namespace {

std::vector<address> week_of(const network_model& model, int first_day) {
    std::vector<observation> obs;
    for (int d = first_day; d < first_day + 7; ++d) model.day_activity(d, obs);
    std::vector<address> addrs;
    addrs.reserve(obs.size());
    for (const observation& o : obs) addrs.push_back(o.addr);
    return addrs;
}

void show(const std::string& title, std::vector<address> addrs) {
    std::fputs(render_ascii(make_mra_plot(compute_mra(std::move(addrs)), title), 17)
                   .c_str(),
               stdout);
    std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
    const std::string which = argc > 1 ? argv[1] : "all-networks";
    world_config cfg;
    cfg.scale = argc > 2 ? std::atof(argv[2]) : 0.4;
    const world w(cfg);
    const int day = kMar2015;

    const auto wants = [&](const char* name) {
        return which == "all-networks" || which == name;
    };

    if (wants("all")) {
        // Everything the CDN saw in a week, split as in Figures 5c/5d.
        std::vector<address> native, six_to_four;
        for (int d = day; d < day + 7; ++d) {
            for (const address& a : w.active_addresses(d)) {
                if (is_6to4(a))
                    six_to_four.push_back(a);
                else if (!is_teredo(a) && !is_isatap(a))
                    native.push_back(a);
            }
        }
        show("All native IPv6 WWW clients, one week (Fig 5c)", std::move(native));
        show("6to4 clients, one week (Fig 5d)", std::move(six_to_four));
    }
    if (wants("us-mobile"))
        show("US mobile carrier (Fig 5e)", week_of(w.mobile1(), day));
    if (wants("eu-isp"))
        show("European ISP with on-demand renumbering (Fig 5f)",
             week_of(w.europe(), day));
    if (wants("jp-isp"))
        show("Japanese ISP with static /48s (Fig 5h)", week_of(w.japan(), day));
    if (wants("us-univ"))
        show("US university (Fig 2a)", week_of(w.university(), day));
    if (wants("jp-telco"))
        show("JP telco with statically numbered CPE (Fig 2b)",
             week_of(w.telco(), day));
    if (wants("dept"))
        show("EU university department /64 (Fig 5g)", week_of(w.department(), day));
    return 0;
}
