// dense_hunt — discover dense address blocks and use them: expand scan
// targets and harvest ip6.arpa names (the paper's Sections 6.2.2/6.2.3).
//
//   ./examples/dense_hunt [scale]
#include <cstdio>
#include <cstdlib>

#include "v6class/analysis/format.h"
#include "v6class/analysis/reports.h"
#include "v6class/cdnsim/world.h"
#include "v6class/dnssim/reverse_zone.h"
#include "v6class/routersim/topology.h"
#include "v6class/spatial/density.h"

using namespace v6;

int main(int argc, char** argv) {
    world_config cfg;
    cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const world w(cfg);
    const router_topology topo(w);

    // --- dense prefixes of the router dataset (Table 3 in miniature) ----
    radix_tree routers;
    for (const address& a : topo.interfaces()) routers.add(a);
    std::printf("router dataset: %zu interface addresses\n\n",
                topo.interfaces().size());
    const auto rows = compute_density_table(
        routers, {{2, 124}, {3, 120}, {2, 120}, {2, 116}, {2, 112}});
    std::fputs(render_table3(rows, "Router").c_str(), stdout);

    // --- dense prefixes of WWW clients --------------------------------
    const auto clients = cull_transition(w.active_addresses(kMar2015)).other;
    radix_tree client_tree;
    for (const address& a : clients) client_tree.add(a);
    const auto dense = client_tree.dense_prefixes_at(2, 112);
    std::uint64_t covered = 0;
    for (const auto& d : dense) covered += d.observed;
    std::printf(
        "\nWWW clients: %s active; %s 2@/112-dense prefixes covering %s "
        "addresses\n",
        format_count(static_cast<double>(clients.size())).c_str(),
        format_count(static_cast<double>(dense.size())).c_str(),
        format_count(static_cast<double>(covered)).c_str());

    // --- put the dense router blocks to work: a PTR scan ---------------
    const reverse_zone zone = build_world_zone(w, &topo);
    const auto scan_targets =
        expand_scan_targets(routers.dense_prefixes_at(3, 120), 2'000'000);
    const auto dense_scan = zone.scan(scan_targets);
    const auto active_scan = zone.scan(w.active_addresses(kMar2015));
    std::printf("\nip6.arpa PTR harvest:\n");
    std::printf("  querying active client addresses only: %s names\n",
                format_count(static_cast<double>(active_scan.names_found)).c_str());
    std::printf("  querying 3@/120-dense possible addresses (%s queries): %s names\n",
                format_count(static_cast<double>(dense_scan.queries)).c_str(),
                format_count(static_cast<double>(dense_scan.names_found)).c_str());
    std::printf("  additional names from dense scanning: %s\n",
                format_count(static_cast<double>(
                                 dense_scan.names_found > active_scan.names_found
                                     ? dense_scan.names_found - active_scan.names_found
                                     : 0))
                    .c_str());

    // Show a few harvested names.
    std::puts("\n  sample PTR records:");
    for (std::size_t i = 0; i < dense_scan.named.size() && i < 5; ++i) {
        const address& a = dense_scan.named[i];
        std::printf("    %s -> %s\n", ip6_arpa_name(a).c_str(),
                    std::string(*zone.query(a)).c_str());
    }
    return 0;
}
