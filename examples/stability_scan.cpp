// stability_scan — run the paper's temporal classification over a
// simulated observation window and report the stability classes.
//
//   ./examples/stability_scan [scale] [n]
//
// scale: world scale factor (default 0.2)
// n:     the "nd-stable" parameter (default 3, the paper's choice)
#include <cstdio>
#include <cstdlib>

#include "v6class/analysis/format.h"
#include "v6class/cdnsim/world.h"
#include "v6class/netgen/rir_registry.h"
#include "v6class/temporal/stability.h"

using namespace v6;

int main(int argc, char** argv) {
    world_config cfg;
    cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    const unsigned n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;
    const world w(cfg);

    const int ref = kMar2015;
    std::printf("simulating days %d..%d around the reference day %d...\n",
                ref - 7, ref + 7, ref);
    const daily_series series = w.series(ref - 7, ref + 7);

    stability_analyzer analyzer(series);
    const stability_split addr_split = analyzer.classify_day(ref, n);
    const std::uint64_t total = series.count(ref);
    std::printf("\naddresses active on the reference day: %s\n",
                format_count(static_cast<double>(total)).c_str());
    std::printf("  %ud-stable (-7d,+7d):  %s (%s)\n", n,
                format_count(static_cast<double>(addr_split.stable.size())).c_str(),
                format_pct(static_cast<double>(addr_split.stable.size()) /
                           static_cast<double>(total))
                    .c_str());
    std::printf("  not %ud-stable:        %s (%s)\n", n,
                format_count(static_cast<double>(addr_split.not_stable.size()))
                    .c_str(),
                format_pct(static_cast<double>(addr_split.not_stable.size()) /
                           static_cast<double>(total))
                    .c_str());

    const daily_series series64 = series.project(64);
    stability_analyzer analyzer64(series64);
    const stability_split pfx_split = analyzer64.classify_day(ref, n);
    const std::uint64_t total64 = series64.count(ref);
    std::printf("\n/64 prefixes active on the reference day: %s\n",
                format_count(static_cast<double>(total64)).c_str());
    std::printf("  %ud-stable:            %s (%s)\n", n,
                format_count(static_cast<double>(pfx_split.stable.size())).c_str(),
                format_pct(static_cast<double>(pfx_split.stable.size()) /
                           static_cast<double>(total64))
                    .c_str());

    // Where do the stable addresses live? Attribute them to origin ASNs.
    std::printf("\ntop origin ASNs of the stable addresses:\n");
    std::map<std::uint32_t, std::uint64_t> by_asn;
    for (const address& a : addr_split.stable)
        if (const auto route = w.registry().origin_of(a)) ++by_asn[route->asn];
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ranked;
    for (const auto& [asn, count] : by_asn) ranked.push_back({count, asn});
    std::sort(ranked.rbegin(), ranked.rend());
    for (std::size_t i = 0; i < ranked.size() && i < 5; ++i)
        std::printf("  AS%u: %s stable addresses\n", ranked[i].second,
                    format_count(static_cast<double>(ranked[i].first)).c_str());

    std::puts("\nnote: mobile carriers rank high despite dynamic /64 pools —");
    std::puts("devices sharing fixed IIDs over reused pool slots recreate the");
    std::puts("same full addresses across days (the paper's Section 6.1 finding).");
    return 0;
}
