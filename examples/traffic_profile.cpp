// traffic_profile — aguri-style hit-weighted traffic profiling under a
// memory budget (Cho et al., the paper's Section 5.2 foundation).
//
// Streams one simulated day of aggregated logs through the budgeted
// profiler and prints the aggregates carrying at least the threshold
// share of the day's hits — the view an operator console would show.
//
//   ./examples/traffic_profile [scale] [min_share%] [node_budget]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "v6class/analysis/format.h"
#include "v6class/cdnsim/world.h"
#include "v6class/trie/aguri_profiler.h"

using namespace v6;

int main(int argc, char** argv) {
    world_config cfg;
    cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.3;
    const double min_share = (argc > 2 ? std::atof(argv[2]) : 1.0) / 100.0;
    const std::size_t budget =
        argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 4096;
    const world w(cfg);

    const daily_log log = w.day_log(kMar2015);
    std::printf("profiling %zu log records (%s hits) with a %zu-node budget\n\n",
                log.records.size(),
                format_count(static_cast<double>(log.total_hits())).c_str(),
                budget);

    aguri_profiler profiler(budget, min_share);
    for (const observation& o : log.records) profiler.observe(o.addr, o.hits);
    std::printf("peak trie nodes used: %zu (unbounded insertion would need "
                "~%zu)\n\n",
                profiler.node_count(), 2 * log.records.size());

    std::printf("aggregates with >= %s of traffic:\n",
                format_pct(min_share).c_str());
    for (const profile_entry& e : profiler.profile()) {
        // Indent by prefix length so the aggregation hierarchy is visible,
        // the way aguri prints its profiles.
        std::printf("%6s  %*s%s %s\n", format_pct(e.share).c_str(),
                    static_cast<int>(e.pfx.length() / 16), "",
                    e.pfx.to_string().c_str(),
                    format_count(static_cast<double>(e.count)).c_str());
    }

    std::puts(
        "\nreading: mobile-carrier pools and big ISP allocations surface as\n"
        "coarse aggregates; any single client hot enough to cross the\n"
        "threshold keeps its own /128 leaf.");
    return 0;
}
