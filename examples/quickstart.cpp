// quickstart — a five-minute tour of libv6class.
//
// Parses a handful of addresses, classifies them by content, runs the
// temporal (stability) classifier over a tiny hand-made observation
// schedule, and finishes with the spatial classifiers: dense prefixes
// and an MRA plot.
//
//   ./examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "v6class/addrtype/classify.h"
#include "v6class/addrtype/malone.h"
#include "v6class/spatial/density.h"
#include "v6class/spatial/mra_plot.h"
#include "v6class/temporal/stability.h"
#include "v6class/trie/radix_tree.h"

using namespace v6;

int main() {
    std::puts("== 1. content classification (the paper's Figure 1 samples) ==");
    const std::vector<std::string> samples{
        "2001:db8:10:1::103",
        "2001:db8:167:1109::10:901",
        "2001:db8:0:1cdf:21e:c2ff:fec0:11db",
        "2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a",
        "2002:c000:221::1",
        "2001:0:4136:e378:8000:63bf:3fff:fdd2",
    };
    for (const std::string& text : samples) {
        const address a = address::must_parse(text);
        const classification c = classify(a);
        std::printf("  %-42s transition=%-7s iid=%-13s malone=%s\n",
                    a.to_string().c_str(), std::string(to_string(c.transition)).c_str(),
                    std::string(to_string(c.iid)).c_str(),
                    std::string(to_string(malone_classify(a))).c_str());
        if (c.mac)
            std::printf("    EUI-64 decodes to MAC %s\n", c.mac->to_string().c_str());
    }

    std::puts("\n== 2. temporal classification ==");
    // A privacy address appears once; a server appears every day.
    daily_series series;
    const address server = address::must_parse("2001:db8::80");
    for (int day = 0; day < 15; ++day) {
        std::vector<address> active{server};
        active.push_back(address::from_pair(0x20010db800000001ull,
                                            0x1111222233330000ull + day));
        series.set_day(day, std::move(active));
    }
    stability_analyzer analyzer(series);
    const stability_split split = analyzer.classify_day(7, 3);
    std::printf("  day 7 actives: %zu; 3d-stable (-7d,+7d): %zu; not: %zu\n",
                series.count(7), split.stable.size(), split.not_stable.size());
    for (const address& a : split.stable)
        std::printf("    stable: %s\n", a.to_string().c_str());

    std::puts("\n== 3. spatial classification ==");
    radix_tree tree;
    std::vector<address> everyone;
    for (unsigned host = 1; host <= 20; ++host) {  // a dense DHCP block
        everyone.push_back(address::from_pair(0x20010db800000002ull, 0x1000 + host));
        tree.add(everyone.back());
    }
    everyone.push_back(address::must_parse("2001:db8:ffff::1"));  // a loner
    tree.add(everyone.back());
    for (const dense_prefix& d : tree.dense_prefixes_at(2, 112))
        std::printf("  2@/112-dense: %s holds %llu active addresses\n",
                    d.pfx.to_string().c_str(),
                    static_cast<unsigned long long>(d.observed));
    const auto targets = expand_scan_targets(tree.densify(2, 112), 32);
    std::printf("  first scan targets from densify: %s .. %s (%zu shown)\n",
                targets.front().to_string().c_str(),
                targets.back().to_string().c_str(), targets.size());

    std::puts("\n== 4. the MRA plot ==");
    std::fputs(render_ascii(make_mra_plot(compute_mra(everyone), "quickstart set"), 9)
                   .c_str(),
               stdout);
    return 0;
}
