// addr_plan_recon — reverse-engineer operator address plans from the
// outside, by tracking persistent EUI-64 interface identifiers over time
// (the paper's Section 7.2 "longest stable prefixes" proposal).
//
//   ./examples/addr_plan_recon [days] [scale]
#include <cstdio>
#include <cstdlib>

#include "v6class/analysis/format.h"
#include "v6class/analysis/plan_recon.h"
#include "v6class/cdnsim/world.h"

using namespace v6;

namespace {

void report(const char* label, const network_model& model, int days) {
    plan_reconstructor recon;
    for (int d = 0; d < days; ++d) {
        std::vector<observation> obs;
        model.day_activity(d, obs);
        std::vector<address> addrs;
        addrs.reserve(obs.size());
        for (const observation& o : obs) addrs.push_back(o.addr);
        recon.observe_day(addrs);
    }
    const auto hist = recon.length_histogram(2);
    std::uint64_t devices = 0;
    double weighted = 0;
    for (unsigned len = 0; len <= 128; ++len) {
        devices += hist[len];
        weighted += static_cast<double>(hist[len]) * len;
    }
    std::printf("\n%s — %llu EUI-64 devices seen on 2+ days\n", label,
                static_cast<unsigned long long>(devices));
    if (devices == 0) return;
    std::printf("  mean stable-prefix length: %.1f bits\n",
                weighted / static_cast<double>(devices));
    std::printf("  length histogram (len: devices): ");
    for (unsigned len = 0; len <= 128; ++len)
        if (hist[len]) std::printf("/%u:%llu ", len,
                                   static_cast<unsigned long long>(hist[len]));
    std::puts("");
    const auto aggregates = recon.longest_stable_prefixes(2, 2);
    std::printf("  aggregates agreed on by 2+ devices: %zu", aggregates.size());
    if (!aggregates.empty())
        std::printf(" (top: %s with %llu devices)",
                    aggregates.front().pfx.to_string().c_str(),
                    static_cast<unsigned long long>(aggregates.front().devices));
    std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
    const int days = argc > 1 ? std::atoi(argv[1]) : 45;
    world_config cfg;
    cfg.scale = argc > 2 ? std::atof(argv[2]) : 0.4;
    const world w(cfg);

    std::printf("tracking EUI-64 beacons across %d simulated days...\n", days);
    report("Japanese ISP (static per-subscriber /48s)", w.japan(), days);
    report("European ISP (on-demand pseudorandom renumbering)", w.europe(), days);
    report("US mobile carrier (dynamic /64 pools)", w.mobile1(), days);

    std::puts("\nreading the fingerprints:");
    std::puts("  length ~64: devices never move /64s -> static assignment.");
    std::puts("  length stuck near a field boundary (e.g. ~41): everything");
    std::puts("    beyond that bit churns -> a renumbered/dynamic field starts");
    std::puts("    there, exposing the operator's address plan from outside.");
    std::puts("  length near the BGP prefix: fully dynamic pools.");
    return 0;
}
