// Tests for the gnuplot artifact writers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "v6class/netgen/iid.h"
#include "v6class/netgen/rng.h"
#include "v6class/spatial/gnuplot.h"

namespace v6 {
namespace {

std::string slurp(const std::filesystem::path& p) {
    std::ifstream in(p);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class GnuplotTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("v6class_gnuplot_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::filesystem::path dir_;
};

TEST_F(GnuplotTest, MraArtifacts) {
    rng r{1};
    std::vector<address> addrs;
    for (int i = 0; i < 200; ++i)
        addrs.push_back(address::from_pair(0x20010db800000000ull | r.uniform(16),
                                           privacy_iid(r())));
    const auto plot = make_mra_plot(compute_mra(addrs), "test network");
    const auto script = write_mra_gnuplot(dir_, "mra_test", plot);
    EXPECT_TRUE(std::filesystem::exists(script));
    EXPECT_TRUE(std::filesystem::exists(dir_ / "mra_test.dat"));

    const std::string gp = slurp(script);
    EXPECT_NE(gp.find("set logscale y 2"), std::string::npos);
    EXPECT_NE(gp.find("test network"), std::string::npos);
    EXPECT_NE(gp.find("single bits"), std::string::npos);

    const std::string dat = slurp(dir_ / "mra_test.dat");
    // 128 + 32 + 8 data rows plus comments/separators.
    std::size_t rows = 0;
    std::istringstream lines(dat);
    std::string line;
    while (std::getline(lines, line))
        if (!line.empty() && line[0] != '#') ++rows;
    EXPECT_GE(rows, 128u + 32u + 8u);
}

TEST_F(GnuplotTest, CcdfArtifacts) {
    std::vector<labeled_ccdf> curves{
        {"curve-a", {{1, 1.0}, {10, 0.5}, {100, 0.01}}},
        {"curve-b", {{1, 1.0}, {5, 0.2}}},
    };
    const auto script = write_ccdf_gnuplot(dir_, "pop", curves);
    EXPECT_TRUE(std::filesystem::exists(script));
    EXPECT_TRUE(std::filesystem::exists(dir_ / "pop_0.dat"));
    EXPECT_TRUE(std::filesystem::exists(dir_ / "pop_1.dat"));
    const std::string gp = slurp(script);
    EXPECT_NE(gp.find("set logscale xy"), std::string::npos);
    EXPECT_NE(gp.find("curve-a"), std::string::npos);
    EXPECT_NE(gp.find("curve-b"), std::string::npos);
}

TEST_F(GnuplotTest, CreatesDirectories) {
    const auto nested = dir_ / "a" / "b";
    const auto plot = make_mra_plot(
        compute_mra({address::must_parse("2001:db8::1")}), "x");
    EXPECT_NO_THROW(write_mra_gnuplot(nested, "p", plot));
    EXPECT_TRUE(std::filesystem::exists(nested / "p.gp"));
}

}  // namespace
}  // namespace v6
