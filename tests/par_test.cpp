// par_test — the v6::par work pool: full coverage of the index space,
// deterministic slot results at any width, nested fan-out, exception
// propagation, and the v6_par_tasks_total counter.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "v6class/obs/metrics.h"
#include "v6class/par/pool.h"

namespace v6 {
namespace {

std::uint64_t tasks_counter_value() {
    return obs::registry::global()
        .get_counter("v6_par_tasks_total")
        .value();
}

TEST(ParPool, RunsEveryIndexExactlyOnce) {
    for (const unsigned threads : {1u, 2u, 8u}) {
        const std::size_t n = 500;
        std::vector<std::atomic<int>> hits(n);
        par::run_indexed(
            n, [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
}

TEST(ParPool, MapIndexedIsDeterministicAcrossWidths) {
    const std::size_t n = 1000;
    const auto compute = [](std::size_t i) {
        // Arbitrary but index-determined work.
        std::uint64_t v = i * 2654435761u;
        for (int k = 0; k < 50; ++k) v = v * 6364136223846793005ull + i;
        return v;
    };
    const auto serial = par::map_indexed<std::uint64_t>(n, compute, 1);
    for (const unsigned threads : {2u, 4u, 8u}) {
        const auto wide = par::map_indexed<std::uint64_t>(n, compute, threads);
        ASSERT_EQ(wide, serial) << "threads=" << threads;
    }
}

TEST(ParPool, NestedFanOutRunsInline) {
    // A parallel driver calling internally-parallel library code must not
    // deadlock: the inner run executes inline on the worker.
    std::vector<std::uint64_t> outer(8, 0);
    par::run_indexed(
        8,
        [&](std::size_t i) {
            const auto inner = par::map_indexed<std::uint64_t>(
                16, [&](std::size_t j) { return i * 100 + j; }, 8);
            outer[i] = std::accumulate(inner.begin(), inner.end(),
                                       std::uint64_t{0});
        },
        8);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(outer[i], i * 100 * 16 + 120u);
}

TEST(ParPool, PropagatesFirstException) {
    EXPECT_THROW(
        par::run_indexed(
            64,
            [](std::size_t i) {
                if (i % 7 == 3) throw std::runtime_error("task failed");
            },
            4),
        std::runtime_error);
    // The pool must remain usable after a throwing job.
    std::atomic<int> ok{0};
    par::run_indexed(
        16, [&](std::size_t) { ok.fetch_add(1); }, 4);
    EXPECT_EQ(ok.load(), 16);
}

TEST(ParPool, CountsTasks) {
    const std::uint64_t before = tasks_counter_value();
    par::run_indexed(
        37, [](std::size_t) {}, 3);
    par::run_indexed(
        5, [](std::size_t) {}, 1);  // serial path counts too
    EXPECT_EQ(tasks_counter_value(), before + 42);
}

TEST(ParPool, DefaultThreadsOverride) {
    par::set_default_threads(3);
    EXPECT_EQ(par::default_threads(), 3u);
    par::set_default_threads(0);
    EXPECT_GE(par::default_threads(), 1u);
}

TEST(ParPool, ZeroTasksIsANoOp) {
    par::run_indexed(0, [](std::size_t) { FAIL(); }, 8);
    const auto empty = par::map_indexed<int>(0, [](std::size_t) { return 1; }, 8);
    EXPECT_TRUE(empty.empty());
}

}  // namespace
}  // namespace v6
