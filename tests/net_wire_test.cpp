// v6wire codec: exact layout, encode/decode round trips, the
// fuzz-resistance property (a decoder fed arbitrary mutations never
// reads out of bounds, never mis-parses, and accounts every datagram
// as exactly accepted-or-rejected-once), sequence accounting, the file
// container, and pcap extraction.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>

#include "v6class/net/wire.h"
#include "v6class/netgen/rng.h"

namespace v6 {
namespace {

std::vector<stream_record> make_records(std::size_t n, std::uint64_t seed = 1) {
    std::vector<stream_record> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t high = 0x20010db800000000ull | mix64(seed + i);
        const std::uint64_t low = mix64(~(seed + i));
        records.push_back({360 + static_cast<int>(i % 7),
                           address::from_pair(high, low), 1 + (i % 97)});
    }
    return records;
}

std::vector<std::vector<std::uint8_t>> encode_datagrams(
    const std::vector<stream_record>& records, std::size_t batch) {
    net::wire_encoder enc(batch);
    std::vector<std::vector<std::uint8_t>> datagrams;
    enc.encode_all(records,
                   [&](const std::vector<std::uint8_t>& d) { datagrams.push_back(d); });
    return datagrams;
}

TEST(WireCodec, HeaderLayoutIsExact) {
    const auto records = make_records(3);
    net::wire_encoder enc(8);
    std::vector<std::uint8_t> d;
    ASSERT_EQ(enc.encode(records.data(), records.size(), d), 3u);
    ASSERT_EQ(d.size(), net::kWireHeaderSize + 3 * net::kWireRecordSize);
    EXPECT_EQ(0, std::memcmp(d.data(), net::kWireMagic, 4));
    EXPECT_EQ(d[4], net::kWireVersion);
    EXPECT_EQ(d[5], 0);                       // flags
    EXPECT_EQ(d[6] | (d[7] << 8), 3);         // count, LE
    for (int i = 8; i < 16; ++i) EXPECT_EQ(d[i], 0) << "seq 0";  // first seq
    // First record: 16 raw address bytes, then day i32 LE.
    EXPECT_EQ(0, std::memcmp(d.data() + 16, records[0].addr.bytes().data(), 16));
    EXPECT_EQ(d[32] | (d[33] << 8) | (d[34] << 16), 360);
}

TEST(WireCodec, RoundTripAllBatchSizes) {
    const auto records = make_records(257);
    for (const std::size_t batch : {1u, 7u, 43u, 300u}) {
        const auto datagrams = encode_datagrams(records, batch);
        EXPECT_EQ(datagrams.size(), (records.size() + batch - 1) / batch);
        net::wire_decoder dec;
        std::vector<stream_record> out;
        for (const auto& d : datagrams)
            EXPECT_TRUE(dec.decode(d.data(), d.size(), out));
        EXPECT_EQ(out, records) << "batch " << batch;
        EXPECT_EQ(dec.stats().records, records.size());
        EXPECT_EQ(dec.stats().rejected(), 0u);
        EXPECT_EQ(dec.stats().seq_gaps, 0u);
    }
}

TEST(WireCodec, RejectsEachMalformation) {
    const auto records = make_records(5);
    const auto good = encode_datagrams(records, 5)[0];
    std::vector<stream_record> out;

    {  // shorter than the header
        net::wire_decoder dec;
        EXPECT_FALSE(dec.decode(good.data(), net::kWireHeaderSize - 1, out));
        EXPECT_EQ(dec.stats().short_header, 1u);
    }
    {  // magic
        auto bad = good;
        bad[0] ^= 0xff;
        net::wire_decoder dec;
        EXPECT_FALSE(dec.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(dec.stats().bad_magic, 1u);
    }
    {  // version
        auto bad = good;
        bad[4] = 99;
        net::wire_decoder dec;
        EXPECT_FALSE(dec.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(dec.stats().bad_version, 1u);
    }
    {  // reserved header flags
        auto bad = good;
        bad[5] = 1;
        net::wire_decoder dec;
        EXPECT_FALSE(dec.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(dec.stats().bad_flags, 1u);
    }
    {  // count promises more than the buffer holds
        net::wire_decoder dec;
        EXPECT_FALSE(dec.decode(good.data(), good.size() - 1, out));
        EXPECT_EQ(dec.stats().truncated, 1u);
    }
    {  // trailing garbage beyond 16 + 32*count
        auto bad = good;
        bad.push_back(0);
        net::wire_decoder dec;
        EXPECT_FALSE(dec.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(dec.stats().trailing, 1u);
    }
    EXPECT_TRUE(out.empty()) << "rejected datagrams must append nothing";
}

// The fuzz property: arbitrary single-byte corruption and arbitrary
// truncation. Every call must be exactly accepted or rejected (counts
// balance), never crash, and a corrupted datagram must never smuggle a
// different record count through.
TEST(WireCodec, PropertyCorruptionNeverMisparses) {
    const auto records = make_records(43);
    const auto good = encode_datagrams(records, 43)[0];
    rng r{20150317};
    net::wire_decoder dec;
    std::uint64_t attempts = 0;
    for (int iter = 0; iter < 5000; ++iter) {
        auto mutated = good;
        const int mode = static_cast<int>(r.uniform(3));
        if (mode == 0) {  // flip one byte
            mutated[r.uniform(mutated.size())] ^=
                static_cast<std::uint8_t>(1 + r.uniform(255));
        } else if (mode == 1) {  // truncate
            mutated.resize(r.uniform(mutated.size()));
        } else {  // extend with junk
            const std::size_t extra = 1 + r.uniform(64);
            for (std::size_t i = 0; i < extra; ++i)
                mutated.push_back(static_cast<std::uint8_t>(r.uniform(256)));
        }
        std::vector<stream_record> out;
        const bool ok = dec.decode(mutated.data(), mutated.size(), out);
        ++attempts;
        if (ok) {
            // Corruption inside the record payload decodes (the format
            // has no checksum) — but the structure must be intact.
            EXPECT_EQ(mutated.size(), good.size());
            EXPECT_EQ(out.size(), records.size());
        } else {
            EXPECT_TRUE(out.empty());
        }
    }
    const net::wire_decode_stats& s = dec.stats();
    EXPECT_EQ(s.datagrams + s.rejected(), attempts);
    EXPECT_EQ(s.records, s.datagrams * records.size());
}

TEST(WireCodec, SequenceGapAndReorderAccounting) {
    const auto records = make_records(40);
    const auto datagrams = encode_datagrams(records, 10);  // seq 0..3
    ASSERT_EQ(datagrams.size(), 4u);
    net::wire_decoder dec;
    std::vector<stream_record> out;
    auto feed = [&](std::size_t i) {
        ASSERT_TRUE(dec.decode(datagrams[i].data(), datagrams[i].size(), out));
    };
    feed(0);
    feed(1);
    feed(3);  // 2 skipped: presumed lost
    EXPECT_EQ(dec.stats().seq_gaps, 1u);
    EXPECT_EQ(dec.stats().seq_reorder, 0u);
    feed(2);  // it was only reordered: gap forgiven
    EXPECT_EQ(dec.stats().seq_gaps, 0u);
    EXPECT_EQ(dec.stats().seq_reorder, 1u);
    EXPECT_EQ(dec.stats().records, 40u);
}

TEST(WireFile, RoundTripAndRejectsCorruptContainer) {
    const auto records = make_records(100);
    const std::string path = testing::TempDir() + "wire_roundtrip.v6w";
    const auto datagrams = net::write_wire_file(path, records, 9);
    ASSERT_TRUE(datagrams.has_value());
    EXPECT_EQ(*datagrams, (100u + 8u) / 9u);

    net::wire_file_reader reader(path);
    ASSERT_TRUE(reader.valid());
    net::wire_decoder dec;
    std::vector<std::uint8_t> d;
    std::vector<stream_record> out;
    while (reader.next(d)) EXPECT_TRUE(dec.decode(d.data(), d.size(), out));
    EXPECT_TRUE(reader.error().empty());
    EXPECT_EQ(out, records);

    // Corrupt the file magic: the reader must refuse the whole file.
    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.put('X');
    }
    net::wire_file_reader bad(path);
    std::vector<std::uint8_t> tmp;
    EXPECT_FALSE(bad.next(tmp));
    EXPECT_FALSE(bad.error().empty());
}

TEST(WireFile, ReaderStopsOnOversizedLengthPrefix) {
    const std::string path = testing::TempDir() + "wire_oversized.v6w";
    {
        std::ofstream f(path, std::ios::binary);
        f.write(reinterpret_cast<const char*>(net::kWireFileMagic), 8);
        const std::uint32_t huge = net::kWireMaxDatagram + 1;
        f.write(reinterpret_cast<const char*>(&huge), 4);  // LE host is LE
    }
    net::wire_file_reader reader(path);
    std::vector<std::uint8_t> d;
    EXPECT_FALSE(reader.next(d));
    EXPECT_FALSE(reader.error().empty());
}

// ------------------------------------------------------------ pcap

void put_u32le(std::vector<std::uint8_t>& v, std::uint32_t x) {
    v.push_back(x & 0xff);
    v.push_back((x >> 8) & 0xff);
    v.push_back((x >> 16) & 0xff);
    v.push_back((x >> 24) & 0xff);
}
void put_u16le(std::vector<std::uint8_t>& v, std::uint16_t x) {
    v.push_back(x & 0xff);
    v.push_back((x >> 8) & 0xff);
}
void put_u16be(std::vector<std::uint8_t>& v, std::uint16_t x) {
    v.push_back((x >> 8) & 0xff);
    v.push_back(x & 0xff);
}

/// One Ethernet+IPv6+UDP packet wrapping `payload`, as a pcap record.
void append_packet(std::vector<std::uint8_t>& pcap, std::uint16_t dst_port,
                   const std::vector<std::uint8_t>& payload) {
    const std::uint32_t wire_len =
        14 + 40 + 8 + static_cast<std::uint32_t>(payload.size());
    put_u32le(pcap, 1);         // ts_sec
    put_u32le(pcap, 0);         // ts_usec
    put_u32le(pcap, wire_len);  // incl_len
    put_u32le(pcap, wire_len);  // orig_len
    for (int i = 0; i < 12; ++i) pcap.push_back(0);  // MACs
    put_u16be(pcap, 0x86dd);                         // ethertype IPv6
    pcap.push_back(0x60);                            // version 6
    pcap.push_back(0);
    pcap.push_back(0);
    pcap.push_back(0);
    put_u16be(pcap, static_cast<std::uint16_t>(8 + payload.size()));
    pcap.push_back(17);  // next header UDP
    pcap.push_back(64);  // hop limit
    for (int i = 0; i < 32; ++i) pcap.push_back(i < 16 ? 0x20 : 0x21);  // src/dst
    put_u16be(pcap, 9999);      // src port
    put_u16be(pcap, dst_port);  // dst port
    put_u16be(pcap, static_cast<std::uint16_t>(8 + payload.size()));
    put_u16be(pcap, 0);  // checksum (optional in UDP/IPv6 for a test vector)
    pcap.insert(pcap.end(), payload.begin(), payload.end());
}

TEST(Pcap, ExtractsWireDatagramsWithPortFilter) {
    const auto records = make_records(20);
    const auto datagrams = encode_datagrams(records, 10);
    std::vector<std::uint8_t> pcap;
    put_u32le(pcap, 0xa1b2c3d4);  // classic magic, microseconds
    put_u16le(pcap, 2);
    put_u16le(pcap, 4);
    put_u32le(pcap, 0);
    put_u32le(pcap, 0);
    put_u32le(pcap, 65535);
    put_u32le(pcap, 1);  // LINKTYPE_ETHERNET
    append_packet(pcap, 4739, datagrams[0]);
    append_packet(pcap, 1234, datagrams[1]);  // filtered out below

    const std::string path = testing::TempDir() + "wire_test.pcap";
    {
        std::ofstream f(path, std::ios::binary);
        f.write(reinterpret_cast<const char*>(pcap.data()),
                static_cast<std::streamsize>(pcap.size()));
    }

    net::wire_decoder dec;
    std::vector<stream_record> out;
    std::string error;
    const auto stats = net::pcap_extract_udp(
        path, 4739,
        [&](const std::uint8_t* p, std::size_t len) { dec.decode(p, len, out); },
        &error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_EQ(stats->packets, 2u);
    EXPECT_EQ(stats->udp_payloads, 1u);
    EXPECT_EQ(stats->skipped, 1u);
    EXPECT_EQ(stats->malformed, 0u);
    ASSERT_EQ(out.size(), 10u);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), records.begin()));

    // Port 0 delivers everything.
    net::wire_decoder dec_all;
    std::vector<stream_record> all;
    const auto stats_all = net::pcap_extract_udp(
        path, 0,
        [&](const std::uint8_t* p, std::size_t len) { dec_all.decode(p, len, all); },
        &error);
    ASSERT_TRUE(stats_all.has_value());
    EXPECT_EQ(all, records);
}

TEST(Pcap, RejectsNonPcapFile) {
    const std::string path = testing::TempDir() + "not_a.pcap";
    {
        std::ofstream f(path, std::ios::binary);
        f << "day address hits\n";
    }
    std::string error;
    const auto stats =
        net::pcap_extract_udp(path, 0, [](const std::uint8_t*, std::size_t) {}, &error);
    EXPECT_FALSE(stats.has_value());
    EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace v6
