// Tests for MRA/density-based spatial address classes.
#include <gtest/gtest.h>

#include "v6class/netgen/iid.h"
#include "v6class/netgen/rng.h"
#include "v6class/spatial/spatial_class.h"

namespace v6 {
namespace {

using namespace v6::literals;

class SpatialClassTest : public ::testing::Test {
protected:
    SpatialClassTest() {
        // A dense /112 block of 10.
        for (unsigned i = 1; i <= 10; ++i)
            add(address::from_pair(0x20010db800000001ull, 0x100 + i));
        // A busy /64 with 5 scattered privacy hosts.
        rng r{3};
        for (unsigned i = 0; i < 5; ++i)
            add(address::from_pair(0x20010db800000002ull, privacy_iid(r())));
        // Two loners.
        add("2001:db8:0:3::1"_v6);                              // low IID
        add(address::from_pair(0x20010db800000004ull,
                               privacy_iid(0xabcdef1234567890ull)));  // random
    }
    void add(const address& a) {
        population_.push_back(a);
        tree_.add(a);
    }
    std::vector<address> population_;
    radix_tree tree_;
};

TEST_F(SpatialClassTest, DenseBlockMembers) {
    const spatial_classifier cls(tree_);
    EXPECT_EQ(cls.classify(address::from_pair(0x20010db800000001ull, 0x105)),
              spatial_class::dense_block);
}

TEST_F(SpatialClassTest, BusySubnetMembers) {
    const spatial_classifier cls(tree_);
    // Privacy hosts in the busy /64 share nothing at /112, but five of
    // them cohabit the /64.
    for (const address& a : population_) {
        if (a.hi() == 0x20010db800000002ull) {
            EXPECT_EQ(cls.classify(a), spatial_class::busy_subnet)
                << a.to_string();
        }
    }
}

TEST_F(SpatialClassTest, Loners) {
    const spatial_classifier cls(tree_);
    EXPECT_EQ(cls.classify("2001:db8:0:3::1"_v6), spatial_class::lone_low);
    EXPECT_EQ(cls.classify(address::from_pair(0x20010db800000004ull,
                                              privacy_iid(0xabcdef1234567890ull))),
              spatial_class::lone_random);
}

TEST_F(SpatialClassTest, NonMemberPositionClassifiesLikeMember) {
    const spatial_classifier cls(tree_);
    // An unobserved address inside the dense /112.
    EXPECT_EQ(cls.classify(address::from_pair(0x20010db800000001ull, 0x1ff)),
              spatial_class::dense_block);
    // An unobserved address next to a single observed one: with itself
    // counted hypothetically, the /112 holds 2 — dense at n=2.
    EXPECT_EQ(cls.classify("2001:db8:0:3::2"_v6), spatial_class::dense_block);
    // Far from everything: lone.
    EXPECT_EQ(cls.classify("2600::1234:5678:9abc:def0"_v6),
              spatial_class::lone_random);
}

TEST_F(SpatialClassTest, TallySumsToInput) {
    const spatial_classifier cls(tree_);
    const auto counts = cls.tally(population_);
    ASSERT_EQ(counts.size(), 4u);
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    EXPECT_EQ(total, population_.size());
    EXPECT_EQ(counts[static_cast<std::size_t>(spatial_class::dense_block)], 10u);
    EXPECT_EQ(counts[static_cast<std::size_t>(spatial_class::busy_subnet)], 5u);
    EXPECT_EQ(counts[static_cast<std::size_t>(spatial_class::lone_low)], 1u);
    EXPECT_EQ(counts[static_cast<std::size_t>(spatial_class::lone_random)], 1u);
}

TEST_F(SpatialClassTest, OptionsChangeThresholds) {
    spatial_class_options opt;
    opt.busy_k = 100;  // nothing is busy now
    const spatial_classifier cls(tree_, opt);
    for (const address& a : population_) {
        if (a.hi() == 0x20010db800000002ull) {
            EXPECT_EQ(cls.classify(a), spatial_class::lone_random);
        }
    }
}

TEST(SpatialClassNamesTest, Render) {
    EXPECT_EQ(to_string(spatial_class::dense_block), "dense-block");
    EXPECT_EQ(to_string(spatial_class::lone_random), "lone-random");
}

}  // namespace
}  // namespace v6
