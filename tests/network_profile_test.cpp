// Tests for per-network addressing-practice inference (the Section 7.1
// extension).
#include <gtest/gtest.h>

#include "v6class/analysis/network_profile.h"
#include "v6class/cdnsim/world.h"

namespace v6 {
namespace {

class NetworkProfileTest : public ::testing::Test {
protected:
    static world_config cfg() {
        world_config c;
        c.scale = 0.15;
        c.tail_isps = 8;
        return c;
    }
    NetworkProfileTest() : w_(cfg()) {
        const int ref = kMar2015;
        daily_series raw = w_.series(ref - 7, ref + 7);
        for (const int d : raw.days())
            native_.set_day(d, cull_transition(raw.day(d)).other);
        profiles_ = profile_networks(w_.registry(), native_, ref);
    }

    const network_profile& of(std::uint32_t asn) const {
        for (const auto& p : profiles_)
            if (p.asn == asn) return p;
        throw std::runtime_error("no profile for ASN " + std::to_string(asn));
    }

    world w_;
    daily_series native_;
    std::vector<network_profile> profiles_;
};

TEST_F(NetworkProfileTest, CoversActiveAsns) {
    EXPECT_GT(profiles_.size(), 10u);
    for (const auto& p : profiles_) {
        EXPECT_GT(p.daily_addresses, 0u);
        EXPECT_GE(p.window_addresses, p.daily_addresses);
        EXPECT_GE(p.window_64s, p.daily_64s);
        EXPECT_GE(p.turnover_64, 1.0);
    }
}

TEST_F(NetworkProfileTest, MobileCarrierReadsAsDynamicPool) {
    const network_profile& p = of(20001);
    EXPECT_EQ(p.guess, practice_guess::dynamic_64_pool) << to_string(p.guess);
    // The duplicated-MAC beacon roams across many pool /64s.
    EXPECT_GE(p.beacon_max_64s, 8u);
}

TEST_F(NetworkProfileTest, JapanReadsAsStaticOrPrivacyOverStableSubnets) {
    const network_profile& p = of(20004);
    EXPECT_TRUE(p.guess == practice_guess::static_per_subscriber ||
                p.guess == practice_guess::privacy_sparse)
        << to_string(p.guess);
    EXPECT_GT(p.stable_64_share_3d, 0.5);
    EXPECT_LT(p.beacon_max_64s, 8u);  // devices stay put
}

TEST_F(NetworkProfileTest, TelcoReadsAsSharedDense) {
    const network_profile& p = of(20011);
    EXPECT_EQ(p.guess, practice_guess::shared_dense) << to_string(p.guess);
    EXPECT_GT(p.dense_112_share, 0.5);
    EXPECT_GT(p.addrs_per_64, 8.0);
}

TEST_F(NetworkProfileTest, PracticeAwareEstimatesBeatNaiveCounting) {
    // Section 7.1: active-/64 counting "can miscount by a factor of 100
    // in either direction". For the dense network the naive /64 count
    // undercounts users; for the mobile pool the window /64 count
    // overcounts. The practice-aware estimates must land closer to the
    // daily concurrent population in both cases.
    const network_profile& telco = of(20011);
    EXPECT_GT(telco.subscriber_estimate, telco.naive_64_estimate * 5)
        << "dense networks hold many users per /64";
    const network_profile& mobile = of(20001);
    EXPECT_LT(mobile.subscriber_estimate, mobile.naive_64_estimate)
        << "pool turnover inflates the naive window /64 count";
}

TEST_F(NetworkProfileTest, PracticeNamesRender) {
    EXPECT_EQ(to_string(practice_guess::dynamic_64_pool), "dynamic-64-pool");
    EXPECT_EQ(to_string(practice_guess::shared_dense), "shared-dense");
    EXPECT_EQ(to_string(practice_guess::unknown), "unknown");
}

}  // namespace
}  // namespace v6
