// Tests for the ip6.arpa reverse-DNS simulation.
#include <gtest/gtest.h>

#include <sstream>

#include "v6class/dnssim/reverse_zone.h"
#include "v6class/cdnsim/world.h"
#include "v6class/routersim/topology.h"
#include "v6class/spatial/density.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(Ip6ArpaTest, NameFormat) {
    EXPECT_EQ(ip6_arpa_name("2001:db8::1"_v6),
              "1.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2."
              "ip6.arpa");
}

TEST(Ip6ArpaTest, ZeroAddress) {
    const std::string name = ip6_arpa_name("::"_v6);
    EXPECT_EQ(name.size(), 64u + 8u);  // 32 nybbles with dots + suffix
    EXPECT_EQ(name.substr(0, 4), "0.0.");
    EXPECT_EQ(name.substr(name.size() - 8), "ip6.arpa");
}

TEST(ReverseZoneTest, AddQueryReplace) {
    reverse_zone zone;
    EXPECT_FALSE(zone.query("2001:db8::1"_v6).has_value());
    zone.add("2001:db8::1"_v6, "host1.example.org");
    ASSERT_TRUE(zone.query("2001:db8::1"_v6).has_value());
    EXPECT_EQ(*zone.query("2001:db8::1"_v6), "host1.example.org");
    zone.add("2001:db8::1"_v6, "renamed.example.org");
    EXPECT_EQ(*zone.query("2001:db8::1"_v6), "renamed.example.org");
    EXPECT_EQ(zone.size(), 1u);
}

TEST(ReverseZoneTest, ScanCountsAndDeduplicates) {
    reverse_zone zone;
    zone.add("2001:db8::1"_v6, "a");
    zone.add("2001:db8::2"_v6, "b");
    const auto result = zone.scan(
        {"2001:db8::1"_v6, "2001:db8::1"_v6, "2001:db8::3"_v6, "2001:db8::2"_v6});
    EXPECT_EQ(result.queries, 3u);
    EXPECT_EQ(result.names_found, 2u);
    EXPECT_EQ(result.named.size(), 2u);
}

TEST(ZoneFileTest, ExportImportRoundTrip) {
    reverse_zone zone;
    zone.add("2001:db8::1"_v6, "host1.example.org");
    zone.add("2001:db8::2:3"_v6, "host2.example.org");
    std::ostringstream out;
    export_zone_file(zone, out);
    EXPECT_NE(out.str().find("PTR host1.example.org."), std::string::npos);
    EXPECT_NE(out.str().find("ip6.arpa."), std::string::npos);

    reverse_zone back;
    std::istringstream in(out.str());
    EXPECT_EQ(import_zone_file(in, back), 2u);
    ASSERT_TRUE(back.query("2001:db8::1"_v6).has_value());
    EXPECT_EQ(*back.query("2001:db8::1"_v6), "host1.example.org");
    EXPECT_EQ(*back.query("2001:db8::2:3"_v6), "host2.example.org");
}

TEST(ZoneFileTest, ImportSkipsJunk) {
    reverse_zone zone;
    std::istringstream in(
        "; comment\n"
        "garbage\n"
        "not-an-owner. PTR x.\n"
        "1.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2."
        "ip6.arpa. PTR ok.example.\n"
        "1.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2."
        "ip6.arpa. A 192.0.2.1\n");
    EXPECT_EQ(import_zone_file(in, zone), 1u);
    EXPECT_EQ(*zone.query("2001:db8::1"_v6), "ok.example");
}

TEST(ZoneFileTest, ExportIsAddressOrdered) {
    reverse_zone zone;
    zone.add("2001:db8::9"_v6, "b");
    zone.add("2001:db8::1"_v6, "a");
    std::ostringstream out;
    export_zone_file(zone, out);
    EXPECT_LT(out.str().find("PTR a."), out.str().find("PTR b."));
}

class WorldZoneTest : public ::testing::Test {
protected:
    static world_config cfg() {
        world_config c;
        c.scale = 0.05;
        c.tail_isps = 6;
        return c;
    }
    WorldZoneTest() : w_(cfg()), topo_(w_), zone_(build_world_zone(w_, &topo_)) {}
    world w_;
    router_topology topo_;
    reverse_zone zone_;
};

TEST_F(WorldZoneTest, RouterInterfacesAreNamed) {
    const auto& ifaces = topo_.interfaces();
    ASSERT_FALSE(ifaces.empty());
    const auto name = zone_.query(ifaces[ifaces.size() / 2]);
    ASSERT_TRUE(name.has_value());
    EXPECT_NE(name->find("example.net"), std::string::npos);
}

TEST_F(WorldZoneTest, DepartmentHostsHaveDhcpNames) {
    // Active department hosts resolve to dhcpv6-N names.
    std::vector<observation> out;
    w_.department().day_activity(0, out);
    ASSERT_FALSE(out.empty());
    std::size_t named = 0;
    for (const observation& o : out) {
        const auto name = zone_.query(o.addr);
        if (name && name->rfind("dhcpv6-", 0) == 0) ++named;
    }
    EXPECT_GT(static_cast<double>(named) / out.size(), 0.9);
}

TEST_F(WorldZoneTest, ProvisioningRangesExceedActiveHosts) {
    // The premise of the Section 6.2.3 experiment: the zone names more
    // addresses than are active on any one day.
    std::vector<observation> telco;
    w_.telco().day_activity(0, telco);
    EXPECT_GT(zone_.size(), telco.size());
}

TEST_F(WorldZoneTest, DenseScanFindsMoreThanActiveScan) {
    // Scanning the possible addresses of dense router prefixes recovers
    // names that querying only active client addresses cannot.
    radix_tree t;
    for (const address& a : topo_.interfaces()) t.add(a);
    const auto dense = t.dense_prefixes_at(3, 120);
    const auto targets = expand_scan_targets(dense, 500'000);
    const auto dense_scan = zone_.scan(targets);

    const auto active_scan = zone_.scan(w_.active_addresses(0));
    EXPECT_GT(dense_scan.names_found, active_scan.names_found);
}

}  // namespace
}  // namespace v6
