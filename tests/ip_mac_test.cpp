// Unit tests for v6::mac_address and modified-EUI-64 conversion.
#include <gtest/gtest.h>

#include "v6class/ip/mac.h"
#include "v6class/netgen/rng.h"

namespace v6 {
namespace {

TEST(MacTest, UintRoundTrip) {
    const mac_address m = mac_address::from_uint(0x001122334455ull);
    EXPECT_EQ(m.to_uint(), 0x001122334455ull);
    EXPECT_EQ(m.octets()[0], 0x00);
    EXPECT_EQ(m.octets()[5], 0x55);
}

TEST(MacTest, ToString) {
    EXPECT_EQ(mac_address::from_uint(0x001122334455ull).to_string(),
              "00:11:22:33:44:55");
    EXPECT_EQ(mac_address{}.to_string(), "00:00:00:00:00:00");
}

TEST(MacTest, Eui64KnownVector) {
    // RFC 4291 Appendix A example: 34-56-78-9A-BC-DE ->
    // 36-56-78-FF-FE-9A-BC-DE.
    const mac_address m = mac_address::from_uint(0x3456789abcdeull);
    EXPECT_EQ(m.to_eui64_iid(), 0x365678fffe9abcdeull);
}

TEST(MacTest, Eui64RoundTrip) {
    const mac_address m = mac_address::from_uint(0x001b63a1b2c3ull);
    const auto back = mac_address::from_eui64_iid(m.to_eui64_iid());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
}

TEST(MacTest, FromEui64RequiresMarker) {
    EXPECT_FALSE(mac_address::from_eui64_iid(0x1234567812345678ull).has_value());
    EXPECT_TRUE(mac_address::from_eui64_iid(0x123456fffe345678ull).has_value());
}

TEST(MacTest, LocallyAdministeredBit) {
    EXPECT_FALSE(mac_address::from_uint(0x001122334455ull).locally_administered());
    EXPECT_TRUE(mac_address::from_uint(0x021122334455ull).locally_administered());
}

TEST(MacTest, UniversalBitInvertedInIid) {
    // A universal MAC (u/l = 0) yields an IID with the u bit set.
    const mac_address universal = mac_address::from_uint(0x001122334455ull);
    EXPECT_EQ((universal.to_eui64_iid() >> 57) & 1, 1u);
    // A locally administered MAC yields u = 0.
    const mac_address local = mac_address::from_uint(0x021122334455ull);
    EXPECT_EQ((local.to_eui64_iid() >> 57) & 1, 0u);
}

class MacRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MacRoundTripSweep, RandomMacsRoundTrip) {
    const mac_address m = mac_address::from_uint(mix64(GetParam()) & 0xffffffffffffull);
    const auto back = mac_address::from_eui64_iid(m.to_eui64_iid());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacRoundTripSweep,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace v6
