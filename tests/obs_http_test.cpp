// Tests for the /metrics HTTP endpoint: bind an ephemeral port, speak
// raw HTTP over a client socket, and check routing, payloads, and
// shutdown behaviour.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "v6class/obs/http.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/trace.h"

namespace {

using namespace v6;

/// One blocking HTTP exchange against 127.0.0.1:port; returns the whole
/// response (status line + headers + body) or "" on connect failure.
std::string http_get(std::uint16_t port, const std::string& target) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return "";
    }
    const std::string request =
        "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    (void)!::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

class ObsHttpTest : public ::testing::Test {
protected:
    void SetUp() override {
        reg_.get_counter("t_requests_total", {}, "Requests.").inc(12);
        reg_.get_gauge("t_depth", {{"shard", "0"}}).set(4);
        std::string error;
        ASSERT_TRUE(server_.start(0, &reg_, &error)) << error;
        ASSERT_NE(server_.port(), 0);  // ephemeral port was resolved
    }

    obs::registry reg_;
    obs::metrics_server server_;
};

TEST_F(ObsHttpTest, MetricsEndpointServesPrometheusText) {
    const std::string response = http_get(server_.port(), "/metrics");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(response.find("t_requests_total 12"), std::string::npos);
    EXPECT_NE(response.find("t_depth{shard=\"0\"} 4"), std::string::npos);
}

TEST_F(ObsHttpTest, MetricsReflectLiveUpdates) {
    reg_.get_counter("t_requests_total").inc(8);
    const std::string response = http_get(server_.port(), "/metrics");
    EXPECT_NE(response.find("t_requests_total 20"), std::string::npos);
}

TEST_F(ObsHttpTest, HealthzIsJsonWithStatusAndUptime) {
    const std::string response = http_get(server_.port(), "/healthz");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("application/json"), std::string::npos);
    EXPECT_NE(response.find("\"status\":\"serving\""), std::string::npos);
    EXPECT_NE(response.find("\"uptime_seconds\":"), std::string::npos);
}

TEST_F(ObsHttpTest, HealthzReflectsDrainingState) {
    server_.set_state("draining");
    const std::string response = http_get(server_.port(), "/healthz");
    EXPECT_NE(response.find("\"status\":\"draining\""), std::string::npos);
    EXPECT_EQ(server_.state(), "draining");
}

TEST_F(ObsHttpTest, HealthzIncludesCallerFields) {
    obs::metrics_server with_payload;
    with_payload.set_health_payload(
        [] { return std::string("\"last_seal_day\":12,\"records\":7"); });
    std::string error;
    ASSERT_TRUE(with_payload.start(0, &reg_, &error)) << error;
    const std::string response = http_get(with_payload.port(), "/healthz");
    EXPECT_NE(response.find("\"records\":7"), std::string::npos);
    EXPECT_NE(response.find("\"last_seal_day\":12"), std::string::npos);
    // Caller fields live inside the same object as the server's own.
    EXPECT_NE(response.find("\"status\":\"serving\""), std::string::npos);
    with_payload.stop();
}

TEST_F(ObsHttpTest, UptimeAdvancesAfterStart) {
    EXPECT_GE(server_.uptime_seconds(), 0.0);
    obs::metrics_server unstarted;
    EXPECT_EQ(unstarted.uptime_seconds(), 0.0);
    EXPECT_EQ(unstarted.state(), "starting");
}

TEST_F(ObsHttpTest, DashboardServedWhenRendererInstalled) {
    obs::metrics_server with_dash;
    with_dash.set_dashboard(
        [] { return std::string("<html><svg>spark</svg></html>"); });
    std::string error;
    ASSERT_TRUE(with_dash.start(0, &reg_, &error)) << error;
    const std::string response = http_get(with_dash.port(), "/dashboard");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/html"), std::string::npos);
    EXPECT_NE(response.find("<svg>spark</svg>"), std::string::npos);
    // The root also serves the dashboard.
    EXPECT_NE(http_get(with_dash.port(), "/").find("<svg>"),
              std::string::npos);
    with_dash.stop();
}

TEST_F(ObsHttpTest, DashboardIs404WithoutRenderer) {
    const std::string response = http_get(server_.port(), "/dashboard");
    EXPECT_NE(response.find("404"), std::string::npos);
}

TEST_F(ObsHttpTest, TraceEndpointServesChromeTraceJson) {
    obs::tracer::reset();
    obs::tracer::enable();
    {
        const obs::span span("http_test_span");
    }
    const std::string response = http_get(server_.port(), "/trace");
    obs::tracer::reset();
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("application/json"), std::string::npos);
    EXPECT_NE(response.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(response.find("http_test_span"), std::string::npos);
}

TEST_F(ObsHttpTest, ProfileEndpointServesFoldedText) {
    const std::string response = http_get(server_.port(), "/profile");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain"), std::string::npos);
    // No profile has run in this fixture, so the body is empty folded
    // text — the route must still answer 200, not 404.
}

TEST_F(ObsHttpTest, UnknownPathIs404) {
    const std::string response = http_get(server_.port(), "/nope");
    EXPECT_NE(response.find("404"), std::string::npos);
}

TEST_F(ObsHttpTest, ServesSequentialRequests) {
    for (int i = 0; i < 5; ++i) {
        const std::string response = http_get(server_.port(), "/metrics");
        EXPECT_NE(response.find("200 OK"), std::string::npos) << "request " << i;
    }
}

TEST_F(ObsHttpTest, StopIsIdempotentAndUnbindsThePort) {
    const std::uint16_t port = server_.port();
    EXPECT_TRUE(server_.running());
    server_.stop();
    EXPECT_FALSE(server_.running());
    server_.stop();  // second stop is a no-op
    EXPECT_EQ(http_get(port, "/metrics"), "");

    // The port is free again: a new server can claim it.
    obs::metrics_server reuse;
    std::string error;
    ASSERT_TRUE(reuse.start(port, &reg_, &error)) << error;
    EXPECT_NE(http_get(port, "/healthz").find("200 OK"), std::string::npos);
    reuse.stop();
}

// ------------------------------------------------------ custom handlers

TEST(ObsQueryStringTest, DecodesKeysValuesAndPluses) {
    const obs::query_params q =
        obs::parse_query_string("name=v6class_gamma16_48&from=0&to=9");
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q.at("name"), "v6class_gamma16_48");
    EXPECT_EQ(q.at("from"), "0");
    EXPECT_EQ(q.at("to"), "9");

    const obs::query_params enc =
        obs::parse_query_string("label=a%20b+c&pct=%2541&bare&empty=");
    EXPECT_EQ(enc.at("label"), "a b c");
    EXPECT_EQ(enc.at("pct"), "%41");  // one decode pass only
    EXPECT_EQ(enc.at("bare"), "");
    EXPECT_EQ(enc.at("empty"), "");

    // Duplicate keys: last wins.
    EXPECT_EQ(obs::parse_query_string("k=1&k=2").at("k"), "2");
    EXPECT_TRUE(obs::parse_query_string("").empty());
}

TEST_F(ObsHttpTest, CustomHandlerReceivesParsedQuery) {
    obs::metrics_server with_api;
    with_api.add_handler("/api/echo", [](const obs::query_params& q) {
        obs::http_reply reply;
        const auto it = q.find("name");
        reply.body = "{\"got\":\"" +
                     (it == q.end() ? std::string("none") : it->second) + "\"}";
        return reply;
    });
    std::string error;
    ASSERT_TRUE(with_api.start(0, &reg_, &error)) << error;

    std::string response =
        http_get(with_api.port(), "/api/echo?name=g16&step=4");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("application/json"), std::string::npos);
    EXPECT_NE(response.find("{\"got\":\"g16\"}"), std::string::npos);

    // Without a query string the handler still runs.
    response = http_get(with_api.port(), "/api/echo");
    EXPECT_NE(response.find("{\"got\":\"none\"}"), std::string::npos);

    // Exact-path match only: a suffix is not routed.
    response = http_get(with_api.port(), "/api/echo/sub");
    EXPECT_NE(response.find("404"), std::string::npos);
    with_api.stop();
}

TEST_F(ObsHttpTest, CustomHandlerControlsStatusAndContentType) {
    obs::metrics_server with_api;
    with_api.add_handler("/api/bad", [](const obs::query_params&) {
        obs::http_reply reply;
        reply.status = 400;
        reply.content_type = "text/plain";
        reply.body = "no such series";
        return reply;
    });
    std::string error;
    ASSERT_TRUE(with_api.start(0, &reg_, &error)) << error;
    const std::string response = http_get(with_api.port(), "/api/bad");
    EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos);
    EXPECT_NE(response.find("text/plain"), std::string::npos);
    EXPECT_NE(response.find("no such series"), std::string::npos);
    with_api.stop();
}

TEST_F(ObsHttpTest, BuiltInPathsWinOverHandlers) {
    obs::metrics_server with_api;
    with_api.add_handler("/metrics", [](const obs::query_params&) {
        return obs::http_reply{200, "text/plain", "shadowed"};
    });
    std::string error;
    ASSERT_TRUE(with_api.start(0, &reg_, &error)) << error;
    const std::string response = http_get(with_api.port(), "/metrics");
    EXPECT_EQ(response.find("shadowed"), std::string::npos);
    EXPECT_NE(response.find("t_requests_total"), std::string::npos);
    with_api.stop();
}

// -------------------------------------------------- request hardening

TEST(ObsHttpHardeningTest, StalledClientCannotWedgeLaterScrapes) {
    obs::registry reg;
    reg.get_counter("h_requests_total", {}, "Requests.").inc(1);
    obs::metrics_server server;
    server.set_read_timeout(std::chrono::milliseconds(100));
    std::string error;
    ASSERT_TRUE(server.start(0, &reg, &error)) << error;

    // Connect and send nothing: the single-threaded acceptor must give
    // up on us after the read timeout instead of blocking forever.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);

    // A well-behaved scrape right behind the stalled one still answers.
    const std::string response = http_get(server.port(), "/metrics");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("h_requests_total 1"), std::string::npos);
    ::close(fd);
    server.stop();
}

TEST(ObsHttpHardeningTest, OversizedRequestHeadIsRejectedWith400) {
    obs::registry reg;
    obs::metrics_server server;
    std::string error;
    ASSERT_TRUE(server.start(0, &reg, &error)) << error;

    // Stream more than kMaxRequestBytes without ever finishing the
    // request line: the server must answer 400, not buffer forever.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    // Exactly the cap, with no '\n' anywhere: the server reads it all
    // (so its receive queue drains — a clean close, no RST race) and
    // must then refuse rather than wait for more header bytes.
    const std::string head(obs::metrics_server::kMaxRequestBytes, 'x');
    std::size_t sent = 0;
    while (sent < head.size()) {
        const ssize_t n = ::send(fd, head.data() + sent, head.size() - sent,
                                 MSG_NOSIGNAL);
        if (n <= 0) break;  // server already cut us off — also fine
        sent += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_WR);
    std::string response;
    char buf[512];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    EXPECT_NE(response.find("400"), std::string::npos) << response;
    EXPECT_NE(response.find("request too large"), std::string::npos);

    // And the server is still healthy afterwards.
    EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"),
              std::string::npos);
    server.stop();
}

TEST(ObsHttpStartTest, ReportsBindFailure) {
    obs::registry reg;
    obs::metrics_server a;
    std::string error;
    ASSERT_TRUE(a.start(0, &reg, &error)) << error;
    obs::metrics_server b;
    EXPECT_FALSE(b.start(a.port(), &reg, &error));  // port already taken
    EXPECT_FALSE(error.empty());
    a.stop();
}

}  // namespace
