// Tests for formatting and report builders.
#include <gtest/gtest.h>

#include "v6class/analysis/format.h"
#include "v6class/analysis/reports.h"
#include "v6class/cdnsim/world.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(FormatCountTest, Magnitudes) {
    EXPECT_EQ(format_count(0), "0");
    EXPECT_EQ(format_count(999), "999");
    EXPECT_EQ(format_count(1'980), "1.98K");
    EXPECT_EQ(format_count(13'700'000), "13.7M");
    EXPECT_EQ(format_count(318'000'000), "318M");
    EXPECT_EQ(format_count(1'810'000'000), "1.81B");
    EXPECT_EQ(format_count(1'810'000'000'000.0), "1.81T");
}

TEST(FormatPctTest, PaperStyle) {
    EXPECT_EQ(format_pct(0.0922), "9.22%");
    EXPECT_EQ(format_pct(0.908), "90.8%");
    EXPECT_EQ(format_pct(0.00103), ".103%");
    EXPECT_EQ(format_pct(0.0419), "4.19%");
    EXPECT_EQ(format_pct(1.0), "100%");
}

TEST(FormatFixedTest, Digits) {
    EXPECT_EQ(format_fixed(2.4136, 2), "2.41");
    EXPECT_EQ(format_fixed(0.1678459119, 10), "0.1678459119");
}

TEST(TextTableTest, AlignmentAndSeparators) {
    text_table t({"name", "count"});
    t.add_row({"alpha", "12"});
    t.add_row({"b", "12345"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
    // Right-aligned numeric column.
    EXPECT_NE(s.find("   12\n"), std::string::npos);
}

TEST(TextTableTest, TooManyCellsThrows) {
    text_table t({"only"});
    EXPECT_THROW(t.add_row({"a", "b"}), std::invalid_argument);
    t.add_row({});  // short rows are padded
    EXPECT_FALSE(t.to_string().empty());
}

TEST(Table1Test, BuildColumnFromCraftedMix) {
    std::vector<address> addrs{
        "2001::1"_v6,                               // teredo
        "2002:1800:102::1"_v6,                      // 6to4
        "2600:1::5efe:c000:221"_v6,                 // isatap
        "2600:1:0:1:21e:c2ff:fec0:11db"_v6,         // EUI-64 (other)
        "2600:1:0:1:1111:2222:3333:4444"_v6,        // other
        "2600:1:0:2:1111:2222:3333:4444"_v6,        // other, 2nd /64
    };
    const table1_column col = build_table1_column("test", addrs);
    EXPECT_EQ(col.teredo, 1u);
    EXPECT_EQ(col.six_to_four, 1u);
    EXPECT_EQ(col.isatap, 1u);
    EXPECT_EQ(col.other, 3u);
    EXPECT_EQ(col.other_64s, 2u);
    EXPECT_EQ(col.eui64_not_6to4, 1u);
    EXPECT_EQ(col.eui64_unique_macs, 1u);
    EXPECT_DOUBLE_EQ(col.addrs_per_64, 1.5);
    EXPECT_EQ(col.total(), 6u);
}

TEST(Table1Test, RenderContainsPaperRows) {
    const table1_column col = build_table1_column("Mar 17, 2015", {"2600::1"_v6});
    const std::string s = render_table1({col});
    EXPECT_NE(s.find("Teredo addresses"), std::string::npos);
    EXPECT_NE(s.find("6to4 addresses"), std::string::npos);
    EXPECT_NE(s.find("ave. addrs per /64"), std::string::npos);
    EXPECT_NE(s.find("EUI-64 IIDs (MACs)"), std::string::npos);
    EXPECT_NE(s.find("Mar 17, 2015"), std::string::npos);
}

TEST(Table2Test, RenderShowsEpochGaps) {
    stability_column early;
    early.label = "Mar 17, 2014";
    early.stable_3d = 90;
    early.not_stable_3d = 910;
    stability_column late;
    late.label = "Mar 17, 2015";
    late.stable_3d = 95;
    late.not_stable_3d = 905;
    late.stable_6m = 10;
    late.has_6m = true;
    late.stable_1y = 3;
    late.has_1y = true;
    const std::string s = render_table2({early, late}, "addr");
    EXPECT_NE(s.find("3d-stable"), std::string::npos);
    EXPECT_NE(s.find("6m-stable (-6m)"), std::string::npos);
    EXPECT_NE(s.find("1y-stable (-1y)"), std::string::npos);
    EXPECT_NE(s.find("9.00%"), std::string::npos);
}

TEST(Table3Test, RenderRows) {
    density_row row;
    row.n = 2;
    row.p = 124;
    row.dense_prefix_count = 43'100;
    row.covered_addresses = 116'000;
    row.possible_addresses = 689'600.0L;
    row.address_density = 0.1678L;
    const std::string s = render_table3({row}, "Router");
    EXPECT_NE(s.find("2 @ /124"), std::string::npos);
    EXPECT_NE(s.find("43.1K"), std::string::npos);
    EXPECT_NE(s.find("0.1678"), std::string::npos);
}

TEST(GroupingTest, ByAsnAndPrefix) {
    rir_registry reg;
    const prefix a = reg.allocate(rir::arin, 111, 32);
    const prefix b = reg.allocate(rir::ripe, 222, 32);
    std::vector<address> addrs{
        address::from_pair(a.base().hi() | 1, 1),
        address::from_pair(a.base().hi() | 2, 2),
        address::from_pair(b.base().hi() | 1, 3),
    };
    const auto by_asn = group_by_asn(reg, addrs);
    ASSERT_EQ(by_asn.size(), 2u);
    EXPECT_EQ(by_asn.at(111).size(), 2u);
    EXPECT_EQ(by_asn.at(222).size(), 1u);
    const auto by_pfx = group_by_bgp_prefix(reg, addrs);
    ASSERT_EQ(by_pfx.size(), 2u);
    EXPECT_EQ(by_pfx.at(a).size(), 2u);
}

TEST(SegmentDistributionTest, EightSummaries) {
    std::map<prefix, std::vector<address>> groups;
    for (unsigned g = 0; g < 5; ++g) {
        std::vector<address> addrs;
        for (unsigned i = 0; i < 50; ++i)
            addrs.push_back(
                address::from_pair(0x2600000000000000ull + (static_cast<std::uint64_t>(g) << 32), i * 3 + 1));
        groups.emplace(prefix{addrs.front(), 32}, std::move(addrs));
    }
    const auto dist = segment_ratio_distribution(groups);
    ASSERT_EQ(dist.size(), 8u);
    for (const auto& s : dist) {
        EXPECT_EQ(s.samples, 5u);
        EXPECT_GE(s.min, 1.0);
    }
}

TEST(RenderCcdfTest, DownsamplesLongTails) {
    std::vector<ccdf_point> ccdf;
    for (int i = 1; i <= 500; ++i)
        ccdf.push_back({static_cast<double>(i), 1.0 / i});
    const std::string s = render_ccdf(ccdf, 10);
    std::size_t lines = 0;
    for (char c : s)
        if (c == '\n') ++lines;
    EXPECT_LE(lines, 16u);  // header + separator + <= ~12 rows
}

}  // namespace
}  // namespace v6
