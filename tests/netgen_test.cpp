// Tests for the synthetic-network substrate: RNG, registry, and the
// addressing-practice signatures of each model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "v6class/addrtype/classify.h"
#include "v6class/netgen/iid.h"
#include "v6class/netgen/models.h"
#include "v6class/netgen/rir_registry.h"
#include "v6class/netgen/rng.h"

namespace v6 {
namespace {

// --------------------------------------------------------------- rng

TEST(RngTest, DeterministicStream) {
    rng a{123}, b{123}, c{124};
    EXPECT_EQ(a(), b());
    EXPECT_EQ(a(), b());
    EXPECT_NE(a(), c());
}

TEST(RngTest, UniformBounds) {
    rng r{5};
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform(17), 17u);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.uniform_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, HashHelpersAreStateless) {
    EXPECT_EQ(hash_ids(1, 2, 3), hash_ids(1, 2, 3));
    EXPECT_NE(hash_ids(1, 2, 3), hash_ids(1, 2, 4));
    EXPECT_NE(hash_ids(1, 2, 3), hash_ids(2, 2, 3));
}

TEST(RngTest, HashChanceApproximatesProbability) {
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < 50'000; ++i)
        if (hash_chance(hash_ids(9, i), 300'000, 1'000'000)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / 50'000, 0.30, 0.02);
}

TEST(ZipfTest, MassSumsToOne) {
    const zipf_sampler z(50, 1.0);
    double total = 0;
    for (std::uint64_t k = 1; k <= 50; ++k) total += z.mass(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(z.mass(1), z.mass(2));
    EXPECT_DOUBLE_EQ(z.mass(0), 0.0);
    EXPECT_DOUBLE_EQ(z.mass(51), 0.0);
}

TEST(ZipfTest, DrawsFavourLowRanks) {
    const zipf_sampler z(100, 1.2);
    rng r{77};
    std::uint64_t low = 0;
    for (int i = 0; i < 10'000; ++i)
        if (z(r) <= 10) ++low;
    EXPECT_GT(low, 5'000u);
}

// ----------------------------------------------------------- registry

TEST(RegistryTest, AllocationsDoNotOverlap) {
    rir_registry reg;
    std::vector<prefix> blocks;
    for (int i = 0; i < 20; ++i)
        blocks.push_back(reg.allocate(rir::ripe, 100 + i, 29 + (i % 4)));
    for (std::size_t i = 0; i < blocks.size(); ++i)
        for (std::size_t j = i + 1; j < blocks.size(); ++j) {
            EXPECT_FALSE(blocks[i].contains(blocks[j]))
                << blocks[i].to_string() << " vs " << blocks[j].to_string();
            EXPECT_FALSE(blocks[j].contains(blocks[i]));
        }
}

TEST(RegistryTest, RegionsAreHonoured) {
    rir_registry reg;
    const prefix arin = reg.allocate(rir::arin, 1, 32);
    const prefix apnic = reg.allocate(rir::apnic, 2, 32);
    EXPECT_EQ(arin.base().hextet(0) & 0xfff0, 0x2600);
    EXPECT_EQ(apnic.base().hextet(0) & 0xfff0, 0x2400);
}

TEST(RegistryTest, OriginLookupFindsLongestMatch) {
    rir_registry reg;
    const prefix big = reg.allocate(rir::ripe, 10, 24);
    reg.advertise(prefix{big.base(), 48}, 11);  // more-specific carve-out
    const auto inside_specific = reg.origin_of(big.base());
    ASSERT_TRUE(inside_specific.has_value());
    EXPECT_EQ(inside_specific->asn, 11u);
    // An address in the /24 but outside the /48.
    address other = big.base().with_bit(40, 1);
    const auto inside_big = reg.origin_of(other);
    ASSERT_TRUE(inside_big.has_value());
    EXPECT_EQ(inside_big->asn, 10u);
    EXPECT_FALSE(reg.origin_of(address::must_parse("3001::1")).has_value());
}

TEST(RegistryTest, AsnCount) {
    rir_registry reg;
    reg.allocate(rir::arin, 1, 32);
    reg.allocate(rir::arin, 1, 32);
    reg.allocate(rir::ripe, 2, 32);
    EXPECT_EQ(reg.asn_count(), 2u);
}

TEST(RegistryTest, RejectsSillyLengths) {
    rir_registry reg;
    EXPECT_THROW(reg.allocate(rir::arin, 1, 8), std::invalid_argument);
    EXPECT_THROW(reg.allocate(rir::arin, 1, 80), std::invalid_argument);
}

// ------------------------------------------------------------- models

model_config test_cfg(std::uint32_t asn, std::uint64_t subs) {
    model_config cfg;
    cfg.asn = asn;
    cfg.seed = 99;
    cfg.subscribers = subs;
    cfg.annual_growth = 0.5;
    cfg.daily_activity = 0.5;
    return cfg;
}

TEST(ModelTest, DayActivityIsDeterministicAndOrderFree) {
    rir_registry reg;
    const prefix bgp = reg.allocate(rir::ripe, 1, 19);
    const eu_isp model(test_cfg(1, 500), bgp);
    std::vector<observation> day5_a, day5_b, day9;
    model.day_activity(5, day5_a);
    model.day_activity(9, day9);  // interleave another day
    model.day_activity(5, day5_b);
    ASSERT_EQ(day5_a.size(), day5_b.size());
    for (std::size_t i = 0; i < day5_a.size(); ++i) {
        EXPECT_EQ(day5_a[i].addr, day5_b[i].addr);
        EXPECT_EQ(day5_a[i].hits, day5_b[i].hits);
    }
}

TEST(ModelTest, AddressesStayInsideBgpPrefixes) {
    rir_registry reg;
    const auto check = [](const network_model& m, int day) {
        std::vector<observation> out;
        m.day_activity(day, out);
        ASSERT_FALSE(out.empty());
        for (const observation& o : out) {
            bool inside = false;
            for (const prefix& p : m.bgp_prefixes())
                if (p.contains(o.addr)) inside = true;
            EXPECT_TRUE(inside) << m.name() << " leaked " << o.addr.to_string();
            EXPECT_GE(o.hits, 1u);
        }
    };
    check(us_mobile_carrier(test_cfg(1, 800),
                            {reg.allocate(rir::arin, 1, 44),
                             reg.allocate(rir::arin, 1, 44)}),
          3);
    check(eu_isp(test_cfg(2, 500), reg.allocate(rir::ripe, 2, 19)), 3);
    check(jp_isp(test_cfg(3, 500), reg.allocate(rir::apnic, 3, 24)), 3);
    check(us_university(test_cfg(4, 400), reg.allocate(rir::arin, 4, 32)), 3);
    check(jp_telco(test_cfg(5, 900), reg.allocate(rir::apnic, 5, 32)), 3);
    check(relay_6to4(test_cfg(6, 200)), 3);
    check(teredo_model(test_cfg(7, 50)), 3);
    check(isatap_model(test_cfg(8, 50), reg.allocate(rir::arin, 8, 48)), 3);
    check(generic_isp("g", test_cfg(9, 300), reg.allocate(rir::lacnic, 9, 32)), 3);
    check(hosting_provider(test_cfg(10, 300), reg.allocate(rir::arin, 10, 32)), 3);
}

TEST(HostingModelTest, RacksAreDenseAndStable) {
    rir_registry reg;
    model_config cfg = test_cfg(1, 300);
    cfg.daily_activity = 0.9;  // servers are nearly always on
    const hosting_provider model(cfg, reg.allocate(rir::arin, 1, 32));
    std::vector<observation> day1, day2;
    model.day_activity(1, day1);
    model.day_activity(2, day2);
    ASSERT_GT(day1.size(), 100u);
    // Static servers: heavy overlap between consecutive days.
    std::set<address> set1;
    for (const auto& o : day1) set1.insert(o.addr);
    std::size_t common = 0;
    for (const auto& o : day2)
        if (set1.contains(o.addr)) ++common;
    EXPECT_GT(static_cast<double>(common) / day2.size(), 0.7);
    // And the racks are dense: few /64s relative to addresses.
    std::set<address> p64s;
    for (const auto& o : day1) p64s.insert(o.addr.masked(64));
    EXPECT_GT(day1.size(), p64s.size() * 10);
}

TEST(ModelTest, SubscriberGrowthRaisesActivity) {
    rir_registry reg;
    const eu_isp model(test_cfg(1, 2000), reg.allocate(rir::ripe, 1, 19));
    std::vector<observation> early, late;
    model.day_activity(0, early);
    model.day_activity(365, late);
    EXPECT_GT(late.size(), early.size() * 1.2);
}

TEST(MobileModelTest, PoolSlotsAreReusedAcrossSubscribers) {
    rir_registry reg;
    us_mobile_carrier::options opt;
    opt.fixed_iid_share = 1.0;  // every device uses ::1: address == slot
    opt.duplicate_mac_share = 0.0;
    const us_mobile_carrier model(test_cfg(1, 2000),
                                  {reg.allocate(rir::arin, 1, 44)}, opt);
    // Collect the /64s of two different days: heavy overlap proves the
    // pool hands the same /64s to (different) subscribers over time.
    std::set<address> day1_64s, day2_64s;
    std::vector<observation> out;
    model.day_activity(1, out);
    for (const auto& o : out) day1_64s.insert(o.addr.masked(64));
    out.clear();
    model.day_activity(2, out);
    for (const auto& o : out) day2_64s.insert(o.addr.masked(64));
    std::size_t common = 0;
    for (const address& a : day1_64s)
        if (day2_64s.contains(a)) ++common;
    EXPECT_GT(common, day1_64s.size() / 5);
}

TEST(MobileModelTest, FixedIidRecreatesFullAddresses) {
    // The paper's "apparent contradiction": stable full addresses in a
    // network with dynamic network identifiers.
    rir_registry reg;
    us_mobile_carrier::options opt;
    opt.fixed_iid_share = 0.5;
    const us_mobile_carrier model(test_cfg(1, 2000),
                                  {reg.allocate(rir::arin, 1, 44)}, opt);
    std::set<address> day1;
    std::vector<observation> out;
    model.day_activity(1, out);
    for (const auto& o : out)
        if (o.addr.lo() == 1) day1.insert(o.addr);
    out.clear();
    model.day_activity(4, out);
    std::size_t recur = 0;
    for (const auto& o : out)
        if (o.addr.lo() == 1 && day1.contains(o.addr)) ++recur;
    EXPECT_GT(recur, 0u);
}

TEST(EuIspModelTest, RenumberChangesMiddleBits) {
    rir_registry reg;
    eu_isp::options opt;
    opt.renumber_period_days = 5;
    const eu_isp model(test_cfg(1, 50), reg.allocate(rir::ripe, 1, 19), opt);
    // EUI-64 devices expose a stable IID; track one MAC's /64 over time.
    std::vector<observation> out;
    std::set<std::uint64_t> his;
    for (int day = 0; day < 40; ++day) {
        out.clear();
        model.day_activity(day, out);
        for (const auto& o : out)
            if (is_eui64(o.addr)) his.insert(o.addr.hi());
    }
    // Renumbering must have produced several distinct network ids.
    EXPECT_GT(his.size(), 3u);
}

TEST(EuIspModelTest, SubnetByteIsBiased) {
    rir_registry reg;
    const eu_isp model(test_cfg(1, 3000), reg.allocate(rir::ripe, 1, 19));
    std::vector<observation> out;
    model.day_activity(1, out);
    std::uint64_t low_subnets = 0;
    for (const auto& o : out) {
        const unsigned subnet = static_cast<unsigned>(o.addr.hi() & 0xff);
        if (subnet <= 1) ++low_subnets;
    }
    EXPECT_GT(static_cast<double>(low_subnets) / out.size(), 0.7);
}

TEST(JpIspModelTest, SlashFortyEightIsStaticPerSubscriber) {
    rir_registry reg;
    const jp_isp model(test_cfg(1, 200), reg.allocate(rir::apnic, 1, 24));
    // EUI-64 devices mark subscribers; their /48 must never change.
    std::map<std::uint64_t, std::set<std::uint64_t>> mac_to_48;
    std::vector<observation> out;
    for (int day = 0; day < 30; ++day) {
        out.clear();
        model.day_activity(day, out);
        for (const auto& o : out)
            if (const auto mac = eui64_mac(o.addr))
                mac_to_48[mac->to_uint()].insert(o.addr.masked(48).hi());
    }
    ASSERT_FALSE(mac_to_48.empty());
    for (const auto& [mac, s48s] : mac_to_48) EXPECT_EQ(s48s.size(), 1u);
}

TEST(UniversityModelTest, OnlyThreeCustomerNybbles) {
    rir_registry reg;
    const us_university model(test_cfg(1, 800), reg.allocate(rir::arin, 1, 32));
    std::vector<observation> out;
    model.day_activity(1, out);
    std::set<unsigned> nybbles;
    for (const auto& o : out) nybbles.insert(o.addr.nybble(8));
    EXPECT_LE(nybbles.size(), 3u);
    EXPECT_GE(nybbles.size(), 2u);
}

TEST(TelcoModelTest, CpeBlocksAreDense) {
    rir_registry reg;
    const jp_telco model(test_cfg(1, 5000), reg.allocate(rir::apnic, 1, 32));
    std::vector<observation> out;
    model.day_activity(1, out);
    // Most addresses are low-IID CPE packed into few /64s.
    std::set<address> p64s;
    std::uint64_t low_iid = 0;
    for (const auto& o : out) {
        p64s.insert(o.addr.masked(64));
        if (o.addr.lo() < 0x10000) ++low_iid;
    }
    EXPECT_LT(p64s.size(), 100u);
    EXPECT_GT(static_cast<double>(low_iid) / out.size(), 0.8);
}

TEST(DeptModelTest, HostsLiveInOneSlash64InDenseClusters) {
    rir_registry reg;
    const prefix campus = reg.allocate(rir::ripe, 1, 32);
    const eu_university_dept model(test_cfg(1, 100), prefix{campus.base(), 64});
    std::vector<observation> out;
    model.day_activity(1, out);
    ASSERT_GT(out.size(), 20u);
    for (const auto& o : out)
        EXPECT_EQ(o.addr.masked(64), campus.base().masked(64));
    // Host addresses are stable day over day (DHCPv6 leases).
    std::vector<observation> next;
    model.day_activity(2, next);
    std::set<address> day1;
    for (const auto& o : out) day1.insert(o.addr);
    std::size_t common = 0;
    for (const auto& o : next)
        if (day1.contains(o.addr)) ++common;
    EXPECT_GT(common, next.size() / 2);
}

TEST(TransitionModelsTest, ClassifiersRecognizeOutputs) {
    rir_registry reg;
    std::vector<observation> out;
    relay_6to4(test_cfg(1, 100)).day_activity(1, out);
    for (const auto& o : out) EXPECT_TRUE(is_6to4(o.addr));

    out.clear();
    teredo_model(test_cfg(2, 50)).day_activity(1, out);
    for (const auto& o : out) EXPECT_TRUE(is_teredo(o.addr));

    out.clear();
    isatap_model(test_cfg(3, 50), reg.allocate(rir::arin, 3, 48))
        .day_activity(1, out);
    for (const auto& o : out) EXPECT_TRUE(is_isatap(o.addr));
}

TEST(GenericIspTest, PracticesProduceDistinctStructures) {
    rir_registry reg;
    auto count_64s = [&](isp_practice plan) {
        generic_isp::options opt;
        opt.plan = plan;
        const generic_isp m("g", test_cfg(1, 1000),
                            reg.allocate(rir::lacnic, 1, 32), opt);
        std::vector<observation> out;
        m.day_activity(1, out);
        std::set<address> p64s;
        for (const auto& o : out) p64s.insert(o.addr.masked(64));
        return std::pair<std::size_t, std::size_t>{p64s.size(), out.size()};
    };
    const auto [static64, n1] = count_64s(isp_practice::static_64_per_subscriber);
    const auto [shared, n2] = count_64s(isp_practice::shared_64);
    // Shared-64 packs many users per /64; static-64 spreads them out.
    EXPECT_LT(shared * 5, static64);
}

TEST(IidHelpersTest, PrivacyIidClearsUBit) {
    for (std::uint64_t h : {0xffffffffffffffffull, 0x123456789abcdef0ull}) {
        const std::uint64_t iid = privacy_iid(h);
        EXPECT_EQ((iid >> 57) & 1, 0u);
    }
}

TEST(IidHelpersTest, DeviceMacsRoundTripThroughEui64) {
    const mac_address m = device_mac(0x1234567);
    const auto back = mac_address::from_eui64_iid(m.to_eui64_iid());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
}

}  // namespace
}  // namespace v6
