// Tests for the streaming ingest engine and its parts: the bounded
// queue, the feed-record codec, shard sealing, and the engine's epoch /
// day-roll machinery (including ingest continuing while a seal is in
// flight).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "v6class/netgen/rng.h"
#include "v6class/obs/alert.h"
#include "v6class/obs/metrics.h"
#include "v6class/stream/bounded_queue.h"
#include "v6class/stream/engine.h"
#include "v6class/temporal/stability.h"

namespace v6 {
namespace {

address nth(unsigned i) {
    return address::from_pair(0x20010db800000000ull + (i % 7), 0x9000u + i);
}

// ------------------------------------------------------------ bounded_queue

TEST(BoundedQueueTest, FifoOrder) {
    bounded_queue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
    bounded_queue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_FALSE(q.try_push(3));  // full
    q.pop();
    EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueueTest, ZeroCapacityClampedToOne) {
    bounded_queue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
    bounded_queue<int> q(4);
    q.push(1);
    q.push(2);
    q.close();
    EXPECT_FALSE(q.push(3));  // closed: push fails
    EXPECT_EQ(q.pop(), 1);    // but the backlog drains
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueueTest, FullPushBlocksUntilConsumerPops) {
    bounded_queue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        q.push(2);  // blocks: capacity 1, queue full
        second_pushed = true;
    });
    // The producer must be parked, not spinning through a failed push.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(second_pushed);
    EXPECT_EQ(q.pop(), 1);
    producer.join();
    EXPECT_TRUE(second_pushed);
    EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
    bounded_queue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    producer.join();
}

// ------------------------------------------------------------ record codec

TEST(StreamRecordTest, ParsesDayAddressHits) {
    stream_record r;
    ASSERT_TRUE(parse_stream_record("365 2001:db8::1 42", r));
    EXPECT_EQ(r.day, 365);
    EXPECT_EQ(r.addr, address::must_parse("2001:db8::1"));
    EXPECT_EQ(r.hits, 42u);
}

TEST(StreamRecordTest, HitsDefaultToOne) {
    stream_record r;
    ASSERT_TRUE(parse_stream_record("7 ::1", r));
    EXPECT_EQ(r.hits, 1u);
}

TEST(StreamRecordTest, RejectsGarbage) {
    stream_record r;
    EXPECT_FALSE(parse_stream_record("", r));
    EXPECT_FALSE(parse_stream_record("2001:db8::1", r));      // no day
    EXPECT_FALSE(parse_stream_record("x 2001:db8::1", r));    // bad day
    EXPECT_FALSE(parse_stream_record("5 not-an-addr", r));    // bad addr
    EXPECT_FALSE(parse_stream_record("5 ::1 0", r));          // zero hits
    EXPECT_FALSE(parse_stream_record("5 ::1 3 junk", r));     // trailing
}

TEST(StreamRecordTest, RoundTripsThroughText) {
    const stream_record original{123, address::must_parse("2001:db8::abcd"), 9};
    std::ostringstream out;
    write_stream_record(out, original);
    stream_record parsed;
    std::string line = out.str();
    ASSERT_FALSE(line.empty());
    line.pop_back();  // strip '\n'
    ASSERT_TRUE(parse_stream_record(line, parsed));
    EXPECT_EQ(parsed, original);
}

TEST(StreamRecordTest, ReaderToleratesCommentsAndCountsErrors) {
    std::istringstream in(
        "# header\n"
        "\n"
        "1 2001:db8::1 2\n"
        "broken line\n"
        "2 2001:db8::2\n");
    std::vector<stream_record> seen;
    const read_report report =
        read_stream_records(in, [&](const stream_record& r) { seen.push_back(r); });
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_EQ(report.parsed, 2u);
    EXPECT_EQ(report.malformed, 1u);
    ASSERT_EQ(report.first_errors.size(), 1u);
    EXPECT_EQ(report.first_errors[0].line_number, 4u);
}

// ------------------------------------------------------------ engine

stream_config small_config(unsigned shards) {
    stream_config cfg;
    cfg.shards = shards;
    cfg.batch_size = 8;
    cfg.queue_capacity = 4;
    return cfg;
}

TEST(StreamEngineTest, EmptyEngineFinishesCleanly) {
    stream_engine engine(small_config(2));
    engine.finish();
    EXPECT_EQ(engine.sealed_day(), kNoDay);
    EXPECT_TRUE(engine.reports().empty());
    const stream_snapshot snap = engine.snapshot();
    EXPECT_EQ(snap.epoch, kNoDay);
    EXPECT_EQ(snap.records, 0u);
}

TEST(StreamEngineTest, FinishSealsTheOpenDay) {
    stream_engine engine(small_config(3));
    engine.push(10, nth(1), 5);
    engine.push(10, nth(2));
    engine.push(10, nth(1));  // duplicate within the day
    engine.finish();
    EXPECT_EQ(engine.sealed_day(), 10);
    const stream_stats stats = engine.stats();
    EXPECT_EQ(stats.records, 3u);
    EXPECT_EQ(stats.hits, 7u);
    EXPECT_EQ(stats.distinct_addresses, 2u);
    ASSERT_EQ(engine.reports().size(), 1u);
    EXPECT_EQ(engine.reports()[0].day, 10);
}

TEST(StreamEngineTest, FinishIsIdempotent) {
    stream_engine engine(small_config(2));
    engine.push(1, nth(1));
    engine.finish();
    engine.finish();
    EXPECT_EQ(engine.stats().records, 1u);
}

TEST(StreamEngineTest, PushAfterFinishIsIgnored) {
    stream_engine engine(small_config(2));
    engine.push(1, nth(1));
    engine.finish();
    engine.push(2, nth(2));
    EXPECT_EQ(engine.stats().records, 1u);
    EXPECT_EQ(engine.sealed_day(), 1);
}

TEST(StreamEngineTest, DayBoundaryAdvancesEpoch) {
    stream_engine engine(small_config(2));
    engine.push(5, nth(1));
    engine.push(5, nth(2));
    EXPECT_EQ(engine.stats().open_day, 5);
    engine.push(6, nth(1));  // seals day 5 behind its last batch
    const auto report5 = engine.wait_for_report(5);
    ASSERT_TRUE(report5.has_value());
    EXPECT_EQ(report5->day, 5);
    EXPECT_EQ(report5->distinct_addresses, 2u);
    EXPECT_EQ(engine.sealed_day(), 5);
    EXPECT_EQ(engine.stats().open_day, 6);
    engine.finish();
    EXPECT_EQ(engine.sealed_day(), 6);
    EXPECT_EQ(engine.reports().size(), 2u);
}

TEST(StreamEngineTest, SkippedDaysSealOnlyObservedOnes) {
    stream_engine engine(small_config(2));
    engine.push(1, nth(1));
    engine.push(4, nth(1));  // days 2 and 3 never existed in the feed
    engine.finish();
    const auto reports = engine.reports();
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].day, 1);
    EXPECT_EQ(reports[1].day, 4);
}

TEST(StreamEngineTest, LateRecordsAreDroppedAndCounted) {
    stream_engine engine(small_config(2));
    engine.push(10, nth(1));
    engine.push(11, nth(2));  // day 10 sealed
    engine.push(10, nth(3));  // late: sealed days are immutable
    engine.push(9, nth(4));   // later still
    engine.finish();
    const stream_stats stats = engine.stats();
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.late_dropped, 2u);
    EXPECT_EQ(stats.distinct_addresses, 2u);
    // The dropped addresses are nowhere in the sealed state.
    const auto distinct = engine.distinct_addresses();
    EXPECT_EQ(distinct.size(), 2u);
}

TEST(StreamEngineTest, WaitForUnsealedDayReturnsNulloptAfterFinish) {
    stream_engine engine(small_config(2));
    engine.push(1, nth(1));
    engine.finish();
    EXPECT_FALSE(engine.wait_for_report(99).has_value());
}

TEST(StreamEngineTest, ReportCarriesWindowedSplitAndDensity) {
    stream_config cfg = small_config(2);
    cfg.window.window_back = 2;
    cfg.window.window_fwd = 2;
    cfg.stability_n = 2;
    cfg.density_classes = {{2, 112}};
    stream_engine engine(cfg);
    // nth(1) active on days 0..4; nth(2) only day 2: at ref_day 2
    // (sealed day 4 minus window_fwd 2), nth(1) is 2d-stable, nth(2) not.
    for (int day = 0; day <= 4; ++day) {
        engine.push(day, nth(1));
        if (day == 2) engine.push(day, nth(2));
    }
    engine.push(5, nth(1));  // seal day 4 -> report for ref_day 2
    const auto report = engine.wait_for_report(4);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->ref_day, 2);
    EXPECT_EQ(report->active, 2u);
    EXPECT_EQ(report->stable, 1u);
    EXPECT_EQ(report->not_stable, 1u);
    ASSERT_EQ(report->density.size(), 1u);
    EXPECT_EQ(report->density[0].n, 2u);
    EXPECT_EQ(report->density[0].p, 112u);
    engine.finish();
}

TEST(StreamEngineTest, ClassifyDayMergesShards) {
    stream_engine engine(small_config(4));
    daily_series series;
    rng r{77};
    for (int day = 0; day < 10; ++day) {
        std::vector<address> active;
        for (unsigned i = 0; i < 120; ++i)
            if (r.chance(0.4)) active.push_back(nth(i));
        for (const address& a : active) engine.push(day, a);
        series.set_day(day, active);
    }
    engine.finish();
    const stability_analyzer an(series);
    for (unsigned n : {1u, 3u}) {
        const stability_split batch = an.classify_day(5, n);
        const stability_split streamed = engine.classify_day(5, n);
        EXPECT_EQ(streamed.stable, batch.stable) << "n=" << n;
        EXPECT_EQ(streamed.not_stable, batch.not_stable) << "n=" << n;
    }
}

TEST(StreamEngineTest, SnapshotIsEpochConsistent) {
    stream_engine engine(small_config(3));
    engine.push(1, nth(1));
    engine.push(1, nth(2));
    engine.push(2, nth(1));
    ASSERT_TRUE(engine.wait_for_report(1).has_value());
    // Day 2 is still open: the snapshot must describe epoch 1 only.
    const stream_snapshot snap = engine.snapshot();
    EXPECT_EQ(snap.epoch, 1);
    EXPECT_EQ(snap.distinct_addresses, 2u);
    ASSERT_FALSE(snap.spectrum.empty());
    EXPECT_EQ(snap.spectrum[0], 2u);
    engine.finish();
    EXPECT_EQ(engine.snapshot().epoch, 2);
}

// The acceptance test of the roll design: once a day boundary is pushed,
// the seal and its report recompute happen on the roll thread while the
// pusher keeps streaming the next day's records. All of them must be
// accepted (none dropped, none deadlocked) even with tiny queues forcing
// backpressure, and the in-flight report must still come out right.
TEST(StreamEngineTest, IngestContinuesWhileSealIsInFlight) {
    stream_config cfg;
    cfg.shards = 4;
    cfg.batch_size = 4;      // many batches...
    cfg.queue_capacity = 1;  // ...through minimal queues: real backpressure
    stream_engine engine(cfg);
    constexpr unsigned kPerDay = 3000;
    for (unsigned i = 0; i < kPerDay; ++i) engine.push(0, nth(i % 500));
    // This push broadcasts the day-0 seal...
    engine.push(1, nth(0));
    // ...and without waiting for it we keep streaming day 1. The seal +
    // report build for day 0 is concurrently in flight on the roll
    // thread; these pushes must all be accepted meanwhile.
    for (unsigned i = 1; i < kPerDay; ++i) engine.push(1, nth(i % 500));
    const stream_stats mid = engine.stats();
    EXPECT_EQ(mid.records, 2 * kPerDay);
    EXPECT_EQ(mid.late_dropped, 0u);
    EXPECT_EQ(mid.open_day, 1);
    const auto report0 = engine.wait_for_report(0);
    ASSERT_TRUE(report0.has_value());
    EXPECT_EQ(report0->distinct_addresses, 500u);
    engine.finish();
    EXPECT_EQ(engine.stats().records, 2 * kPerDay);
    EXPECT_EQ(engine.sealed_day(), 1);
    EXPECT_EQ(engine.snapshot().distinct_addresses, 500u);
}

TEST(StreamEngineTest, ManyProducersOneEngine) {
    stream_config cfg = small_config(4);
    stream_engine engine(cfg);
    constexpr int kThreads = 4;
    constexpr unsigned kEach = 2000;
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t)
        producers.emplace_back([&engine, t] {
            for (unsigned i = 0; i < kEach; ++i)
                engine.push(3, nth(static_cast<unsigned>(t) * kEach + i));
        });
    for (auto& p : producers) p.join();
    engine.finish();
    const stream_stats stats = engine.stats();
    EXPECT_EQ(stats.records, static_cast<std::uint64_t>(kThreads) * kEach);
    EXPECT_EQ(stats.distinct_addresses, kThreads * kEach);
}

// ------------------------------------------------------------ metrics

// Every record offered to push() must land in exactly one of the
// accounting counters: accepted, late, or dropped-after-finish.
TEST(StreamMetricsTest, EveryPushedRecordIsAccountedExactlyOnce) {
    stream_engine engine(small_config(2));
    engine.push(10, nth(1));
    engine.push(10, nth(2));
    engine.push(11, nth(3));  // seals day 10
    engine.push(10, nth(4));  // late
    engine.push(9, nth(5));   // late
    engine.finish();
    engine.push(12, nth(6));  // dropped: engine already finished
    engine.push(12, nth(7));
    const stream_stats stats = engine.stats();
    EXPECT_EQ(stats.fed, 7u);
    EXPECT_EQ(stats.records, 3u);
    EXPECT_EQ(stats.late_dropped, 2u);
    EXPECT_EQ(stats.dropped, 2u);
    EXPECT_EQ(stats.fed, stats.records + stats.late_dropped + stats.dropped);
}

TEST(StreamMetricsTest, ConcurrentFeedKeepsTheAccountingInvariant) {
    stream_engine engine(small_config(4));
    constexpr int kThreads = 4;
    constexpr unsigned kEach = 3000;
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t)
        producers.emplace_back([&engine, t] {
            // Interleaved day advances make some records late by design.
            for (unsigned i = 0; i < kEach; ++i)
                engine.push(static_cast<int>(i / 1000) + (t % 2), nth(i % 300));
        });
    for (auto& p : producers) p.join();
    engine.finish();
    const stream_stats stats = engine.stats();
    EXPECT_EQ(stats.fed, static_cast<std::uint64_t>(kThreads) * kEach);
    EXPECT_EQ(stats.fed, stats.records + stats.late_dropped + stats.dropped);
}

// stream_stats is a thin view over the metrics registry: the same
// numbers must come out of an injected registry's exported text.
TEST(StreamMetricsTest, StatsAreAViewOverTheInjectedRegistry) {
    obs::registry reg;
    stream_config cfg = small_config(2);
    cfg.metrics_registry = &reg;
    stream_engine engine(cfg);
    engine.push(5, nth(1), 3);
    engine.push(5, nth(2));
    engine.push(6, nth(3));
    engine.push(4, nth(4));  // late
    engine.finish();
    const stream_stats stats = engine.stats();
    EXPECT_EQ(reg.get_counter("v6_stream_fed_total").value(), stats.fed);
    EXPECT_EQ(reg.get_counter("v6_stream_records_total").value(),
              stats.records);
    EXPECT_EQ(reg.get_counter("v6_stream_hits_total").value(), stats.hits);
    EXPECT_EQ(reg.get_counter("v6_stream_late_total").value(),
              stats.late_dropped);
    EXPECT_EQ(reg.get_gauge("v6_stream_sealed_day").value(),
              engine.sealed_day());
    EXPECT_EQ(
        reg.get_gauge("v6_stream_distinct_addresses").value(),
        static_cast<std::int64_t>(stats.distinct_addresses));

    const std::string text = reg.prometheus_text();
    EXPECT_NE(text.find("v6_stream_records_total 3"), std::string::npos);
    EXPECT_NE(text.find("v6_stream_queue_depth{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(text.find("v6_stream_seal_latency_seconds_count"),
              std::string::npos);
}

TEST(StreamMetricsTest, SealHistogramCountsOneSealPerDay) {
    obs::registry reg;
    stream_config cfg = small_config(2);
    cfg.metrics_registry = &reg;
    stream_engine engine(cfg);
    for (int day = 1; day <= 4; ++day) engine.push(day, nth(1));
    engine.finish();
    EXPECT_EQ(reg.get_counter("v6_stream_seals_total").value(), 4u);
    EXPECT_EQ(
        reg.get_histogram("v6_stream_seal_latency_seconds").count(), 4u);
    EXPECT_EQ(
        reg.get_histogram("v6_stream_report_build_seconds").count(), 4u);
}

// cfg.metrics=false keeps the core accounting exact while skipping the
// sampled per-shard series — the uninstrumented baseline the overhead
// bench compares against.
TEST(StreamMetricsTest, DisablingMetricsKeepsCountersButDropsSampledSeries) {
    obs::registry reg;
    stream_config cfg = small_config(2);
    cfg.metrics_registry = &reg;
    cfg.metrics = false;
    stream_engine engine(cfg);
    engine.push(1, nth(1));
    engine.push(2, nth(2));
    engine.finish();
    const stream_stats stats = engine.stats();
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.fed, 2u);
    const std::string text = reg.prometheus_text();
    EXPECT_NE(text.find("v6_stream_records_total 2"), std::string::npos);
    EXPECT_EQ(text.find("v6_stream_queue_depth"), std::string::npos);
    EXPECT_EQ(text.find("v6_stream_seal_latency_seconds"), std::string::npos);
}

// Engines without an injected registry must not collide: each gets a
// private one, so parallel engines (and tests) stay independent.
TEST(StreamMetricsTest, PrivateRegistriesAreIndependent) {
    stream_engine a(small_config(1));
    stream_engine b(small_config(1));
    a.push(1, nth(1));
    a.push(1, nth(2));
    b.push(1, nth(3));
    a.finish();
    b.finish();
    EXPECT_EQ(a.stats().records, 2u);
    EXPECT_EQ(b.stats().records, 1u);
    EXPECT_EQ(a.metrics().get_counter("v6_stream_records_total").value(), 2u);
    EXPECT_EQ(b.metrics().get_counter("v6_stream_records_total").value(), 1u);
}

// ------------------------------------------------------------ live series

/// A config whose daily report classifies the sealed day itself
/// (window_fwd = 0), so the live series react to a day the moment it
/// seals — what the drift tests need.
stream_config live_config(unsigned shards) {
    stream_config cfg = small_config(shards);
    cfg.stability_n = 1;
    cfg.window.window_back = 1;
    cfg.window.window_fwd = 0;
    cfg.quantile_sample = 1;  // observe every hit count; exact quantiles
    return cfg;
}

const live_series_view* find_series(const live_view& view,
                                    const std::string& name) {
    for (const live_series_view& s : view.series)
        if (s.name == name) return &s;
    return nullptr;
}

TEST(StreamLiveTest, SeriesGainOnePointPerSealedDay) {
    stream_engine engine(live_config(2));
    for (int day = 1; day <= 4; ++day)
        for (unsigned i = 0; i < 40; ++i) engine.push(day, nth(i), 1 + i % 5);
    engine.finish();
    const live_view view = engine.live();
    EXPECT_EQ(view.epoch, 4);
    const live_series_view* active = find_series(view, "active");
    ASSERT_NE(active, nullptr);
    EXPECT_EQ(active->history.size(), 4u);  // one point per sealed day
    EXPECT_EQ(active->current, 40.0);
    const live_series_view* stable = find_series(view, "stable_fraction");
    ASSERT_NE(stable, nullptr);
    EXPECT_GE(stable->current, 0.0);
    EXPECT_LE(stable->current, 1.0);
    const live_series_view* gamma1 = find_series(view, "gamma1@64");
    ASSERT_NE(gamma1, nullptr);
    EXPECT_GE(gamma1->current, 1.0);  // count ratios never shrink downward
    const live_series_view* p50 = find_series(view, "hits_p50");
    ASSERT_NE(p50, nullptr);
    EXPECT_GE(p50->current, 1.0);
    EXPECT_LE(p50->current, 5.0);
}

TEST(StreamLiveTest, SketchEstimatesTrackTheSealedDay) {
    stream_engine engine(live_config(3));
    for (int day = 1; day <= 3; ++day)
        for (unsigned i = 0; i < 200; ++i) engine.push(day, nth(i));
    engine.finish();
    const live_view view = engine.live();
    const live_series_view* est = find_series(view, "day_addrs_est");
    ASSERT_NE(est, nullptr);
    // 200 distinct /128s per day; at this range the HLL's
    // linear-counting regime is essentially exact.
    EXPECT_NEAR(est->current, 200.0, 10.0);
    const live_series_view* est64 = find_series(view, "day_64s_est");
    ASSERT_NE(est64, nullptr);
    EXPECT_NEAR(est64->current, 7.0, 1.0);  // nth() spans 7 /64s
}

TEST(StreamLiveTest, SketchesOffSkipsEstimateSeries) {
    stream_config cfg = live_config(2);
    cfg.sketches = false;
    stream_engine engine(cfg);
    engine.push(1, nth(1));
    engine.push(2, nth(2));
    engine.finish();
    const live_view view = engine.live();
    EXPECT_EQ(find_series(view, "day_addrs_est"), nullptr);
    ASSERT_NE(find_series(view, "active"), nullptr);  // derived series stay
    EXPECT_EQ(engine.stats().records, 2u);
}

TEST(StreamLiveTest, StepChangeRaisesOneDriftEventPerSeries) {
    obs::registry reg;
    obs::event_log events;
    stream_config cfg = live_config(2);
    cfg.metrics_registry = &reg;
    cfg.events = &events;
    stream_engine engine(cfg);
    // Twelve steady days of the same 50 addresses, then an addressing
    // change: 400 active addresses from day 13 on.
    for (int day = 1; day <= 12; ++day)
        for (unsigned i = 0; i < 50; ++i) engine.push(day, nth(i));
    for (int day = 13; day <= 18; ++day)
        for (unsigned i = 0; i < 400; ++i) engine.push(day, nth(i));
    engine.finish();

    EXPECT_GE(events.total(), 1u);
    EXPECT_GE(reg.get_counter("v6class_drift_events_total").value(), 1u);
    // The "active" series stepped 50 -> 400 once; fire-once
    // re-baselining means exactly one alarm despite six post-step days.
    std::size_t active_alarms = 0;
    for (const obs::event& e : events.recent(1000)) {
        EXPECT_EQ(e.kind, "drift");
        EXPECT_EQ(e.level, obs::event_level::warn);
        for (const auto& [k, v] : e.fields)
            if (k == "series" && v == "\"active\"") ++active_alarms;
    }
    EXPECT_EQ(active_alarms, 1u);
    // The alarm flag is visible on the live view while it is fresh, and
    // the gauge export carries the new level.
    EXPECT_EQ(reg.get_dgauge("v6class_active_addresses").value(), 400.0);
}

TEST(StreamLiveTest, SteadyFeedRaisesNoDriftEvents) {
    obs::event_log events;
    stream_config cfg = live_config(2);
    cfg.events = &events;
    stream_engine engine(cfg);
    for (int day = 1; day <= 20; ++day)
        for (unsigned i = 0; i < 60; ++i) engine.push(day, nth(i));
    engine.finish();
    EXPECT_EQ(events.total(), 0u);
}

TEST(StreamLiveTest, DayReportCarriesDerivedSeries) {
    stream_engine engine(live_config(2));
    for (int day = 1; day <= 2; ++day)
        for (unsigned i = 0; i < 100; ++i) engine.push(day, nth(i));
    engine.finish();
    const auto report = engine.latest_report();
    ASSERT_TRUE(report.has_value());
    EXPECT_GE(report->gamma1, 1.0);
    EXPECT_GE(report->gamma16, 1.0);
    EXPECT_GE(report->stable_fraction, 0.0);
    EXPECT_LE(report->stable_fraction, 1.0);
    EXPECT_NEAR(report->est_day_addresses, 100.0, 5.0);
}

// ------------------------------------------------ seal/tick lock order

// The daemon shape from tools/v6stream: the roll thread evaluates the
// alert rules at every seal, while a wall-clock tick thread evaluates
// them too, sampling from a live_view snapshot captured *before*
// evaluate(). Under TSan this pins the required lock order — a sampler
// that called engine.live() from inside evaluate() (under the alert
// mutex) would invert against the seal path and deadlock a concurrent
// seal and tick.
TEST(StreamAlertTest, ConcurrentSealAndTickEvaluationsDoNotDeadlock) {
    obs::registry reg;
    obs::event_log log;
    obs::alert_engine alerts(&reg, &log);
    auto rules = obs::parse_alert_rules(
        "low_active series=v6class_active_addresses below=1000000\n");
    ASSERT_TRUE(rules.has_value());
    alerts.load_rules(std::move(*rules));

    stream_config cfg = live_config(2);
    cfg.metrics_registry = &reg;
    cfg.events = &log;
    cfg.alerts = &alerts;
    stream_engine engine(cfg);

    std::atomic<bool> stop{false};
    std::thread ticker([&] {
        std::int64_t ts = 1'000'000;
        while (!stop.load(std::memory_order_relaxed)) {
            const live_view lv = engine.live(0);  // snapshot first...
            alerts.evaluate(                      // ...alert mutex second
                [&lv](const std::string& series, const std::string& label)
                    -> std::optional<double> {
                    for (const live_series_view& v : lv.series)
                        if (v.metric == series && v.label == label &&
                            !v.history.empty())
                            return v.current;
                    return std::nullopt;
                },
                ts++);
        }
    });
    constexpr int kDays = 20;
    for (int day = 0; day < kDays; ++day)
        for (unsigned i = 0; i < 200; ++i) engine.push(day, nth(i));
    engine.finish();  // seals every day: kDays seal-path evaluations
    stop.store(true);
    ticker.join();
    EXPECT_GE(alerts.evaluations(), static_cast<std::uint64_t>(kDays));
    // 200 active addresses < 1e6: firing since the first seal, and no
    // tick evaluation may have flapped it (a missing sample freezes).
    EXPECT_EQ(alerts.firing_count(), 1u);
}

}  // namespace
}  // namespace v6
