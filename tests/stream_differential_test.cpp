// Batch-vs-stream differential: replaying a >=100k-record feed through
// the streaming engine must reproduce the batch pipeline's answers
// *exactly* — same stability split, same lifetime spectrum, same Table-3
// density rows, same distinct set, same MRA counts — for any shard
// count (including the unsharded engine).
#include <gtest/gtest.h>

#include <algorithm>

#include "v6class/netgen/rng.h"
#include "v6class/spatial/density.h"
#include "v6class/spatial/mra.h"
#include "v6class/stream/engine.h"
#include "v6class/temporal/observation_store.h"
#include "v6class/temporal/stability.h"

namespace v6 {
namespace {

constexpr int kFirstDay = 100;
constexpr int kLastDay = 114;              // 15 days
constexpr unsigned kRecordsPerDay = 7000;  // 105k records total
constexpr std::uint64_t kSeed = 20150317;

const std::vector<std::pair<std::uint64_t, unsigned>> kClasses = {
    {2, 112}, {8, 64}, {2, 48}};

// A pool with real spatial structure: 64 /64 networks, 16 /112 blocks
// each, so the density classes and MRA ratios have something to find.
std::vector<address> make_pool() {
    std::vector<address> pool;
    pool.reserve(10000);
    for (unsigned i = 0; i < 10000; ++i) {
        const std::uint64_t high = 0x20010db800000000ull + (i % 64);
        const std::uint64_t low =
            (static_cast<std::uint64_t>(i % 16) << 16) | (mix64(i) & 0xffffu);
        pool.push_back(address::from_pair(high, low));
    }
    return pool;
}

// The replayed feed: duplicates, varying hit counts, random in-day order.
std::vector<stream_record> make_feed() {
    const std::vector<address> pool = make_pool();
    std::vector<stream_record> feed;
    feed.reserve((kLastDay - kFirstDay + 1) * kRecordsPerDay);
    rng r{kSeed};
    for (int day = kFirstDay; day <= kLastDay; ++day)
        for (unsigned i = 0; i < kRecordsPerDay; ++i)
            feed.push_back({day, pool[r.uniform(pool.size())], 1 + r.uniform(5)});
    return feed;
}

// The reference pipeline: the batch substrate fed whole days at a time.
struct batch_state {
    daily_series series;
    observation_store store128{128};
    observation_store store64{64};
    radix_tree tree;
    std::vector<address> distinct;

    explicit batch_state(const std::vector<stream_record>& feed) {
        std::vector<address> all;
        for (int day = kFirstDay; day <= kLastDay; ++day) {
            std::vector<address> active;
            for (const stream_record& rec : feed)
                if (rec.day == day) active.push_back(rec.addr);
            series.set_day(day, active);
            store128.record_day(day, active);
            store64.record_day(day, active);
            all.insert(all.end(), active.begin(), active.end());
        }
        std::sort(all.begin(), all.end());
        all.erase(std::unique(all.begin(), all.end()), all.end());
        distinct = std::move(all);
        for (const address& a : distinct) tree.add(a);
    }
};

class StreamDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(StreamDifferential, StreamReproducesBatchExactly) {
    const std::vector<stream_record> feed = make_feed();
    ASSERT_GE(feed.size(), 100000u);
    const batch_state batch(feed);

    stream_config cfg;
    cfg.shards = GetParam();
    cfg.density_classes = kClasses;
    stream_engine engine(cfg);
    for (const stream_record& rec : feed) engine.push(rec);
    engine.finish();

    // Feed accounting: everything was in day order, nothing dropped.
    const stream_stats stats = engine.stats();
    EXPECT_EQ(stats.records, feed.size());
    EXPECT_EQ(stats.late_dropped, 0u);
    EXPECT_EQ(engine.sealed_day(), kLastDay);

    // Distinct sets, at /128 and projected /64.
    EXPECT_EQ(stats.distinct_addresses, batch.store128.distinct_count());
    EXPECT_EQ(stats.distinct_projected, batch.store64.distinct_count());
    EXPECT_EQ(engine.distinct_addresses(), batch.distinct);

    // Windowed stability splits: byte-identical address vectors.
    const stability_analyzer an(batch.series);
    for (const int ref : {kFirstDay + 7, kFirstDay + 10})
        for (const unsigned n : {1u, 3u, 7u}) {
            const stability_split want = an.classify_day(ref, n);
            const stability_split got = engine.classify_day(ref, n);
            EXPECT_EQ(got.stable, want.stable) << "ref=" << ref << " n=" << n;
            EXPECT_EQ(got.not_stable, want.not_stable)
                << "ref=" << ref << " n=" << n;
        }

    // Lifetime spectrum.
    EXPECT_EQ(engine.stability_spectrum(14), batch.store128.stability_spectrum(14));

    // Table-3 density rows, every field.
    const std::vector<density_row> want_rows =
        compute_density_table(batch.tree, kClasses);
    const std::vector<density_row> got_rows = engine.density_table(kClasses);
    ASSERT_EQ(got_rows.size(), want_rows.size());
    for (std::size_t i = 0; i < want_rows.size(); ++i) {
        EXPECT_EQ(got_rows[i].n, want_rows[i].n);
        EXPECT_EQ(got_rows[i].p, want_rows[i].p);
        EXPECT_EQ(got_rows[i].dense_prefix_count, want_rows[i].dense_prefix_count);
        EXPECT_EQ(got_rows[i].covered_addresses, want_rows[i].covered_addresses);
        EXPECT_EQ(got_rows[i].possible_addresses, want_rows[i].possible_addresses);
        EXPECT_EQ(got_rows[i].address_density, want_rows[i].address_density);
    }

    // MRA aggregate counts at every prefix length.
    const mra_series want_mra = compute_mra_sorted(batch.distinct);
    const mra_series got_mra = engine.mra();
    for (unsigned p = 0; p <= 128; ++p)
        EXPECT_EQ(got_mra.aggregate_count(p), want_mra.aggregate_count(p)) << p;

    // The day reports produced along the way agree with batch counts.
    const auto reports = engine.reports();
    ASSERT_EQ(reports.size(),
              static_cast<std::size_t>(kLastDay - kFirstDay + 1));
    for (const day_report& rep : reports) {
        EXPECT_EQ(rep.ref_day, rep.day - cfg.window.window_fwd);
        const stability_split want = an.classify_day(rep.ref_day, cfg.stability_n);
        EXPECT_EQ(rep.stable, want.stable.size()) << "day=" << rep.day;
        EXPECT_EQ(rep.not_stable, want.not_stable.size()) << "day=" << rep.day;
        EXPECT_EQ(rep.active, want.stable.size() + want.not_stable.size());
    }

    // And the final snapshot is the whole-feed summary.
    const stream_snapshot snap = engine.snapshot();
    EXPECT_EQ(snap.epoch, kLastDay);
    EXPECT_EQ(snap.distinct_addresses, batch.distinct.size());
    EXPECT_EQ(snap.spectrum, batch.store128.stability_spectrum(cfg.spectrum_max));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, StreamDifferential,
                         ::testing::Values(1u, 2u, 5u));

}  // namespace
}  // namespace v6
