// Tests for the router topology, probe simulation, and target selection.
#include <gtest/gtest.h>

#include <algorithm>

#include "v6class/routersim/targets.h"
#include "v6class/routersim/topology.h"
#include "v6class/spatial/density.h"
#include "v6class/temporal/stability.h"

namespace v6 {
namespace {

world_config tiny_world() {
    world_config cfg;
    cfg.scale = 0.05;
    cfg.tail_isps = 8;
    return cfg;
}

class RoutersimTest : public ::testing::Test {
protected:
    RoutersimTest() : w_(tiny_world()), topo_(w_) {}
    world w_;
    router_topology topo_;
};

TEST_F(RoutersimTest, InterfacesAreSortedUnique) {
    const auto& ifaces = topo_.interfaces();
    ASSERT_GT(ifaces.size(), 100u);
    for (std::size_t i = 1; i < ifaces.size(); ++i)
        EXPECT_LT(ifaces[i - 1], ifaces[i]);
}

TEST_F(RoutersimTest, InfrastructureIsDenselyNumbered) {
    // Loopback and p2p numbering yields 2@/112-dense prefixes, the
    // premise of Table 3.
    radix_tree t;
    for (const address& a : topo_.interfaces()) t.add(a);
    const auto dense = t.dense_prefixes_at(2, 112);
    EXPECT_GT(dense.size(), 10u);
    // And most router addresses live inside dense blocks.
    std::uint64_t covered = 0;
    for (const auto& d : dense) covered += d.observed;
    EXPECT_GT(static_cast<double>(covered) / topo_.interfaces().size(), 0.8);
}

TEST_F(RoutersimTest, TraceStopsInTransitForUnroutedTargets) {
    const auto hops =
        topo_.trace(address::must_parse("3fff::1"), {});
    EXPECT_EQ(hops.size(), 2u);  // CDN side + transit only
}

TEST_F(RoutersimTest, TraceReachesEdgeOnlyWhenTargetIsLive) {
    const auto clients = w_.active_addresses(10);
    ASSERT_FALSE(clients.empty());
    const address target = clients[clients.size() / 2];
    const auto with_live = topo_.trace(target, clients);
    const auto without = topo_.trace(target, {});
    EXPECT_EQ(with_live.size(), without.size() + 1);
    // All reported hops are real router interfaces.
    for (const address& hop : with_live)
        EXPECT_TRUE(std::binary_search(topo_.interfaces().begin(),
                                       topo_.interfaces().end(), hop))
            << hop.to_string();
}

TEST_F(RoutersimTest, CampaignReturnsSortedUniqueSubset) {
    const auto clients = w_.active_addresses(10);
    const auto targets = sample_addresses(clients, 500, 1);
    const auto found = topo_.probe_campaign(targets, clients);
    ASSERT_FALSE(found.empty());
    for (std::size_t i = 1; i < found.size(); ++i)
        EXPECT_LT(found[i - 1], found[i]);
    EXPECT_LE(found.size(), topo_.interfaces().size());
}

TEST_F(RoutersimTest, StableTargetsDiscoverMoreRouters) {
    // The Section 6.1.1 experiment in miniature: 3d-stable targets beat
    // the IPv4-style baseline.
    const daily_series series = w_.series(3, 17);
    stability_analyzer an(series);
    const auto split = an.classify_day(10, 3);
    ASSERT_GT(split.stable.size(), 50u);

    // Probes run a few days after target selection: the live set is the
    // probe day's active addresses.
    const std::vector<address>& live = series.day(14);

    const std::size_t budget = 400;
    const auto baseline = ipv4_style_targets(topo_.resolver_addresses(),
                                             series.day(10), budget, 42);
    const auto informed = stable_informed_targets(split.stable, budget, 42);
    const auto base_found = topo_.probe_campaign(baseline, live);
    const auto informed_found = topo_.probe_campaign(informed, live);
    EXPECT_GT(informed_found.size(), base_found.size());
}

TEST(TargetsTest, SampleWithoutReplacement) {
    std::vector<address> from;
    for (unsigned i = 0; i < 100; ++i)
        from.push_back(address::from_pair(0x2001, i));
    auto sample = sample_addresses(from, 30, 7);
    EXPECT_EQ(sample.size(), 30u);
    std::sort(sample.begin(), sample.end());
    EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
    // Requesting more than available returns everything.
    EXPECT_EQ(sample_addresses(from, 1000, 7).size(), 100u);
}

TEST(TargetsTest, SamplingIsDeterministicInSeed) {
    std::vector<address> from;
    for (unsigned i = 0; i < 1000; ++i)
        from.push_back(address::from_pair(0x2001, i));
    EXPECT_EQ(sample_addresses(from, 50, 9), sample_addresses(from, 50, 9));
    EXPECT_NE(sample_addresses(from, 50, 9), sample_addresses(from, 50, 10));
}

}  // namespace
}  // namespace v6
