// Unit and property tests for the Patricia trie, the densify operations,
// and the aguri aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "v6class/netgen/rng.h"
#include "v6class/trie/radix_tree.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(RadixTreeTest, EmptyTree) {
    radix_tree t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.total(), 0u);
    EXPECT_EQ(t.node_count(), 0u);
    EXPECT_EQ(t.subtree_count("::/0"_pfx), 0u);
    EXPECT_FALSE(t.longest_match("::1"_v6).has_value());
    EXPECT_TRUE(t.dense_prefixes_at(1, 64).empty());
    EXPECT_TRUE(t.densify(1, 64).empty());
}

TEST(RadixTreeTest, SingleAddress) {
    radix_tree t;
    t.add("2001:db8::1"_v6);
    EXPECT_EQ(t.total(), 1u);
    EXPECT_EQ(t.node_count(), 1u);
    EXPECT_EQ(t.count_at("2001:db8::1/128"_pfx), 1u);
    EXPECT_EQ(t.subtree_count("2001:db8::/32"_pfx), 1u);
    EXPECT_EQ(t.subtree_count("2001:db9::/32"_pfx), 0u);
}

TEST(RadixTreeTest, DuplicateAddsAccumulate) {
    radix_tree t;
    t.add("2001:db8::1"_v6, 3);
    t.add("2001:db8::1"_v6, 2);
    EXPECT_EQ(t.total(), 5u);
    EXPECT_EQ(t.node_count(), 1u);
    EXPECT_EQ(t.count_at("2001:db8::1/128"_pfx), 5u);
}

TEST(RadixTreeTest, SplitCreatesBranch) {
    radix_tree t;
    t.add("2001:db8::1"_v6);
    t.add("2001:db8::2"_v6);
    // Two leaves plus the branch at their divergence (/126).
    EXPECT_EQ(t.node_count(), 3u);
    EXPECT_EQ(t.subtree_count("2001:db8::/126"_pfx), 2u);
    EXPECT_EQ(t.count_at("2001:db8::/126"_pfx), 0u);  // branch owns nothing
}

TEST(RadixTreeTest, PrefixCoversExistingNode) {
    radix_tree t;
    t.add("2001:db8:1::/48"_pfx, 4);
    t.add("2001:db8::/32"_pfx, 1);
    EXPECT_EQ(t.count_at("2001:db8::/32"_pfx), 1u);
    EXPECT_EQ(t.count_at("2001:db8:1::/48"_pfx), 4u);
    EXPECT_EQ(t.subtree_count("2001:db8::/32"_pfx), 5u);
}

TEST(RadixTreeTest, SubtreeCountAtImplicitPrefix) {
    radix_tree t;
    t.add("2001:db8::1"_v6);
    t.add("2001:db8::2"_v6);
    t.add("2001:db9::1"_v6);
    // /64 is not a node (the branch is at /31... /126), yet the query
    // must resolve through the compressed edges.
    EXPECT_EQ(t.subtree_count("2001:db8::/64"_pfx), 2u);
    EXPECT_EQ(t.subtree_count("2001:db9::/64"_pfx), 1u);
    EXPECT_EQ(t.subtree_count("::/0"_pfx), 3u);
}

TEST(RadixTreeTest, LongestMatch) {
    radix_tree t;
    t.add("2001:db8::/32"_pfx, 1);
    t.add("2001:db8:1::/48"_pfx, 1);
    const auto m = t.longest_match("2001:db8:1::42"_v6);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, "2001:db8:1::/48"_pfx);
    const auto shallow = t.longest_match("2001:db8:2::42"_v6);
    ASSERT_TRUE(shallow.has_value());
    EXPECT_EQ(*shallow, "2001:db8::/32"_pfx);
    EXPECT_FALSE(t.longest_match("2002::1"_v6).has_value());
}

TEST(RadixTreeTest, VisitInAddressOrder) {
    radix_tree t;
    t.add("2001:db8::2"_v6);
    t.add("2001:db8::1"_v6);
    t.add("2001:db8::/32"_pfx, 1);
    std::vector<prefix> seen;
    t.visit([&](const prefix& p, std::uint64_t) { seen.push_back(p); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], "2001:db8::/32"_pfx);
    EXPECT_EQ(seen[1], "2001:db8::1/128"_pfx);
    EXPECT_EQ(seen[2], "2001:db8::2/128"_pfx);
}

TEST(RadixTreeTest, ClearResets) {
    radix_tree t;
    t.add("2001:db8::1"_v6);
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.total(), 0u);
    EXPECT_EQ(t.node_count(), 0u);
}

// ------------------------------------------------------------- densify

TEST(DenseAtTest, PaperExample) {
    // Section 5.2.2: with 2001:db8::1 and 2001:db8::4 active,
    // 2001:db8::/112 is the sole 2@/112-dense prefix; there is one
    // 2@/125-dense prefix but no 2@/126-dense prefix.
    radix_tree t;
    t.add("2001:db8::1"_v6);
    t.add("2001:db8::4"_v6);
    const auto at112 = t.dense_prefixes_at(2, 112);
    ASSERT_EQ(at112.size(), 1u);
    EXPECT_EQ(at112[0].pfx, "2001:db8::/112"_pfx);
    EXPECT_EQ(at112[0].observed, 2u);
    EXPECT_EQ(t.dense_prefixes_at(2, 125).size(), 1u);
    EXPECT_TRUE(t.dense_prefixes_at(2, 126).empty());
}

TEST(DenseAtTest, ResultsInAddressOrder) {
    radix_tree t;
    t.add("2001:db8:2::1"_v6);
    t.add("2001:db8:2::2"_v6);
    t.add("2001:db8:1::1"_v6);
    t.add("2001:db8:1::9"_v6);
    const auto dense = t.dense_prefixes_at(2, 112);
    ASSERT_EQ(dense.size(), 2u);
    EXPECT_LT(dense[0].pfx, dense[1].pfx);
}

TEST(DenseAtTest, CountsBelowThresholdExcluded) {
    radix_tree t;
    t.add("2001:db8::1"_v6);
    t.add("2001:db8::2"_v6);
    t.add("2001:db9::1"_v6);
    const auto dense = t.dense_prefixes_at(2, 64);
    ASSERT_EQ(dense.size(), 1u);
    EXPECT_EQ(dense[0].pfx, "2001:db8::/64"_pfx);
}

TEST(DensifyTest, FindsLeastSpecificDensePrefix) {
    // 4 addresses in one /112: with n=2,p=112 the density is 2/2^16, so
    // the /111 covering all four (4 >= 2 * 2^(112-111)) is dense too;
    // densify must report the least-specific qualifying prefix.
    radix_tree t;
    t.add("2001:db8::1"_v6);
    t.add("2001:db8::2"_v6);
    t.add("2001:db8::1:1"_v6);  // second /112 of the same /111
    t.add("2001:db8::1:2"_v6);
    const auto dense = t.densify(2, 112);
    ASSERT_EQ(dense.size(), 1u);
    EXPECT_EQ(dense[0].pfx, "2001:db8::/111"_pfx);
    EXPECT_EQ(dense[0].observed, 4u);
}

TEST(DensifyTest, SingleAddressesAreNotDense) {
    radix_tree t;
    t.add("2001:db8::1"_v6);
    t.add("2001:db9::1"_v6);
    EXPECT_TRUE(t.densify(2, 112).empty());
}

TEST(DensifyTest, ReportedPrefixesAreNonOverlapping) {
    radix_tree t;
    for (int i = 1; i <= 8; ++i)
        t.add(address::from_pair(0x20010db800000000ull, static_cast<unsigned>(i)));
    for (int i = 1; i <= 4; ++i)
        t.add(address::from_pair(0x20010db900000000ull, static_cast<unsigned>(i * 7)));
    const auto dense = t.densify(2, 112);
    for (std::size_t i = 0; i < dense.size(); ++i)
        for (std::size_t j = i + 1; j < dense.size(); ++j) {
            EXPECT_FALSE(dense[i].pfx.contains(dense[j].pfx));
            EXPECT_FALSE(dense[j].pfx.contains(dense[i].pfx));
        }
}

TEST(DensifyTest, EveryReportMeetsItsDensity) {
    rng r{99};
    radix_tree t;
    for (int i = 0; i < 4000; ++i) {
        // Clustered low bits to create dense pockets.
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(4);
        const std::uint64_t lo = r.uniform(1 << 12);
        t.add(address::from_pair(hi, lo));
    }
    const std::uint64_t n = 4;
    const unsigned p = 120;
    for (const dense_prefix& d : t.densify(n, p)) {
        EXPECT_GE(d.observed, n);
        EXPECT_LE(d.pfx.length(), 127u);
        // density: observed >= n * 2^(p - q)
        const int exp = static_cast<int>(p) - static_cast<int>(d.pfx.length());
        const double required =
            static_cast<double>(n) * std::ldexp(1.0, exp);
        EXPECT_GE(static_cast<double>(d.observed), required)
            << d.pfx.to_string();
        EXPECT_EQ(t.subtree_count(d.pfx), d.observed);
    }
}

// Property: the trie's exact-length dense query agrees with the paper's
// footnote-3 sort|cut|uniq recipe, across random address sets and
// parameters.
struct dense_param {
    std::uint64_t seed;
    std::uint64_t min_count;
    unsigned p;
};

class DenseCrossCheck : public ::testing::TestWithParam<dense_param> {};

TEST_P(DenseCrossCheck, TrieMatchesSortRecipe) {
    const auto [seed, min_count, p] = GetParam();
    rng r{seed};
    std::vector<address> addrs;
    radix_tree t;
    for (int i = 0; i < 3000; ++i) {
        // A mix of clustered and scattered addresses.
        std::uint64_t hi = 0x20010db800000000ull | (r.uniform(8) << 16);
        std::uint64_t lo = r.chance(0.7) ? r.uniform(1 << 10) : r();
        const address a = address::from_pair(hi, lo);
        addrs.push_back(a);
        t.add(a);
    }
    const auto from_trie = t.dense_prefixes_at(min_count, p);
    const auto from_sort = dense_prefixes_by_sort(addrs, min_count, p);
    ASSERT_EQ(from_trie.size(), from_sort.size());
    for (std::size_t i = 0; i < from_trie.size(); ++i) {
        EXPECT_EQ(from_trie[i].pfx, from_sort[i].pfx);
        EXPECT_EQ(from_trie[i].observed, from_sort[i].observed);
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSets, DenseCrossCheck,
    ::testing::Values(dense_param{1, 2, 112}, dense_param{2, 2, 120},
                      dense_param{3, 4, 112}, dense_param{4, 8, 104},
                      dense_param{5, 2, 124}, dense_param{6, 3, 116},
                      dense_param{7, 16, 96}, dense_param{8, 2, 128},
                      dense_param{9, 2, 64}, dense_param{10, 5, 80}));

// ------------------------------------------------------- aguri behaviour

TEST(AggregateByShareTest, TotalIsPreserved) {
    radix_tree t;
    rng r{5};
    for (int i = 0; i < 1000; ++i)
        t.add(address::from_pair(0x20010db800000000ull | r.uniform(256), r()), 1);
    const std::uint64_t before = t.total();
    t.aggregate_by_share(0.05);
    EXPECT_EQ(t.total(), before);
    EXPECT_EQ(t.subtree_count("::/0"_pfx), before);
}

TEST(AggregateByShareTest, SurvivorsMeetThreshold) {
    radix_tree t;
    rng r{6};
    for (int i = 0; i < 2000; ++i)
        t.add(address::from_pair(0x20010db800000000ull | r.uniform(16), r()));
    t.aggregate_by_share(0.02);
    const auto threshold =
        static_cast<std::uint64_t>(std::ceil(0.02 * 2000));
    t.visit([&](const prefix& p, std::uint64_t count) {
        if (p.length() > 0) {  // the root absorbs the remainder
            EXPECT_GE(count, threshold) << p.to_string();
        }
    });
}

TEST(AggregateByShareTest, ReducesNodeCount) {
    radix_tree t;
    rng r{7};
    for (int i = 0; i < 5000; ++i)
        t.add(address::from_pair(0x20010db800000000ull, r()));
    const std::size_t before = t.node_count();
    t.aggregate_by_share(0.01);
    EXPECT_LT(t.node_count(), before / 10);
}

TEST(VisitSplitsTest, CountsMatchMraExpectation) {
    radix_tree t;
    t.add("2001:db8::1"_v6);
    t.add("2001:db8::2"_v6);
    t.add("2001:db9::1"_v6);
    std::map<unsigned, unsigned> splits;
    t.visit_splits([&](unsigned len) { ++splits[len]; });
    // Splits at /31 (db8 vs db9) and /126 (::1 vs ::2).
    ASSERT_EQ(splits.size(), 2u);
    EXPECT_EQ(splits[31], 1u);
    EXPECT_EQ(splits[126], 1u);
}

}  // namespace
}  // namespace v6
