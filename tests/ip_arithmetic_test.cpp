// Tests for 128-bit address arithmetic and ranges.
#include <gtest/gtest.h>

#include <algorithm>

#include "v6class/ip/arithmetic.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(AddressAddTest, SimpleOffsets) {
    EXPECT_EQ(address_add("2001:db8::"_v6, 0), "2001:db8::"_v6);
    EXPECT_EQ(address_add("2001:db8::"_v6, 1), "2001:db8::1"_v6);
    EXPECT_EQ(address_add("2001:db8::"_v6, 0x10000), "2001:db8::1:0"_v6);
    EXPECT_EQ(address_add("2001:db8::ff"_v6, 1), "2001:db8::100"_v6);
}

TEST(AddressAddTest, CarryAcrossLowHalf) {
    // Adding 1 to ...ffff:ffff:ffff:ffff carries into the network half.
    const address a = "2001:db8:0:0:ffff:ffff:ffff:ffff"_v6;
    EXPECT_EQ(address_add(a, 1), "2001:db8:0:1::"_v6);
}

TEST(AddressAddTest, WrapsAtTop) {
    const address top = "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"_v6;
    EXPECT_EQ(address_add(top, 1), "::"_v6);
}

TEST(AddressNextTest, Increment) {
    EXPECT_EQ(address_next("::"_v6), "::1"_v6);
    EXPECT_EQ(address_next("2001:db8::ffff"_v6), "2001:db8::1:0"_v6);
}

TEST(AddressDistanceTest, WithinLowHalf) {
    EXPECT_EQ(address_distance("2001:db8::1"_v6, "2001:db8::10"_v6),
              std::optional<std::uint64_t>{0xfu});
    EXPECT_EQ(address_distance("2001:db8::1"_v6, "2001:db8::1"_v6),
              std::optional<std::uint64_t>{0u});
}

TEST(AddressDistanceTest, BackwardsIsNull) {
    EXPECT_FALSE(address_distance("2001:db8::10"_v6, "2001:db8::1"_v6).has_value());
}

TEST(AddressDistanceTest, AcrossHighHalfBoundary) {
    const address a = "2001:db8:0:0:ffff:ffff:ffff:fffe"_v6;
    const address b = "2001:db8:0:1::3"_v6;
    EXPECT_EQ(address_distance(a, b), std::optional<std::uint64_t>{5u});
}

TEST(AddressDistanceTest, TooFarIsNull) {
    EXPECT_FALSE(address_distance("2001:db8::"_v6, "2001:db9::"_v6).has_value());
    EXPECT_FALSE(
        address_distance("2001:db8::"_v6, "2001:db8:0:2::"_v6).has_value());
}

TEST(AddressDistanceTest, InverseOfAdd) {
    const address base = "2a00:1:2:3:4:5:6:7"_v6;
    for (std::uint64_t off : {0ull, 1ull, 255ull, 65536ull, 1ull << 40}) {
        const address moved = address_add(base, off);
        EXPECT_EQ(address_distance(base, moved), std::optional{off});
    }
}

TEST(AddressRangeTest, IterationCoversPrefix) {
    const address_range range(prefix::must_parse("2001:db8::/124"));
    EXPECT_EQ(range.size(), 16u);
    EXPECT_FALSE(range.clamped());
    std::vector<address> seen(range.begin(), range.end());
    ASSERT_EQ(seen.size(), 16u);
    EXPECT_EQ(seen.front(), "2001:db8::"_v6);
    EXPECT_EQ(seen.back(), "2001:db8::f"_v6);
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(AddressRangeTest, ExplicitStartAndCount) {
    const address_range range("2001:db8::fe"_v6, 4);
    std::vector<address> seen(range.begin(), range.end());
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen[1], "2001:db8::ff"_v6);
    EXPECT_EQ(seen[2], "2001:db8::100"_v6);
}

TEST(AddressRangeTest, EmptyRange) {
    const address_range range;
    EXPECT_TRUE(range.empty());
    EXPECT_EQ(range.begin(), range.end());
}

TEST(AddressRangeTest, WidePrefixesAreClamped) {
    const address_range r64(prefix::must_parse("2001:db8::/64"));
    EXPECT_TRUE(r64.clamped());
    const address_range r32(prefix::must_parse("2001:db8::/32"));
    EXPECT_TRUE(r32.clamped());
    const address_range r65(prefix::must_parse("2001:db8::/65"));
    EXPECT_FALSE(r65.clamped());
    EXPECT_EQ(r65.size(), std::uint64_t{1} << 63);
}

}  // namespace
}  // namespace v6
