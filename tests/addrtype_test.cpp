// Unit tests for the content-based address classifier.
#include <gtest/gtest.h>

#include "v6class/addrtype/classify.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(ClassifyTest, TeredoDetection) {
    EXPECT_TRUE(is_teredo("2001::1"_v6));
    EXPECT_TRUE(is_teredo("2001:0:4136:e378:8000:63bf:3fff:fdd2"_v6));
    EXPECT_FALSE(is_teredo("2001:db8::1"_v6));  // 2001:db8 is not 2001:0
    EXPECT_FALSE(is_teredo("2002::1"_v6));
}

TEST(ClassifyTest, TeredoEmbeddedV4IsDeobfuscated) {
    // RFC 4380 example: client 192.0.2.254 appears inverted in the low 32.
    const classification c = classify("2001:0:4136:e378:8000:63bf:3fff:fdd2"_v6);
    EXPECT_EQ(c.transition, transition_kind::teredo);
    ASSERT_TRUE(c.embedded_ipv4.has_value());
    EXPECT_EQ(*c.embedded_ipv4, 0xc00002 * 256 + 0x2d);  // 192.0.2.45
}

TEST(ClassifyTest, SixToFourDetection) {
    EXPECT_TRUE(is_6to4("2002:c000:221::1"_v6));
    EXPECT_FALSE(is_6to4("2001:db8::1"_v6));
    const classification c = classify("2002:c000:221::1"_v6);
    EXPECT_EQ(c.transition, transition_kind::six_to_four);
    ASSERT_TRUE(c.embedded_ipv4.has_value());
    EXPECT_EQ(*c.embedded_ipv4, 0xc0000221u);  // 192.0.2.33
}

TEST(ClassifyTest, IsatapDetection) {
    EXPECT_TRUE(is_isatap("2001:db8::200:5efe:c000:221"_v6));
    EXPECT_TRUE(is_isatap("2001:db8::5efe:c000:221"_v6));
    EXPECT_FALSE(is_isatap("2001:db8::1"_v6));
    // ISATAP markers inside Teredo/6to4 space belong to those classes.
    EXPECT_FALSE(is_isatap("2002:c000:221::5efe:c000:221"_v6));
    const classification c = classify("2001:db8::200:5efe:c000:221"_v6);
    EXPECT_EQ(c.transition, transition_kind::isatap);
    EXPECT_EQ(*c.embedded_ipv4, 0xc0000221u);
}

TEST(ClassifyTest, Eui64Detection) {
    // Figure 1's third sample: 21e:c2ff:fec0:11db carries ff:fe.
    const address a = "2001:db8:0:1cdf:21e:c2ff:fec0:11db"_v6;
    EXPECT_TRUE(is_eui64(a));
    const auto mac = eui64_mac(a);
    ASSERT_TRUE(mac.has_value());
    EXPECT_EQ(mac->to_string(), "00:1e:c2:c0:11:db");
}

TEST(ClassifyTest, IsatapIsNotEui64) {
    EXPECT_FALSE(is_eui64("2001:db8::200:5efe:c000:221"_v6));
    EXPECT_FALSE(eui64_mac("2001:db8::200:5efe:c000:221"_v6).has_value());
}

TEST(ClassifyTest, UBit) {
    // EUI-64 from a universal MAC has u = 1.
    EXPECT_EQ(iid_u_bit("2001:db8:0:1cdf:21e:c2ff:fec0:11db"_v6), 1u);
    // RFC 4941 privacy addresses have u = 0; bit 70 is the 7th bit of
    // the IID. 0x3031... has bits 0011 0000 -> bit 6 (u) is 0.
    EXPECT_EQ(iid_u_bit("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a"_v6), 0u);
}

struct scope_case {
    const char* text;
    address_scope scope;
};

class ScopeClassification : public ::testing::TestWithParam<scope_case> {};

TEST_P(ScopeClassification, Matches) {
    EXPECT_EQ(classify(address::must_parse(GetParam().text)).scope,
              GetParam().scope)
        << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Scopes, ScopeClassification,
    ::testing::Values(
        scope_case{"::", address_scope::unspecified},
        scope_case{"::1", address_scope::loopback},
        scope_case{"ff02::1", address_scope::multicast},
        scope_case{"fe80::1", address_scope::link_local},
        scope_case{"febf::1", address_scope::link_local},
        scope_case{"fc00::1", address_scope::unique_local},
        scope_case{"fd12:3456::1", address_scope::unique_local},
        scope_case{"2001:db8::1", address_scope::documentation},
        scope_case{"2600::1", address_scope::global_unicast},
        scope_case{"3fff:ffff::1", address_scope::global_unicast},
        scope_case{"4000::1", address_scope::reserved},
        scope_case{"::2", address_scope::reserved}));

struct iid_case {
    const char* text;
    iid_kind kind;
};

class IidClassification : public ::testing::TestWithParam<iid_case> {};

TEST_P(IidClassification, Matches) {
    EXPECT_EQ(classify(address::must_parse(GetParam().text)).iid, GetParam().kind)
        << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, IidClassification,
    ::testing::Values(
        // Figure 1's samples, in order: low, structured, EUI-64, privacy.
        iid_case{"2001:db8:10:1::103", iid_kind::low_value},
        iid_case{"2001:db8:167:1109::10:901", iid_kind::structured},
        iid_case{"2001:db8:0:1cdf:21e:c2ff:fec0:11db", iid_kind::eui64},
        iid_case{"2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a", iid_kind::pseudorandom},
        iid_case{"2001:db8::1", iid_kind::low_value},
        iid_case{"2001:db8::ffff", iid_kind::low_value},
        iid_case{"2001:db8::5efe:c000:221", iid_kind::isatap},
        // Hex-coded dotted quad in the IID.
        iid_case{"2001:db8::192:0:2:33", iid_kind::embedded_ipv4}));

TEST(ClassifyTest, EnumNames) {
    EXPECT_EQ(to_string(transition_kind::six_to_four), "6to4");
    EXPECT_EQ(to_string(address_scope::global_unicast), "global-unicast");
    EXPECT_EQ(to_string(iid_kind::pseudorandom), "pseudorandom");
}

}  // namespace
}  // namespace v6
