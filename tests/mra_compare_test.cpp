// Tests for MRA-shape comparison and practice clustering.
#include <gtest/gtest.h>

#include "v6class/netgen/iid.h"
#include "v6class/netgen/rng.h"
#include "v6class/spatial/mra_compare.h"

namespace v6 {
namespace {

// Two synthetic "plans": privacy hosts over sequential /64s, and dense
// low-IID blocks. Same plan at different sizes must compare near 0;
// different plans must stand apart.
mra_series privacy_plan(std::uint64_t seed, unsigned subnets, unsigned hosts) {
    rng r{seed};
    std::vector<address> addrs;
    for (unsigned s = 0; s < subnets; ++s)
        for (unsigned h = 0; h < hosts; ++h)
            addrs.push_back(
                address::from_pair(0x2600000000000000ull + (seed << 32) + s,
                                   privacy_iid(r())));
    return compute_mra(std::move(addrs));
}

mra_series dense_plan(std::uint64_t seed, unsigned blocks, unsigned hosts) {
    std::vector<address> addrs;
    for (unsigned b = 0; b < blocks; ++b)
        for (unsigned h = 1; h <= hosts; ++h)
            addrs.push_back(address::from_pair(
                0x2a00000000000000ull + (seed << 32) + b, 0x100 + h));
    return compute_mra(std::move(addrs));
}

TEST(MraDistanceTest, IdenticalSeriesAreAtZero) {
    const mra_series a = privacy_plan(1, 16, 40);
    EXPECT_DOUBLE_EQ(mra_distance(a, a), 0.0);
}

TEST(MraDistanceTest, SamePlanDifferentSizeIsClose) {
    const mra_series small = privacy_plan(1, 12, 30);
    const mra_series large = privacy_plan(2, 48, 60);
    const mra_series dense = dense_plan(3, 8, 200);
    const double same = mra_distance(small, large);
    const double different = mra_distance(small, dense);
    EXPECT_LT(same, different / 2);
}

TEST(MraDistanceTest, SymmetricAndNonNegative) {
    const mra_series a = privacy_plan(4, 10, 20);
    const mra_series b = dense_plan(5, 4, 100);
    EXPECT_DOUBLE_EQ(mra_distance(a, b), mra_distance(b, a));
    EXPECT_GE(mra_distance(a, b), 0.0);
}

TEST(ClusterByMraTest, GroupsByPlan) {
    std::vector<mra_series> series;
    // Three privacy-plan networks, three dense-plan networks.
    for (std::uint64_t s = 1; s <= 3; ++s)
        series.push_back(privacy_plan(s, 10 + 4 * static_cast<unsigned>(s), 40));
    for (std::uint64_t s = 1; s <= 3; ++s)
        series.push_back(dense_plan(s, 4 + static_cast<unsigned>(s), 150));
    // Pick a threshold between intra-plan and inter-plan distances.
    const double intra = mra_distance(series[0], series[1]);
    const double inter = mra_distance(series[0], series[4]);
    ASSERT_LT(intra, inter);
    const auto ids = cluster_by_mra(series, (intra + inter) / 2);
    ASSERT_EQ(ids.size(), 6u);
    EXPECT_EQ(ids[0], ids[1]);
    EXPECT_EQ(ids[1], ids[2]);
    EXPECT_EQ(ids[3], ids[4]);
    EXPECT_EQ(ids[4], ids[5]);
    EXPECT_NE(ids[0], ids[3]);
}

TEST(ClusterByMraTest, ZeroThresholdSeparatesEverythingDistinct) {
    std::vector<mra_series> series{privacy_plan(1, 8, 20), dense_plan(2, 4, 60)};
    const auto ids = cluster_by_mra(series, 1e-9);
    EXPECT_NE(ids[0], ids[1]);
}

TEST(ClusterByMraTest, HugeThresholdMergesEverything) {
    std::vector<mra_series> series{privacy_plan(1, 8, 20), dense_plan(2, 4, 60),
                                   privacy_plan(3, 6, 10)};
    const auto ids = cluster_by_mra(series, 1e9);
    EXPECT_EQ(ids[0], ids[1]);
    EXPECT_EQ(ids[1], ids[2]);
}

TEST(ClusterByMraTest, EmptyInput) {
    EXPECT_TRUE(cluster_by_mra({}, 1.0).empty());
}

}  // namespace
}  // namespace v6
