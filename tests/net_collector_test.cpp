// The UDP collector end to end over loopback: a wire capture sent as
// real datagrams must land in the stream engine with the exact same
// sealed-day reports as pushing the records directly (the "network
// transparency" property), malformed datagrams must be counted and
// contained, and a SIGHUP-style enrichment reload under sustained
// ingest must drop nothing.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "v6class/net/collector.h"
#include "v6class/net/replay.h"
#include "v6class/netgen/rng.h"

namespace v6 {
namespace {

constexpr int kFirstDay = 100;
constexpr int kLastDay = 110;
constexpr unsigned kPerDay = 2000;

std::vector<stream_record> make_feed() {
    std::vector<stream_record> feed;
    feed.reserve((kLastDay - kFirstDay + 1) * kPerDay);
    rng r{20150317};
    for (int day = kFirstDay; day <= kLastDay; ++day)
        for (unsigned i = 0; i < kPerDay; ++i) {
            const std::uint64_t high = 0x20010db800000000ull + (i % 64);
            const std::uint64_t low = mix64(i % 500);
            feed.push_back(
                {day, address::from_pair(high, low), 1 + r.uniform(5)});
        }
    return feed;
}

stream_config small_config() {
    stream_config cfg;
    cfg.shards = 2;
    cfg.batch_size = 256;
    cfg.queue_capacity = 16;
    return cfg;
}

/// Spins until the collector has accepted `want` records (the sender
/// returned, so everything is at least in the loopback socket buffer).
void wait_for_records(const net::udp_collector& collector, std::uint64_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (collector.stats().records < want &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(collector.stats().records, want);
}

void expect_same_reports(const std::vector<day_report>& got,
                         const std::vector<day_report>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("report " + std::to_string(i));
        EXPECT_EQ(got[i].day, want[i].day);
        EXPECT_EQ(got[i].ref_day, want[i].ref_day);
        EXPECT_EQ(got[i].active, want[i].active);
        EXPECT_EQ(got[i].stable, want[i].stable);
        EXPECT_EQ(got[i].not_stable, want[i].not_stable);
        EXPECT_EQ(got[i].distinct_addresses, want[i].distinct_addresses);
        EXPECT_EQ(got[i].distinct_projected, want[i].distinct_projected);
        ASSERT_EQ(got[i].density.size(), want[i].density.size());
        for (std::size_t j = 0; j < got[i].density.size(); ++j) {
            EXPECT_EQ(got[i].density[j].dense_prefix_count,
                      want[i].density[j].dense_prefix_count);
            EXPECT_EQ(got[i].density[j].covered_addresses,
                      want[i].density[j].covered_addresses);
        }
        EXPECT_EQ(got[i].gamma1, want[i].gamma1);
        EXPECT_EQ(got[i].gamma4, want[i].gamma4);
        EXPECT_EQ(got[i].gamma16, want[i].gamma16);
        EXPECT_EQ(got[i].stable_fraction, want[i].stable_fraction);
    }
}

TEST(Collector, LoopbackMatchesDirectPushExactly) {
    const std::vector<stream_record> feed = make_feed();
    const std::string capture = testing::TempDir() + "collector_e2e.v6w";
    ASSERT_TRUE(net::write_wire_file(capture, feed).has_value());

    // Reference: the same records pushed straight into an engine.
    stream_engine direct(small_config());
    for (const stream_record& r : feed) direct.push(r);
    direct.finish();

    // Network path: capture -> UDP datagrams -> collector -> engine.
    stream_engine engine(small_config());
    net::collector_config ccfg;
    ccfg.bind = "::1";
    net::udp_collector collector(engine, ccfg);
    std::string error;
    ASSERT_TRUE(collector.start(&error)) << error;
    ASSERT_NE(collector.port(), 0);

    const net::replay_result sent =
        net::send_wire_file(capture, "::1", collector.port());
    ASSERT_TRUE(sent.ok()) << sent.error;
    EXPECT_EQ(sent.records, feed.size());

    wait_for_records(collector, feed.size());
    collector.stop();
    EXPECT_FALSE(collector.running());
    engine.finish();

    const net::collector_stats cs = collector.stats();
    EXPECT_EQ(cs.datagrams, sent.datagrams);
    EXPECT_EQ(cs.bytes, sent.bytes);
    EXPECT_EQ(cs.decode.rejected(), 0u);
    EXPECT_EQ(cs.decode.seq_gaps, 0u) << "loopback must not lose datagrams";

    expect_same_reports(engine.reports(), direct.reports());
    const stream_snapshot a = engine.snapshot();
    const stream_snapshot b = direct.snapshot();
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.distinct_addresses, b.distinct_addresses);
    EXPECT_EQ(a.spectrum, b.spectrum);
}

TEST(Collector, MalformedDatagramsAreCountedAndContained) {
    stream_engine engine(small_config());
    net::collector_config ccfg;
    ccfg.bind = "::1";
    net::udp_collector collector(engine, ccfg);
    std::string error;
    ASSERT_TRUE(collector.start(&error)) << error;

    const int fd = ::socket(AF_INET6, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in6 dst{};
    dst.sin6_family = AF_INET6;
    dst.sin6_port = htons(collector.port());
    dst.sin6_addr = in6addr_loopback;

    const std::uint8_t junk[64] = {'j', 'u', 'n', 'k'};
    for (int i = 0; i < 10; ++i)
        ASSERT_EQ(::sendto(fd, junk, sizeof junk, 0,
                           reinterpret_cast<const sockaddr*>(&dst), sizeof dst),
                  static_cast<ssize_t>(sizeof junk));
    // One valid datagram after the garbage proves the decoder recovers.
    net::wire_encoder enc;
    const std::vector<stream_record> one = {
        {kFirstDay, address::from_pair(0x20010db8ull << 32, 1), 1}};
    std::vector<std::uint8_t> datagram;
    enc.encode(one.data(), one.size(), datagram);
    ASSERT_EQ(::sendto(fd, datagram.data(), datagram.size(), 0,
                       reinterpret_cast<const sockaddr*>(&dst), sizeof dst),
              static_cast<ssize_t>(datagram.size()));
    ::close(fd);

    wait_for_records(collector, 1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (collector.stats().decode.bad_magic < 10 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    collector.stop();
    engine.finish();

    const net::collector_stats cs = collector.stats();
    EXPECT_EQ(cs.decode.bad_magic, 10u);
    EXPECT_EQ(cs.decode.rejected(), 10u);
    EXPECT_EQ(cs.records, 1u);
    EXPECT_EQ(engine.stats().records, 1u);
}

// The acceptance criterion: reload the enrichment db repeatedly while
// the collector ingests at full speed; every sent record must be
// accepted and accounted by the ledger — zero drops across the swaps.
TEST(Collector, EnrichmentReloadUnderIngestDropsNothing) {
    const std::vector<stream_record> feed = make_feed();
    const std::string capture = testing::TempDir() + "collector_reload.v6w";
    ASSERT_TRUE(net::write_wire_file(capture, feed).has_value());

    const std::string db_path = testing::TempDir() + "collector_reload.db";
    const auto db_entry = [](std::uint32_t asn) {
        return net::enrich_entry{prefix::must_parse("2001:db8::/32"),
                                 {asn, {'a', 'a'}}};
    };
    ASSERT_TRUE(net::write_asn_db(db_path, {db_entry(111)}));
    net::enrichment enrich(db_path);
    ASSERT_TRUE(enrich.reload());
    net::asn_ledger ledger;

    stream_engine engine(small_config());
    net::collector_config ccfg;
    ccfg.bind = "::1";
    net::udp_collector collector(engine, ccfg, &enrich, &ledger);
    std::string error;
    ASSERT_TRUE(collector.start(&error)) << error;

    std::atomic<bool> done{false};
    std::thread sender([&] {
        const net::replay_result sent =
            net::send_wire_file(capture, "::1", collector.port());
        EXPECT_TRUE(sent.ok()) << sent.error;
        done = true;
    });
    // The SIGHUP storm: swap generations as fast as the builds allow
    // for the whole duration of the send.
    std::uint64_t reloads = 0;
    while (!done.load()) {
        ASSERT_TRUE(net::write_asn_db(db_path, {db_entry(reloads % 2 ? 222 : 111)}));
        ASSERT_TRUE(enrich.reload());
        ++reloads;
    }
    sender.join();
    EXPECT_GT(reloads, 0u);

    wait_for_records(collector, feed.size());
    collector.stop();
    engine.finish();

    EXPECT_EQ(collector.stats().decode.rejected(), 0u);
    EXPECT_EQ(engine.stats().records, feed.size());
    // Every record was enriched against *some* complete snapshot: the
    // ledger saw all of them and the covering /32 matched every one.
    EXPECT_EQ(ledger.matched(), feed.size());
    EXPECT_EQ(ledger.unmatched(), 0u);
}

}  // namespace
}  // namespace v6
