// trie_bulk_test — differential coverage for the arena-backed trie:
// bulk_build vs incremental add, the trie's dense queries vs the paper's
// footnote-3 sort-cut-uniq recipe, and the trie-backed MRA vs the
// sorted-array MRA, on a 100k mixed synthetic population (privacy IID
// low halves + small structured pools, as in bench/micro_substrate).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "v6class/netgen/iid.h"
#include "v6class/netgen/rng.h"
#include "v6class/spatial/mra.h"
#include "v6class/trie/radix_tree.h"

namespace v6 {
namespace {

std::vector<address> make_addresses(std::size_t n, std::uint64_t seed) {
    rng r{seed};
    std::vector<address> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(1u << 14);
        const std::uint64_t lo =
            r.chance(0.6) ? privacy_iid(r()) : r.uniform(1u << 12);
        out.push_back(address::from_pair(hi, lo));
    }
    return out;
}

struct entry {
    prefix pfx;
    std::uint64_t count;
    friend bool operator==(const entry&, const entry&) = default;
};

std::vector<entry> visit_all(const radix_tree& t) {
    std::vector<entry> out;
    t.visit([&](const prefix& p, std::uint64_t c) { out.push_back({p, c}); });
    return out;
}

std::vector<unsigned> splits_all(const radix_tree& t) {
    std::vector<unsigned> out;
    t.visit_splits([&](unsigned len) { out.push_back(len); });
    std::sort(out.begin(), out.end());
    return out;
}

TEST(TrieBulkBuild, MatchesIncrementalOnMixed100k) {
    const std::vector<address> addrs = make_addresses(100000, 77);

    radix_tree incremental;
    for (const address& a : addrs) incremental.add(a);

    std::vector<address> sorted = addrs;
    std::sort(sorted.begin(), sorted.end());
    radix_tree bulk;
    bulk.bulk_build(sorted);

    // The compressed trie over a fixed leaf set is unique, so the two
    // construction orders must agree on everything observable.
    EXPECT_EQ(bulk.total(), incremental.total());
    EXPECT_EQ(bulk.node_count(), incremental.node_count());
    EXPECT_EQ(visit_all(bulk), visit_all(incremental));
    EXPECT_EQ(splits_all(bulk), splits_all(incremental));
    EXPECT_EQ(bulk.densify(2, 112), incremental.densify(2, 112));
    EXPECT_EQ(bulk.densify(8, 64), incremental.densify(8, 64));
    EXPECT_EQ(bulk.dense_prefixes_at(2, 112), incremental.dense_prefixes_at(2, 112));
}

TEST(TrieBulkBuild, DuplicatesAccumulateLikeAdd) {
    std::vector<address> addrs = make_addresses(5000, 9);
    // Force heavy duplication.
    const std::size_t n = addrs.size();
    for (std::size_t i = 0; i < n; i += 2) addrs.push_back(addrs[i]);

    radix_tree incremental;
    for (const address& a : addrs) incremental.add(a, 3);

    std::sort(addrs.begin(), addrs.end());
    radix_tree bulk;
    bulk.bulk_build(addrs, 3);

    EXPECT_EQ(bulk.total(), incremental.total());
    EXPECT_EQ(bulk.node_count(), incremental.node_count());
    EXPECT_EQ(visit_all(bulk), visit_all(incremental));
}

TEST(TrieBulkBuild, NonEmptyTreeFallsBackToAdd) {
    radix_tree t;
    t.add(address::must_parse("2001:db8::1"));
    std::vector<address> more{address::must_parse("2001:db8::2"),
                              address::must_parse("2001:db8::3")};
    t.bulk_build(more);
    EXPECT_EQ(t.total(), 3u);
    EXPECT_EQ(t.subtree_count(prefix{address::must_parse("2001:db8::"), 64}), 3u);
}

TEST(TrieBulkBuild, EmptyAndSingle) {
    radix_tree t;
    t.bulk_build({});
    EXPECT_TRUE(t.empty());
    const address a = address::must_parse("2001:db8::42");
    t.bulk_build({a});
    EXPECT_EQ(t.total(), 1u);
    EXPECT_EQ(t.node_count(), 1u);
    EXPECT_EQ(t.count_at(prefix{a, 128}), 1u);
}

TEST(TrieDifferential, DenseQueryMatchesFootnote3SortOnMixed100k) {
    const std::vector<address> addrs = make_addresses(100000, 101);
    std::vector<address> sorted = addrs;
    std::sort(sorted.begin(), sorted.end());
    radix_tree t;
    t.bulk_build(sorted);

    for (const auto& [min_count, p] :
         std::vector<std::pair<std::uint64_t, unsigned>>{
             {2, 112}, {4, 112}, {2, 120}, {16, 64}, {2, 48}}) {
        const auto via_trie = t.dense_prefixes_at(min_count, p);
        const auto via_sort = dense_prefixes_by_sort(addrs, min_count, p);
        EXPECT_EQ(via_trie, via_sort) << "n=" << min_count << " p=" << p;
    }
}

TEST(TrieDifferential, MraFromTrieMatchesSortedOnMixed100k) {
    const std::vector<address> addrs = make_addresses(100000, 202);
    std::vector<address> sorted = addrs;
    std::sort(sorted.begin(), sorted.end());
    radix_tree t;
    t.bulk_build(sorted);  // duplicates collapse into counts; MRA ignores them

    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    const mra_series from_sorted = compute_mra_sorted(sorted);
    const mra_series from_trie = compute_mra_from_trie(t);
    for (unsigned p = 0; p <= 128; ++p)
        ASSERT_EQ(from_trie.aggregate_count(p), from_sorted.aggregate_count(p))
            << "p=" << p;
}

TEST(TrieArena, AggregateGoldenSurvivesArena) {
    // A fixed population whose aguri fold is known: 60+25 observations
    // in two /64s of one /48, plus 15 spread thinly elsewhere.
    radix_tree t;
    const address heavy1 = address::must_parse("2001:db8:1:1::1");
    const address heavy2 = address::must_parse("2001:db8:1:2::1");
    t.add(heavy1, 60);
    t.add(heavy2, 25);
    for (int i = 0; i < 15; ++i)
        t.add(address::from_pair(0x2002000000000000ull + static_cast<std::uint64_t>(i) * 0x100000000ull, 1));
    ASSERT_EQ(t.total(), 100u);

    t.aggregate_by_share(0.20);  // threshold: 20 observations

    const std::vector<entry> got = visit_all(t);
    // heavy1 and heavy2 keep their own nodes; the 15 singletons fold up
    // to the root (their meet is shorter than any counted ancestor).
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].pfx, prefix{});  // ::/0 root remainder
    EXPECT_EQ(got[0].count, 15u);
    EXPECT_EQ(got[1].pfx, (prefix{heavy1, 128}));
    EXPECT_EQ(got[1].count, 60u);
    EXPECT_EQ(got[2].pfx, (prefix{heavy2, 128}));
    EXPECT_EQ(got[2].count, 25u);
    EXPECT_EQ(t.total(), 100u);
}

TEST(TrieArena, FreeListReuseAfterAggregateAndClear) {
    radix_tree t;
    const std::vector<address> addrs = make_addresses(2000, 5);
    for (const address& a : addrs) t.add(a);
    const std::size_t before = t.node_count();
    t.aggregate_by_share(0.01);  // folds most of the tree, freeing nodes
    ASSERT_LT(t.node_count(), before);

    // New inserts must land on recycled slots without disturbing the
    // surviving structure.
    const std::uint64_t total_before = t.total();
    t.add(address::must_parse("2001:db8:ffff::1"), 7);
    EXPECT_EQ(t.total(), total_before + 7);
    EXPECT_EQ(t.count_at(prefix{address::must_parse("2001:db8:ffff::1"), 128}), 7u);

    // clear() keeps the arena; a rebuild must be equivalent to a fresh
    // tree over the same input.
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.node_count(), 0u);
    for (const address& a : addrs) t.add(a);
    radix_tree fresh;
    for (const address& a : addrs) fresh.add(a);
    EXPECT_EQ(visit_all(t), visit_all(fresh));
    EXPECT_EQ(t.node_count(), fresh.node_count());
}

}  // namespace
}  // namespace v6
