// Tests for the Malone-style content-only baseline classifier, including
// its designed-in ~73-77% privacy-address detection rate.
#include <gtest/gtest.h>

#include "v6class/addrtype/malone.h"
#include "v6class/netgen/iid.h"
#include "v6class/netgen/rng.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(MaloneTest, Categories) {
    EXPECT_EQ(malone_classify("2001::1"_v6), malone_label::teredo);
    EXPECT_EQ(malone_classify("2002:c000:221::1"_v6), malone_label::six_to_four);
    EXPECT_EQ(malone_classify("2001:db8::5efe:c000:221"_v6), malone_label::isatap);
    EXPECT_EQ(malone_classify("2001:db8:0:1cdf:21e:c2ff:fec0:11db"_v6),
              malone_label::eui64);
    EXPECT_EQ(malone_classify("2001:db8:10:1::103"_v6), malone_label::low);
    EXPECT_EQ(malone_classify("2001:db8::192:0:2:33"_v6), malone_label::v4_based);
    EXPECT_EQ(malone_classify("2001:db8::dead:beef:aaaa:1"_v6), malone_label::word);
}

TEST(MaloneTest, PrivacySampleIsRandomised) {
    // Figure 1's privacy sample has all leading nybbles populated and
    // u = 0, so the content-only test fires.
    EXPECT_EQ(malone_classify("2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a"_v6),
              malone_label::randomised);
}

TEST(MaloneTest, StructuredIidIsNotRandomised) {
    // Low-entropy manual plans must not look like privacy addresses.
    EXPECT_NE(malone_classify("2001:db8:167:1109::10:901"_v6),
              malone_label::randomised);
}

TEST(MaloneTest, DetectionRateNearPaperFigure) {
    // Generate true privacy IIDs and measure the content-only detection
    // rate: the paper quotes ~73% for Malone's design; ours is the
    // (15/16)^4 ~ 77.2% variant. Accept the band [70%, 82%].
    const std::uint64_t trials = 20000;
    std::uint64_t detected = 0;
    for (std::uint64_t i = 0; i < trials; ++i) {
        const std::uint64_t iid = privacy_iid(hash_ids(123, 0x9999, i));
        const address a = address::from_pair(0x20010db800010002ull, iid);
        if (malone_classify(a) == malone_label::randomised) ++detected;
    }
    const double rate = static_cast<double>(detected) / trials;
    EXPECT_GT(rate, 0.70);
    EXPECT_LT(rate, 0.82);
}

TEST(MaloneTest, MissedPrivacyFallsToUnclassified) {
    // An IID with a zero leading nybble in one group is missed by design.
    const address a = address::from_pair(
        0x20010db800010002ull, privacy_iid(0xa111'0bbb'c222'd333ull));
    EXPECT_EQ(malone_classify(a), malone_label::unclassified);
}

TEST(MaloneTest, Names) {
    EXPECT_EQ(to_string(malone_label::randomised), "randomised");
    EXPECT_EQ(to_string(malone_label::v4_based), "v4-based");
}

}  // namespace
}  // namespace v6
