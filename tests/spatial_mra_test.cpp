// Tests for Multi-Resolution Aggregate counts and ratios, including the
// paper's structural signatures (privacy-IID plateau, u-bit notch).
#include <gtest/gtest.h>

#include <cmath>

#include "v6class/netgen/iid.h"
#include "v6class/netgen/rng.h"
#include "v6class/spatial/mra.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(MraTest, EmptySet) {
    const mra_series mra = compute_mra({});
    EXPECT_EQ(mra.size(), 0u);
    EXPECT_EQ(mra.aggregate_count(0), 0u);
    EXPECT_DOUBLE_EQ(mra.ratio(0, 16), 1.0);
}

TEST(MraTest, SingleAddress) {
    const mra_series mra = compute_mra({"2001:db8::1"_v6});
    for (unsigned p = 0; p <= 128; ++p) EXPECT_EQ(mra.aggregate_count(p), 1u);
    for (double r : mra.ratios(1)) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(MraTest, BoundaryCounts) {
    // n_0 = 1 and n_128 = N, by definition.
    std::vector<address> addrs;
    for (unsigned i = 0; i < 37; ++i)
        addrs.push_back(address::from_pair(0x20010db800000000ull, i * 1000 + 1));
    const mra_series mra = compute_mra(addrs);
    EXPECT_EQ(mra.aggregate_count(0), 1u);
    EXPECT_EQ(mra.aggregate_count(128), 37u);
}

TEST(MraTest, DeduplicatesInput) {
    const mra_series mra =
        compute_mra({"2001:db8::1"_v6, "2001:db8::1"_v6, "2001:db8::2"_v6});
    EXPECT_EQ(mra.size(), 2u);
}

TEST(MraTest, TwoAddressesDivergingAtKnownBit) {
    // Addresses differing first at bit 47: n_p = 1 for p <= 47, 2 after.
    const address a = "2001:db8::1"_v6;
    const address b = a.with_bit(47, 1);
    const mra_series mra = compute_mra({a, b});
    EXPECT_EQ(mra.aggregate_count(47), 1u);
    EXPECT_EQ(mra.aggregate_count(48), 2u);
    EXPECT_DOUBLE_EQ(mra.ratio(47, 1), 2.0);
    EXPECT_DOUBLE_EQ(mra.ratio(46, 1), 1.0);
}

TEST(MraTest, FullySaturatedSegment) {
    // All 16 values of one nybble: gamma^4 at that position = 16.
    std::vector<address> addrs;
    for (unsigned v = 0; v < 16; ++v) {
        address a = "2001:db8::1"_v6;
        a = a.with_bit(48, (v >> 3) & 1).with_bit(49, (v >> 2) & 1)
             .with_bit(50, (v >> 1) & 1).with_bit(51, v & 1);
        addrs.push_back(a);
    }
    const mra_series mra = compute_mra(addrs);
    EXPECT_DOUBLE_EQ(mra.ratio(48, 4), 16.0);
    EXPECT_DOUBLE_EQ(mra.ratio(52, 4), 1.0);
}

TEST(MraTest, RatioSequenceLengths) {
    const mra_series mra = compute_mra({"2001:db8::1"_v6});
    EXPECT_EQ(mra.ratios(1).size(), 128u);
    EXPECT_EQ(mra.ratios(4).size(), 32u);
    EXPECT_EQ(mra.ratios(16).size(), 8u);
}

// Property (stated in Section 5.2.1): for a given resolution k, the
// product of the ratios equals the number of addresses in the set.
class MraProductInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MraProductInvariant, ProductOfRatiosIsN) {
    rng r{GetParam()};
    std::vector<address> addrs;
    const std::size_t n = 500 + r.uniform(2000);
    for (std::size_t i = 0; i < n; ++i) {
        // Mixed structure: clustered /64s, some privacy-style IIDs.
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(64);
        const std::uint64_t lo = r.chance(0.5) ? privacy_iid(r()) : r.uniform(4096);
        addrs.push_back(address::from_pair(hi, lo));
    }
    const mra_series mra = compute_mra(addrs);
    for (unsigned k : {1u, 4u, 8u, 16u}) {
        double log_product = 0.0;
        for (unsigned p = 0; p + k <= 128; p += k)
            log_product += std::log2(mra.ratio(p, k));
        EXPECT_NEAR(log_product, std::log2(static_cast<double>(mra.size())), 1e-6)
            << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MraProductInvariant,
                         ::testing::Range<std::uint64_t>(1, 11));

// Property: ratios stay within [1, 2^k] and counts are non-decreasing.
class MraRangeInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MraRangeInvariant, RatioBoundsAndMonotoneCounts) {
    rng r{GetParam() * 101};
    std::vector<address> addrs;
    for (int i = 0; i < 1500; ++i)
        addrs.push_back(address::from_pair(r(), r()));
    const mra_series mra = compute_mra(addrs);
    for (unsigned p = 0; p < 128; ++p)
        EXPECT_LE(mra.aggregate_count(p), mra.aggregate_count(p + 1));
    for (unsigned k : {1u, 4u, 16u}) {
        for (unsigned p = 0; p + k <= 128; p += k) {
            const double g = mra.ratio(p, k);
            EXPECT_GE(g, 1.0);
            EXPECT_LE(g, std::exp2(static_cast<double>(k)) + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MraRangeInvariant,
                         ::testing::Range<std::uint64_t>(1, 7));

// Cross-check: sorted-array and trie computations agree.
class MraCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MraCrossCheck, SortedMatchesTrie) {
    rng r{GetParam() * 7 + 1};
    std::vector<address> addrs;
    radix_tree tree;
    for (int i = 0; i < 2000; ++i) {
        const address a = address::from_pair(
            0x20010db800000000ull | r.uniform(1024),
            r.chance(0.3) ? r.uniform(64) : r());
        addrs.push_back(a);
        tree.add(a);
    }
    const mra_series from_sort = compute_mra(addrs);
    const mra_series from_trie = compute_mra_from_trie(tree);
    for (unsigned p = 0; p <= 128; ++p)
        ASSERT_EQ(from_sort.aggregate_count(p), from_trie.aggregate_count(p))
            << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MraCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(MraSignatureTest, PrivacyAddressesShowUBitNotch) {
    // Section 5.2.1: many privacy IIDs inside /64s produce gamma^1 ~= 2
    // just after bit 64, a drop to ~1 at bit 70 (the cleared u bit), and
    // an eventual flat line at 1 deep in the IID.
    rng r{4242};
    std::vector<address> addrs;
    for (unsigned subnet = 0; subnet < 32; ++subnet)
        for (int host = 0; host < 1000; ++host)
            addrs.push_back(address::from_pair(0x20010db800000000ull + subnet,
                                               privacy_iid(r())));
    const mra_series mra = compute_mra(addrs);
    EXPECT_GT(mra.ratio(64, 1), 1.95);
    EXPECT_GT(mra.ratio(65, 1), 1.95);
    EXPECT_LT(mra.ratio(70, 1), 1.05);  // the u-bit notch
    EXPECT_GT(mra.ratio(71, 1), 1.95);
    EXPECT_LT(mra.ratio(124, 1), 1.05);  // sparse tail: one addr per prefix
}

TEST(MraSignatureTest, DenseLowBlocksShowTailProminence) {
    // Figure 2b's signature: sequentially numbered hosts make the
    // 112..128 segment the busiest one.
    std::vector<address> addrs;
    for (unsigned block = 0; block < 4; ++block)
        for (unsigned host = 1; host <= 400; ++host)
            addrs.push_back(
                address::from_pair(0x20010db800100008ull + block, host));
    const mra_series mra = compute_mra(addrs);
    const auto segments = mra.ratios(16);
    // The last 16-bit segment carries nearly all the aggregation.
    double best_other = 1.0;
    for (std::size_t s = 4; s + 1 < 8; ++s)
        best_other = std::max(best_other, segments[s]);
    EXPECT_GT(segments[7], 100.0);
    EXPECT_GT(segments[7], best_other * 10);
}

}  // namespace
}  // namespace v6
