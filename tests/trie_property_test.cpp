// Randomized cross-checks of radix_tree queries against brute-force
// reference implementations over mixed-length prefix sets.
#include <gtest/gtest.h>

#include <algorithm>

#include "v6class/netgen/rng.h"
#include "v6class/trie/radix_tree.h"

namespace v6 {
namespace {

struct entry {
    prefix pfx;
    std::uint64_t count;
};

// Builds a random mixed-length entry list plus the trie holding it.
std::pair<std::vector<entry>, radix_tree> make_random_tree(std::uint64_t seed,
                                                           int n) {
    rng r{seed};
    std::vector<entry> entries;
    radix_tree tree;
    for (int i = 0; i < n; ++i) {
        const address base = address::from_pair(
            0x2000000000000000ull | (r() >> 6), r.chance(0.5) ? r.uniform(256) : r());
        const unsigned len =
            r.chance(0.6) ? 128 : static_cast<unsigned>(16 + r.uniform(113));
        const std::uint64_t count = 1 + r.uniform(5);
        const prefix p{base, len};
        entries.push_back({p, count});
        tree.add(p, count);
    }
    return {std::move(entries), std::move(tree)};
}

class TrieBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieBruteForce, SubtreeCountMatches) {
    auto [entries, tree] = make_random_tree(GetParam(), 400);
    rng r{GetParam() ^ 0xbeef};
    for (int q = 0; q < 300; ++q) {
        // Query prefixes: random, or derived from an entry.
        prefix query{address::from_pair(0x2000000000000000ull | (r() >> 6), r()),
                     static_cast<unsigned>(r.uniform(129))};
        if (r.chance(0.5))
            query = prefix{entries[r.uniform(entries.size())].pfx.base(),
                           static_cast<unsigned>(r.uniform(129))};
        std::uint64_t expected = 0;
        for (const entry& e : entries)
            if (query.contains(e.pfx)) expected += e.count;
        EXPECT_EQ(tree.subtree_count(query), expected) << query.to_string();
    }
}

TEST_P(TrieBruteForce, CountAtMatches) {
    auto [entries, tree] = make_random_tree(GetParam(), 300);
    for (const entry& e : entries) {
        std::uint64_t expected = 0;
        for (const entry& other : entries)
            if (other.pfx == e.pfx) expected += other.count;
        EXPECT_EQ(tree.count_at(e.pfx), expected) << e.pfx.to_string();
    }
}

TEST_P(TrieBruteForce, LongestMatchMatches) {
    auto [entries, tree] = make_random_tree(GetParam(), 300);
    rng r{GetParam() ^ 0xcafe};
    for (int q = 0; q < 300; ++q) {
        address probe = address::from_pair(0x2000000000000000ull | (r() >> 6), r());
        if (r.chance(0.5)) {
            // Probe inside a random entry.
            const prefix& p = entries[r.uniform(entries.size())].pfx;
            probe = p.base();
            for (unsigned bit = p.length(); bit < 128; ++bit)
                probe = probe.with_bit(bit, static_cast<unsigned>(r.uniform(2)));
        }
        const prefix* best = nullptr;
        for (const entry& e : entries)
            if (e.pfx.contains(probe) &&
                (!best || e.pfx.length() > best->length()))
                best = &e.pfx;
        const auto got = tree.longest_match(probe);
        if (!best) {
            EXPECT_FALSE(got.has_value());
        } else {
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, *best) << probe.to_string();
        }
    }
}

TEST_P(TrieBruteForce, VisitEnumeratesExactlyTheEntries) {
    auto [entries, tree] = make_random_tree(GetParam(), 250);
    // Expected: per-prefix summed counts, in address order.
    std::vector<std::pair<prefix, std::uint64_t>> expected;
    for (const entry& e : entries) {
        bool merged = false;
        for (auto& [p, c] : expected)
            if (p == e.pfx) {
                c += e.count;
                merged = true;
            }
        if (!merged) expected.emplace_back(e.pfx, e.count);
    }
    std::sort(expected.begin(), expected.end());
    std::vector<std::pair<prefix, std::uint64_t>> got;
    tree.visit([&](const prefix& p, std::uint64_t c) { got.emplace_back(p, c); });
    EXPECT_EQ(got, expected);
}

TEST_P(TrieBruteForce, AggregationPreservesSubtreeSums) {
    auto [entries, tree] = make_random_tree(GetParam(), 400);
    // Pick check prefixes *before* aggregating.
    rng r{GetParam() ^ 0x5a5a};
    std::vector<prefix> checks;
    for (int i = 0; i < 20; ++i)
        checks.push_back(prefix{entries[r.uniform(entries.size())].pfx.base(),
                                static_cast<unsigned>(r.uniform(33))});
    std::vector<std::uint64_t> before;
    for (const prefix& p : checks) before.push_back(tree.subtree_count(p));
    tree.aggregate_by_share(0.02);
    // Aggregation only moves counts upward (toward shorter prefixes), so
    // any proper subtree can lose mass to its ancestors but never gain;
    // the total is preserved exactly at the root.
    for (std::size_t i = 0; i < checks.size(); ++i)
        EXPECT_LE(tree.subtree_count(checks[i]), before[i])
            << checks[i].to_string();
    EXPECT_EQ(tree.subtree_count(prefix{}), tree.total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieBruteForce,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace v6
