// Tests for fleet telemetry federation: the V6TEL1 codec (round-trips,
// per-reason rejects, stream reassembly, sequence accounting), the
// pusher ↔ aggregator path over real loopback TCP (bit-exact cross-node
// HLL union, per-node series under node= labels, node-absence
// alerting), and thread-safety under concurrent push + scrape.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "v6class/net/telwire.h"
#include "v6class/obs/alert.h"
#include "v6class/obs/event_log.h"
#include "v6class/obs/federate.h"
#include "v6class/obs/http.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/sketch.h"
#include "v6class/obs/tsdb.h"
#include "v6class/stream/engine.h"

namespace v6 {
namespace {

using namespace std::chrono_literals;

/// Spins until `cond` holds or ~5 s pass. Returns the final value, so
/// callers can ASSERT on it.
bool wait_for(const std::function<bool()>& cond) {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
        if (cond()) return true;
        std::this_thread::sleep_for(10ms);
    }
    return cond();
}

/// One blocking HTTP exchange against 127.0.0.1:port.
std::string http_get(std::uint16_t port, const std::string& target) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return "";
    }
    const std::string request =
        "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    (void)!::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

/// Raw TCP byte sender — for frames the pusher would never produce
/// (seq skips, garbage prefixes).
void send_raw(std::uint16_t port, const std::vector<std::uint8_t>& bytes) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
        ASSERT_GT(n, 0);
        sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
}

obs::hyperloglog make_hll(unsigned precision, std::uint64_t seed,
                          unsigned count) {
    obs::hyperloglog h(precision);
    std::uint64_t x = seed;
    for (unsigned i = 0; i < count; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        h.add(x);
    }
    return h;
}

// ----------------------------------------------------------- codec

TEST(TelWireTest, StatusFrameRoundTrips) {
    net::tel_encoder enc("edge-1");
    net::tel_status s;
    s.records = 123456789;
    s.open_day = 42;
    s.sealed_day = 41;
    s.unix_time = 1722950000.125;
    std::vector<std::uint8_t> frame;
    enc.encode_status(s, frame);

    net::tel_decoder dec;
    net::tel_frame out;
    std::vector<std::uint8_t> buffer = frame;
    ASSERT_EQ(dec.pull(buffer, out), net::tel_pull::frame);
    EXPECT_TRUE(buffer.empty());  // consumed
    EXPECT_EQ(out.kind, net::kTelKindStatus);
    EXPECT_EQ(out.seq, 0u);
    EXPECT_EQ(out.node, "edge-1");
    EXPECT_EQ(out.status.records, s.records);
    EXPECT_EQ(out.status.open_day, s.open_day);
    EXPECT_EQ(out.status.sealed_day, s.sealed_day);
    EXPECT_EQ(out.status.unix_time, s.unix_time);
    EXPECT_EQ(dec.stats().frames, 1u);
    EXPECT_EQ(dec.stats().rejected(), 0u);
}

TEST(TelWireTest, SeriesFrameRoundTrips) {
    net::tel_encoder enc("n");
    std::vector<net::tel_sample> samples = {
        {"v6class_gamma16_48", "", 12, 41.5},
        {"v6class_asn_records", "asn=13335", -3, 0.0},
    };
    std::vector<std::uint8_t> frame;
    enc.encode_series(samples, frame);

    net::tel_decoder dec;
    net::tel_frame out;
    ASSERT_TRUE(dec.decode(frame.data() + 4, frame.size() - 4, out));
    ASSERT_EQ(out.samples.size(), 2u);
    EXPECT_EQ(out.samples[0].name, "v6class_gamma16_48");
    EXPECT_EQ(out.samples[0].label, "");
    EXPECT_EQ(out.samples[0].ts, 12);
    EXPECT_EQ(out.samples[0].value, 41.5);
    EXPECT_EQ(out.samples[1].label, "asn=13335");
    EXPECT_EQ(out.samples[1].ts, -3);
}

TEST(TelWireTest, SketchesFrameRoundTripsBitForBit) {
    const obs::hyperloglog hll = make_hll(10, 7, 500);
    obs::p2_quantile p2(0.99);
    for (int i = 1; i <= 100; ++i) p2.observe(i);

    net::tel_sketch hs;
    hs.id = net::kTelSketchDayAddresses;
    hs.stype = net::kTelSketchTypeHll;
    hll.serialize(hs.payload);
    net::tel_sketch ps;
    ps.id = net::kTelSketchHitsP99;
    ps.stype = net::kTelSketchTypeP2;
    p2.serialize(ps.payload);

    net::tel_encoder enc("n");
    std::vector<std::uint8_t> frame;
    enc.encode_sketches(17, {hs, ps}, frame);

    net::tel_decoder dec;
    net::tel_frame out;
    ASSERT_TRUE(dec.decode(frame.data() + 4, frame.size() - 4, out));
    EXPECT_EQ(out.sketch_day, 17);
    ASSERT_EQ(out.sketches.size(), 2u);
    const auto hll2 = obs::hyperloglog::deserialize(
        out.sketches[0].payload.data(), out.sketches[0].payload.size());
    ASSERT_TRUE(hll2.has_value());
    EXPECT_TRUE(*hll2 == hll);  // register-for-register
    const auto p22 = obs::p2_quantile::deserialize(
        out.sketches[1].payload.data(), out.sketches[1].payload.size());
    ASSERT_TRUE(p22.has_value());
    EXPECT_TRUE(*p22 == p2);
}

TEST(TelWireTest, EventsFrameRoundTrips) {
    net::tel_encoder enc("n");
    std::vector<net::tel_event> events(1);
    events[0].unix_time = 1722950001.5;
    events[0].level = "warn";
    events[0].kind = "drift";
    events[0].message = "gamma16_48 shifted";
    events[0].fields = {{"day", "12"}, {"z", "6.1"}};
    std::vector<std::uint8_t> frame;
    enc.encode_events(events, frame);

    net::tel_decoder dec;
    net::tel_frame out;
    ASSERT_TRUE(dec.decode(frame.data() + 4, frame.size() - 4, out));
    ASSERT_EQ(out.events.size(), 1u);
    EXPECT_EQ(out.events[0].level, "warn");
    EXPECT_EQ(out.events[0].kind, "drift");
    EXPECT_EQ(out.events[0].message, "gamma16_48 shifted");
    ASSERT_EQ(out.events[0].fields.size(), 2u);
    EXPECT_EQ(out.events[0].fields[1].first, "z");
    EXPECT_EQ(out.events[0].fields[1].second, "6.1");
}

TEST(TelWireTest, RejectsIncrementExactlyOnePerReasonCounter) {
    net::tel_encoder enc("n");
    std::vector<std::uint8_t> frame;
    enc.encode_status({}, frame);
    std::vector<std::uint8_t> payload(frame.begin() + 4, frame.end());

    net::tel_frame out;
    {   // shorter than the fixed header
        net::tel_decoder d;
        EXPECT_FALSE(d.decode(payload.data(), net::kTelHeaderSize - 1, out));
        EXPECT_EQ(d.stats().short_frame, 1u);
        EXPECT_EQ(d.stats().rejected(), 1u);
    }
    {   // magic mismatch
        auto bad = payload;
        bad[0] ^= 0xff;
        net::tel_decoder d;
        EXPECT_FALSE(d.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(d.stats().bad_magic, 1u);
        EXPECT_EQ(d.stats().rejected(), 1u);
    }
    {   // future version
        auto bad = payload;
        bad[6] = 9;
        net::tel_decoder d;
        EXPECT_FALSE(d.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(d.stats().bad_version, 1u);
    }
    {   // kind outside [1, 4]
        auto bad = payload;
        bad[7] = 0;
        net::tel_decoder d;
        EXPECT_FALSE(d.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(d.stats().bad_kind, 1u);
        bad[7] = 5;
        EXPECT_FALSE(d.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(d.stats().bad_kind, 2u);
    }
    {   // node_len of zero
        auto bad = payload;
        bad[16] = bad[17] = 0;
        net::tel_decoder d;
        EXPECT_FALSE(d.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(d.stats().bad_node, 1u);
    }
    {   // body cut short
        net::tel_decoder d;
        EXPECT_FALSE(d.decode(payload.data(), payload.size() - 1, out));
        EXPECT_EQ(d.stats().truncated, 1u);
    }
    {   // spare byte after the body
        auto bad = payload;
        bad.push_back(0);
        net::tel_decoder d;
        EXPECT_FALSE(d.decode(bad.data(), bad.size(), out));
        EXPECT_EQ(d.stats().trailing, 1u);
    }
}

TEST(TelWireTest, EveryDecodeEitherAcceptsOrCountsExactlyOneReject) {
    // Corruption property (the wire.h test discipline): flip each byte
    // of a valid series payload in turn; whatever the decoder decides,
    // accepted + rejected must account for every attempt, and the
    // decoder must never crash or read out of bounds.
    net::tel_encoder enc("edge");
    std::vector<net::tel_sample> samples = {{"m", "node=a", 3, 1.25},
                                            {"n", "", 4, -2.0}};
    std::vector<std::uint8_t> frame;
    enc.encode_series(samples, frame);
    std::vector<std::uint8_t> payload(frame.begin() + 4, frame.end());

    std::uint64_t attempts = 0;
    net::tel_decoder dec;
    net::tel_frame out;
    for (std::size_t i = 0; i < payload.size(); ++i) {
        for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
            auto bad = payload;
            bad[i] ^= flip;
            ++attempts;
            dec.decode(bad.data(), bad.size(), out);
        }
    }
    EXPECT_EQ(dec.stats().frames + dec.stats().rejected(), attempts);
}

TEST(TelWireTest, PullReassemblesDribbledBytesAndBackToBackFrames) {
    net::tel_encoder enc("n");
    std::vector<std::uint8_t> f1, f2;
    enc.encode_status({}, f1);
    enc.encode_series({{"m", "", 1, 2.0}}, f2);

    // Dribble one byte at a time: need_more until the last byte lands.
    net::tel_decoder dec;
    net::tel_frame out;
    std::vector<std::uint8_t> buffer;
    for (std::size_t i = 0; i + 1 < f1.size(); ++i) {
        buffer.push_back(f1[i]);
        EXPECT_EQ(dec.pull(buffer, out), net::tel_pull::need_more);
    }
    buffer.push_back(f1.back());
    EXPECT_EQ(dec.pull(buffer, out), net::tel_pull::frame);
    EXPECT_EQ(out.kind, net::kTelKindStatus);

    // Two frames in one read drain in order. (f1 re-sent: its seq is
    // behind the decoder's high-water mark, which counts a reorder but
    // still yields the frame.)
    buffer = f1;
    buffer.insert(buffer.end(), f2.begin(), f2.end());
    EXPECT_EQ(dec.pull(buffer, out), net::tel_pull::frame);
    EXPECT_EQ(dec.pull(buffer, out), net::tel_pull::frame);
    EXPECT_EQ(out.kind, net::kTelKindSeries);
    EXPECT_EQ(dec.pull(buffer, out), net::tel_pull::need_more);
}

TEST(TelWireTest, PullTreatsGarbageLengthPrefixAsFatal) {
    net::tel_decoder dec;
    net::tel_frame out;
    // Length prefix beyond kTelMaxFrame: no resync possible.
    std::vector<std::uint8_t> buffer = {0xff, 0xff, 0xff, 0xff, 0x00};
    EXPECT_EQ(dec.pull(buffer, out), net::tel_pull::fatal);
    EXPECT_EQ(dec.stats().oversized, 1u);
    // Length prefix smaller than the fixed header: equally fatal.
    buffer = {0x01, 0x00, 0x00, 0x00, 0x00};
    EXPECT_EQ(dec.pull(buffer, out), net::tel_pull::fatal);
    EXPECT_EQ(dec.stats().oversized, 2u);
}

TEST(TelWireTest, WellFramedButMalformedPayloadKeepsTheStreamAligned) {
    net::tel_encoder enc("n");
    std::vector<std::uint8_t> good;
    enc.encode_status({}, good);
    // A frame with valid length prefix but corrupted magic, followed by
    // a good frame: reject, then frame.
    std::vector<std::uint8_t> bad = good;
    bad[4] ^= 0xff;  // first magic byte (after the 4-byte prefix)
    std::vector<std::uint8_t> next;
    enc.encode_status({}, next);

    net::tel_decoder dec;
    net::tel_frame out;
    std::vector<std::uint8_t> buffer = bad;
    buffer.insert(buffer.end(), next.begin(), next.end());
    EXPECT_EQ(dec.pull(buffer, out), net::tel_pull::reject);
    EXPECT_EQ(dec.pull(buffer, out), net::tel_pull::frame);
    EXPECT_EQ(dec.stats().bad_magic, 1u);
    EXPECT_EQ(dec.stats().frames, 1u);
}

TEST(TelWireTest, SequenceGapsAndReorderAreCounted) {
    net::tel_encoder enc("n");
    std::vector<std::uint8_t> f0, f1, f2;
    enc.encode_status({}, f0);  // seq 0
    enc.encode_status({}, f1);  // seq 1
    enc.encode_status({}, f2);  // seq 2

    net::tel_decoder dec;
    net::tel_frame out;
    ASSERT_TRUE(dec.decode(f0.data() + 4, f0.size() - 4, out));
    ASSERT_TRUE(dec.decode(f2.data() + 4, f2.size() - 4, out));  // skip 1
    EXPECT_EQ(dec.stats().seq_gaps, 1u);
    ASSERT_TRUE(dec.decode(f1.data() + 4, f1.size() - 4, out));  // late
    EXPECT_EQ(dec.stats().seq_reorder, 1u);
    EXPECT_EQ(dec.stats().frames, 3u);  // reordered frames still count
}

// -------------------------------------------------- federate helpers

TEST(FederateTest, NodeLabelJoinsIdentityOntoTheBaseLabel) {
    EXPECT_EQ(obs::federate::node_label("", "edge-1"), "node=edge-1");
    EXPECT_EQ(obs::federate::node_label("asn=13335", "edge-1"),
              "asn=13335,node=edge-1");
}

TEST(FederateTest, SerializeSealSketchesRoundTripsEverySketch) {
    obs::federate::seal_snapshot snap;
    snap.day = 9;
    snap.has_sketches = true;
    snap.addresses = make_hll(12, 1, 300);
    snap.p48s = make_hll(12, 2, 200);
    snap.p64s = make_hll(12, 3, 100);
    for (int i = 1; i <= 64; ++i) {
        snap.hits_p50.observe(i);
        snap.hits_p99.observe(i * i);
    }
    const std::vector<net::tel_sketch> wire =
        obs::federate::serialize_seal_sketches(snap);
    ASSERT_EQ(wire.size(), 5u);
    const auto back0 =
        obs::hyperloglog::deserialize(wire[0].payload.data(),
                                      wire[0].payload.size());
    ASSERT_TRUE(back0.has_value());
    EXPECT_TRUE(*back0 == snap.addresses);
    const auto back4 = obs::p2_quantile::deserialize(wire[4].payload.data(),
                                                     wire[4].payload.size());
    ASSERT_TRUE(back4.has_value());
    EXPECT_TRUE(*back4 == snap.hits_p99);

    obs::federate::seal_snapshot empty;
    EXPECT_TRUE(obs::federate::serialize_seal_sketches(empty).empty());
}

// --------------------------------------------- pusher <-> aggregator

class FederateE2eTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (std::filesystem::temp_directory_path() /
                ("v6_federate_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string dir_;
};

TEST_F(FederateE2eTest, GlobalSketchIsTheBitExactCrossNodeUnion) {
    obs::federate::telemetry_aggregator agg({});
    std::string error;
    ASSERT_TRUE(agg.start(&error)) << error;

    // Two nodes with overlapping element sets, as two vantage points
    // seeing partly the same addresses would produce.
    obs::federate::seal_snapshot a, b;
    a.day = b.day = 7;
    a.has_sketches = b.has_sketches = true;
    a.addresses = make_hll(14, 1, 4000);
    a.p48s = make_hll(12, 2, 700);
    a.p64s = make_hll(12, 3, 900);
    b.addresses = make_hll(14, 1, 2000);  // subset of a's stream
    b.addresses.merge(make_hll(14, 99, 3000));  // plus its own
    b.p48s = make_hll(12, 4, 600);
    b.p64s = make_hll(12, 3, 900);  // identical to a's

    {
        obs::federate::telemetry_pusher pa({"127.0.0.1", agg.port(), "a"});
        obs::federate::telemetry_pusher pb({"127.0.0.1", agg.port(), "b"});
        ASSERT_TRUE(pa.push_seal(a));
        ASSERT_TRUE(pb.push_seal(b));
        EXPECT_EQ(pa.send_failures(), 0u);
    }

    ASSERT_TRUE(wait_for([&] {
        return agg.global_sketch(7, net::kTelSketchDay64s).has_value() &&
               agg.decode_stats().frames >= 2;
    }));

    obs::hyperloglog want_addr = a.addresses;
    want_addr.merge(b.addresses);
    obs::hyperloglog want_48 = a.p48s;
    want_48.merge(b.p48s);
    obs::hyperloglog want_64 = a.p64s;
    want_64.merge(b.p64s);

    const auto got_addr =
        agg.global_sketch(7, net::kTelSketchDayAddresses);
    const auto got_48 = agg.global_sketch(7, net::kTelSketchDay48s);
    const auto got_64 = agg.global_sketch(7, net::kTelSketchDay64s);
    ASSERT_TRUE(got_addr && got_48 && got_64);
    // Same registers, not approximately-equal estimates: the union is
    // exact because register-wise max commutes with serialization.
    EXPECT_TRUE(*got_addr == want_addr);
    EXPECT_TRUE(*got_48 == want_48);
    EXPECT_TRUE(*got_64 == want_64);
    EXPECT_EQ(*agg.global_estimate(7, net::kTelSketchDayAddresses),
              want_addr.estimate());
    EXPECT_EQ(agg.newest_day(), 7);

    // Idempotence: a reconnecting node re-pushing the same day must not
    // change the union.
    {
        obs::federate::telemetry_pusher pa({"127.0.0.1", agg.port(), "a"});
        ASSERT_TRUE(pa.push_seal(a));
    }
    ASSERT_TRUE(wait_for([&] { return agg.decode_stats().frames >= 3; }));
    EXPECT_TRUE(*agg.global_sketch(7, net::kTelSketchDayAddresses) ==
                want_addr);
    agg.stop();
}

TEST_F(FederateE2eTest, SeriesLandInTheTsdbUnderNodeLabels) {
    obs::registry reg;
    obs::event_log log;
    std::string error;
    auto tsdb = obs::tsdb::database::open(dir_, {}, &error);
    ASSERT_TRUE(tsdb) << error;

    obs::federate::telemetry_aggregator::config cfg;
    cfg.metrics = &reg;
    cfg.events = &log;
    cfg.tsdb = tsdb.get();
    obs::federate::telemetry_aggregator agg(cfg);
    ASSERT_TRUE(agg.start(&error)) << error;

    obs::federate::telemetry_pusher push({"127.0.0.1", agg.port(), "edge-1"});
    net::tel_status st;
    st.records = 500;
    st.open_day = 13;
    st.sealed_day = 12;
    ASSERT_TRUE(push.push_status(st));
    ASSERT_TRUE(push.push_series({{"v6class_gamma16_48", "", 12, 41.5},
                                  {"v6class_active_addresses", "", 12, 900}}));
    obs::event e;
    e.unix_time = 1722950000.5;
    e.level = obs::event_level::warn;
    e.kind = "drift";
    e.message = "moved";
    ASSERT_TRUE(push.push_events({e}));

    ASSERT_TRUE(wait_for([&] { return agg.decode_stats().frames >= 3; }));

    // Node registry reflects the status frame.
    const auto nodes = agg.nodes();
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0].name, "edge-1");
    EXPECT_TRUE(nodes[0].fresh);
    EXPECT_EQ(nodes[0].records, 500u);
    EXPECT_EQ(nodes[0].open_day, 13);
    EXPECT_EQ(nodes[0].sealed_day, 12);

    // Series landed under the node= label.
    const auto pts = tsdb->query("v6class_gamma16_48", "node=edge-1",
                                 INT64_MIN, INT64_MAX);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].ts, 12);
    EXPECT_EQ(pts[0].value, 41.5);

    // The forwarded event carries its origin node.
    const auto events = log.recent(16);
    bool saw = false;
    for (const obs::event& ev : events)
        if (ev.kind == "drift") {
            saw = true;
            ASSERT_FALSE(ev.fields.empty());
            EXPECT_EQ(ev.fields.back().first, "node");
            EXPECT_EQ(ev.fields.back().second, "\"edge-1\"");
        }
    EXPECT_TRUE(saw);

    // nodes_json is one well-formed fleet summary.
    const std::string json = agg.nodes_json();
    EXPECT_NE(json.find("\"node\":\"edge-1\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"records\":500"), std::string::npos) << json;
    agg.stop();
}

TEST_F(FederateE2eTest, HttpServesNodesAndNodeLabeledSeries) {
    obs::registry reg;
    std::string error;
    auto tsdb = obs::tsdb::database::open(dir_, {}, &error);
    ASSERT_TRUE(tsdb) << error;

    obs::federate::telemetry_aggregator::config cfg;
    cfg.metrics = &reg;
    cfg.tsdb = tsdb.get();
    obs::federate::telemetry_aggregator agg(cfg);
    ASSERT_TRUE(agg.start(&error)) << error;

    obs::metrics_server server;
    agg.register_http(server);
    obs::tsdb::register_history_api(server, tsdb.get());
    ASSERT_TRUE(server.start(0, &reg, &error)) << error;

    obs::federate::telemetry_pusher push({"127.0.0.1", agg.port(), "edge-9"});
    ASSERT_TRUE(push.push_series({{"v6class_stable_fraction", "", 3, 0.75}}));
    ASSERT_TRUE(wait_for([&] { return agg.decode_stats().frames >= 1; }));

    const std::string nodes = http_get(server.port(), "/api/nodes");
    EXPECT_NE(nodes.find("200 OK"), std::string::npos);
    EXPECT_NE(nodes.find("\"node\":\"edge-9\""), std::string::npos) << nodes;

    // The per-node series is discoverable and queryable with its
    // node= label through the shared history API.
    const std::string dir = http_get(server.port(), "/api/series");
    EXPECT_NE(dir.find("node=edge-9"), std::string::npos) << dir;
    const std::string series = http_get(
        server.port(),
        "/api/series?name=v6class_stable_fraction&label=node%3Dedge-9");
    EXPECT_NE(series.find("[3,0.75]"), std::string::npos) << series;

    // The fleet metrics ride the same registry.
    const std::string metrics = http_get(server.port(), "/metrics");
    EXPECT_NE(metrics.find("v6fleet_frames_total 1"), std::string::npos)
        << metrics;
    server.stop();
    agg.stop();
}

TEST_F(FederateE2eTest, NodeAbsenceAlertReachesFiringWithinOneHoldDown) {
    obs::registry reg;
    obs::event_log log;
    obs::federate::telemetry_aggregator::config cfg;
    cfg.metrics = &reg;
    cfg.events = &log;
    cfg.staleness = std::chrono::milliseconds(150);
    obs::federate::telemetry_aggregator agg(cfg);
    std::string error;
    ASSERT_TRUE(agg.start(&error)) << error;

    // The node= sugar expands to the aggregator's liveness series.
    const auto rules =
        obs::parse_alert_rules("collector-gone node=edge-1 level=error");
    ASSERT_TRUE(rules.has_value());
    ASSERT_EQ(rules->size(), 1u);
    EXPECT_EQ((*rules)[0].series, "v6fleet_node_up");
    EXPECT_EQ((*rules)[0].label, "node=edge-1");
    EXPECT_EQ((*rules)[0].cond, obs::alert_cond::absent);

    obs::alert_engine alerts(&reg, &log);
    alerts.load_rules(*rules);
    const auto sampler = [&agg](const std::string& series,
                                const std::string& label) {
        return agg.sample(series, label);
    };

    {
        obs::federate::telemetry_pusher push(
            {"127.0.0.1", agg.port(), "edge-1"});
        ASSERT_TRUE(push.push_status({}));
        ASSERT_TRUE(wait_for([&] { return !agg.nodes().empty(); }));
        alerts.evaluate(sampler, 1);
        EXPECT_EQ(alerts.firing_count(), 0u);  // fresh: sample present
    }
    // Pusher gone: once the staleness window passes, the very next
    // evaluation fires (absent=1, for=0 — one hold-down).
    ASSERT_TRUE(wait_for([&] {
        const auto nodes = agg.nodes();
        return !nodes.empty() && !nodes[0].fresh;
    }));
    alerts.evaluate(sampler, 2);
    EXPECT_EQ(alerts.firing_count(), 1u);
    const auto snap = alerts.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].state, obs::alert_state::firing);
    agg.stop();
}

TEST_F(FederateE2eTest, NodeLevelSequenceGapsSurviveReconnects) {
    obs::federate::telemetry_aggregator agg({});
    std::string error;
    ASSERT_TRUE(agg.start(&error)) << error;

    // Hand-build three status frames and deliver only seq 0 and 2, on
    // two separate connections: the per-connection decoder can't see
    // the gap (fresh decoder per connection), the node registry must.
    net::tel_encoder enc("edge-2");
    std::vector<std::uint8_t> f0, f1, f2;
    enc.encode_status({}, f0);
    enc.encode_status({}, f1);  // never sent
    enc.encode_status({}, f2);
    send_raw(agg.port(), f0);
    ASSERT_TRUE(wait_for([&] { return agg.decode_stats().frames >= 1; }));
    send_raw(agg.port(), f2);
    ASSERT_TRUE(wait_for([&] { return agg.decode_stats().frames >= 2; }));

    const auto nodes = agg.nodes();
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0].seq_gaps, 1u);
    EXPECT_EQ(nodes[0].frames, 2u);
    agg.stop();
}

TEST_F(FederateE2eTest, MalformedFramesAreCountedWithoutKillingTheStream) {
    obs::registry reg;
    obs::federate::telemetry_aggregator::config cfg;
    cfg.metrics = &reg;
    obs::federate::telemetry_aggregator agg(cfg);
    std::string error;
    ASSERT_TRUE(agg.start(&error)) << error;

    net::tel_encoder enc("edge-3");
    std::vector<std::uint8_t> good1, bad, good2;
    enc.encode_status({}, good1);
    enc.encode_status({}, bad);
    bad[4] ^= 0xff;  // corrupt the magic inside a valid length frame
    enc.encode_status({}, good2);
    std::vector<std::uint8_t> stream = good1;
    stream.insert(stream.end(), bad.begin(), bad.end());
    stream.insert(stream.end(), good2.begin(), good2.end());
    send_raw(agg.port(), stream);

    ASSERT_TRUE(wait_for([&] { return agg.decode_stats().frames >= 2; }));
    const net::tel_decode_stats stats = agg.decode_stats();
    EXPECT_EQ(stats.frames, 2u);       // both good frames survived
    EXPECT_EQ(stats.bad_magic, 1u);    // the middle one was counted
    EXPECT_EQ(stats.rejected(), 1u);
    agg.stop();
}

// --------------------------------------------------- engine seal hook

TEST(FederateEngineTest, SealHookReceivesSeriesAndSketchesPerDay) {
    std::mutex mu;
    std::vector<obs::federate::seal_snapshot> seen;
    stream_config cfg;
    cfg.shards = 2;
    cfg.batch_size = 8;
    cfg.queue_capacity = 4;
    cfg.federate = [&](const obs::federate::seal_snapshot& s) {
        std::lock_guard lock(mu);
        seen.push_back(s);
    };
    stream_engine engine(cfg);
    for (unsigned i = 0; i < 50; ++i)
        engine.push(3, address::from_pair(0x20010db800000000ull + i, i), 1);
    for (unsigned i = 0; i < 30; ++i)
        engine.push(4, address::from_pair(0x20010db900000000ull + i, i), 2);
    engine.finish();

    std::lock_guard lock(mu);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].day, 3);
    EXPECT_EQ(seen[1].day, 4);
    for (const obs::federate::seal_snapshot& s : seen) {
        EXPECT_FALSE(s.series.empty());
        ASSERT_TRUE(s.has_sketches);
    }
    // The pushed sketch is the engine's own merged day sketch: its
    // estimate must agree exactly with the day report's estimate.
    const std::vector<day_report> reports = engine.reports();
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(seen[0].addresses.estimate(), reports[0].est_day_addresses);
    EXPECT_EQ(seen[1].addresses.estimate(), reports[1].est_day_addresses);
}

TEST(FederateEngineTest, EngineToAggregatorEndToEndUnionIsExact) {
    // The acceptance path: two engines classify different (overlapping)
    // feeds, each seals through a pusher; the aggregator's global /64
    // estimate must equal the estimate of the locally-merged teed
    // sketches — same registers, not approximately.
    obs::federate::telemetry_aggregator agg({});
    std::string error;
    ASSERT_TRUE(agg.start(&error)) << error;

    std::mutex mu;
    std::vector<obs::federate::seal_snapshot> teed;
    const auto run_engine = [&](const char* node, std::uint64_t base) {
        obs::federate::telemetry_pusher push({"127.0.0.1", agg.port(), node});
        stream_config cfg;
        cfg.shards = 2;
        cfg.batch_size = 8;
        cfg.queue_capacity = 4;
        cfg.federate = [&](const obs::federate::seal_snapshot& s) {
            push.push_seal(s);
            std::lock_guard lock(mu);
            teed.push_back(s);
        };
        stream_engine engine(cfg);
        for (unsigned i = 0; i < 400; ++i)
            engine.push(6, address::from_pair(base + i / 4, i), 1);
        engine.finish();
    };
    run_engine("east", 0x20010db800000000ull);
    run_engine("west", 0x20010db800000020ull);  // overlaps east's /64s

    ASSERT_TRUE(wait_for([&] {
        return agg.global_sketch(6, net::kTelSketchDay64s).has_value() &&
               agg.decode_stats().frames >= 4;  // 2 nodes x (series+sketches)
    }));
    std::lock_guard lock(mu);
    ASSERT_EQ(teed.size(), 2u);
    obs::hyperloglog local = teed[0].p64s;
    local.merge(teed[1].p64s);
    const auto global = agg.global_sketch(6, net::kTelSketchDay64s);
    ASSERT_TRUE(global.has_value());
    EXPECT_TRUE(*global == local);
    EXPECT_EQ(*agg.global_estimate(6, net::kTelSketchDay64s),
              local.estimate());
    agg.stop();
}

// ------------------------------------------------------- concurrency

TEST(FederateConcurrencyTest, ConcurrentPushScrapeAndSealStayClean) {
    // TSan target: two pusher threads sealing/statusing, one scraper
    // thread reading every public surface, while the rx thread ingests.
    obs::registry reg;
    obs::event_log log;
    obs::federate::telemetry_aggregator::config cfg;
    cfg.metrics = &reg;
    cfg.events = &log;
    obs::federate::telemetry_aggregator agg(cfg);
    std::string error;
    ASSERT_TRUE(agg.start(&error)) << error;

    std::atomic<bool> stop{false};
    const auto pusher_loop = [&](const char* node, std::uint64_t seed) {
        obs::federate::telemetry_pusher push({"127.0.0.1", agg.port(), node});
        for (int i = 0; i < 40; ++i) {
            net::tel_status st;
            st.records = static_cast<std::uint64_t>(i);
            st.sealed_day = i;
            push.push_status(st);
            obs::federate::seal_snapshot snap;
            snap.day = i;
            snap.has_sketches = true;
            snap.addresses = make_hll(8, seed + i, 50);
            snap.p48s = make_hll(8, seed + i + 1, 50);
            snap.p64s = make_hll(8, seed + i + 2, 50);
            push.push_seal(snap);
        }
    };
    std::thread a(pusher_loop, "a", 1);
    std::thread b(pusher_loop, "b", 1000);
    std::thread scraper([&] {
        while (!stop.load()) {
            (void)agg.nodes_json();
            (void)agg.decode_stats();
            (void)agg.nodes();
            (void)agg.global_estimate(agg.newest_day(),
                                      net::kTelSketchDayAddresses);
            (void)agg.sample("v6fleet_node_up", "node=a");
            (void)reg.prometheus_text();
            std::this_thread::sleep_for(1ms);
        }
    });
    a.join();
    b.join();
    ASSERT_TRUE(wait_for([&] { return agg.decode_stats().frames >= 100; }));
    stop.store(true);
    scraper.join();
    agg.stop();
    EXPECT_GE(agg.decode_stats().frames, 100u);
    EXPECT_EQ(agg.decode_stats().rejected(), 0u);
}

}  // namespace
}  // namespace v6
