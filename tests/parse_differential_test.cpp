// Differential tests: v6::address::parse against the platform's
// inet_pton/inet_ntop oracle, across valid, invalid, and mutated inputs.
#include <arpa/inet.h>
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>

#include "v6class/ip/address.h"
#include "v6class/netgen/rng.h"

namespace v6 {
namespace {

// Parses with the platform oracle; returns the 16 bytes on success.
std::optional<std::array<std::uint8_t, 16>> oracle_parse(const std::string& text) {
    std::array<std::uint8_t, 16> bytes{};
    if (inet_pton(AF_INET6, text.c_str(), bytes.data()) == 1) return bytes;
    return std::nullopt;
}

void expect_agreement(const std::string& text) {
    const auto ours = address::parse(text);
    const auto theirs = oracle_parse(text);
    ASSERT_EQ(ours.has_value(), theirs.has_value()) << "input: \"" << text << '"';
    if (ours) EXPECT_EQ(ours->bytes(), *theirs) << "input: \"" << text << '"';
}

TEST(ParseDifferentialTest, HandPickedCorpus) {
    for (const char* text : {
             "::", "::1", "1::", "2001:db8::1", "1:2:3:4:5:6:7:8",
             "2001:0db8:0000:0000:0000:0000:0000:0001", "fe80::1%eth0",
             "::ffff:192.0.2.33", "64:ff9b::192.0.2.33", "1:2:3:4:5:6:7::",
             "::2:3:4:5:6:7:8", "1::8", "2001:db8::192.0.2.33",
             "12345::", "1:2:3:4:5:6:7:8:9", "::1::", ":1::2", "1.2.3.4",
             "g::", "2001:db8:::1", "", ":", "::x", "1:2:3:4:5:6:7",
             "2001:db8::1 ", " 2001:db8::1", "0:0:0:0:0:0:0:0",
             "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
             "2001:db8:0:0:1:0:0:1", "::0.0.0.0", "::255.255.255.255",
             "::256.1.1.1", "::1.2.3", "::01.2.3.4", "0::0.0.0.0",
         }) {
        expect_agreement(text);
    }
}

// Random canonical addresses must round-trip through both parsers and
// both formatters identically (our to_string is RFC 5952, which
// inet_ntop implements on glibc).
class ParseDifferentialRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParseDifferentialRoundTrip, CanonicalFormsAgree) {
    rng r{GetParam() * 31 + 7};
    for (int i = 0; i < 2000; ++i) {
        // Bias toward zero-rich addresses to exercise "::" compression.
        std::array<std::uint16_t, 8> hextets{};
        for (auto& h : hextets)
            h = r.chance(0.4) ? 0 : static_cast<std::uint16_t>(r.uniform(0x10000));
        const address a = address::from_hextets(hextets);

        char oracle_buf[INET6_ADDRSTRLEN] = {};
        ASSERT_NE(inet_ntop(AF_INET6, a.bytes().data(), oracle_buf,
                            sizeof oracle_buf),
                  nullptr);
        const std::string oracle_text = oracle_buf;
        // glibc uses the embedded-IPv4 form for ::a.b.c.d / ::ffff:a.b.c.d;
        // our canonical form is pure hex. Both must parse to the same
        // bytes either way.
        const auto reparsed_oracle = address::parse(oracle_text);
        ASSERT_TRUE(reparsed_oracle.has_value()) << oracle_text;
        EXPECT_EQ(*reparsed_oracle, a);

        const std::string ours = a.to_string();
        const auto oracle_reparse = oracle_parse(ours);
        ASSERT_TRUE(oracle_reparse.has_value()) << ours;
        EXPECT_EQ(*oracle_reparse, a.bytes());
        // And where the oracle did not choose the dotted form, the
        // strings must be identical (both RFC 5952).
        if (oracle_text.find('.') == std::string::npos)
            EXPECT_EQ(ours, oracle_text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseDifferentialRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 6));

// Mutation fuzzing: take a valid presentation, splice random characters,
// and require parse agreement with the oracle on every mutant.
class ParseDifferentialMutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParseDifferentialMutation, MutantsAgree) {
    rng r{GetParam() * 97 + 13};
    static constexpr char alphabet[] = "0123456789abcdef:.%g ";
    for (int i = 0; i < 3000; ++i) {
        std::array<std::uint16_t, 8> hextets{};
        for (auto& h : hextets)
            h = r.chance(0.5) ? 0 : static_cast<std::uint16_t>(r.uniform(0x10000));
        std::string text = address::from_hextets(hextets).to_string();
        const unsigned mutations = 1 + static_cast<unsigned>(r.uniform(3));
        for (unsigned m = 0; m < mutations && !text.empty(); ++m) {
            const std::size_t pos = r.uniform(text.size());
            switch (r.uniform(3)) {
                case 0: text[pos] = alphabet[r.uniform(sizeof alphabet - 1)]; break;
                case 1: text.erase(pos, 1); break;
                default:
                    text.insert(pos, 1, alphabet[r.uniform(sizeof alphabet - 1)]);
            }
        }
        expect_agreement(text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseDifferentialMutation,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace v6
