// Unit tests for the Section 6.1.1 EUI-64 mobility analysis.
#include <gtest/gtest.h>

#include "v6class/analysis/eui64_mobility.h"
#include "v6class/netgen/iid.h"

namespace v6 {
namespace {

address eui_at(std::uint64_t hi, const mac_address& mac) {
    return address::from_pair(hi, mac.to_eui64_iid());
}

TEST(Eui64MobilityTest, EmptyWindow) {
    daily_series series;
    const auto report = analyze_eui64_mobility(series, 5);
    EXPECT_EQ(report.unstable_eui64_addresses, 0u);
    EXPECT_DOUBLE_EQ(report.multiple_share(), 0.0);
    EXPECT_DOUBLE_EQ(report.also_stable_share(), 0.0);
}

TEST(Eui64MobilityTest, StableDeviceCountsAsStable) {
    const mac_address mac = device_mac(1);
    daily_series series;
    for (int d = 0; d <= 10; ++d) series.set_day(d, {eui_at(0xaa, mac)});
    const auto report = analyze_eui64_mobility(series, 5);
    EXPECT_EQ(report.stable_eui64_addresses, 1u);
    EXPECT_EQ(report.unstable_eui64_addresses, 0u);
}

TEST(Eui64MobilityTest, MovedDeviceIsUnstableWithMultipleAddresses) {
    // The device appears under a new network identifier each day: every
    // address is single-day, the IID is in many addresses, none stable.
    const mac_address mac = device_mac(2);
    daily_series series;
    for (int d = 0; d <= 10; ++d)
        series.set_day(d, {eui_at(0x1000 + static_cast<std::uint64_t>(d), mac)});
    const auto report = analyze_eui64_mobility(series, 5);
    EXPECT_EQ(report.stable_eui64_addresses, 0u);
    EXPECT_EQ(report.unstable_eui64_addresses, 1u);
    EXPECT_EQ(report.iid_in_multiple_addresses, 1u);
    EXPECT_EQ(report.iid_also_stable, 0u);
}

TEST(Eui64MobilityTest, HomeAndAwayDeviceIsAlsoStable) {
    // Stable at home, plus a one-day visit elsewhere on the reference
    // day: the away address is not stable, but its IID also owns a
    // stable (home) address.
    const mac_address mac = device_mac(3);
    daily_series series;
    for (int d = 0; d <= 10; ++d) {
        std::vector<address> active{eui_at(0xaa, mac)};
        if (d == 5) active.push_back(eui_at(0xbb, mac));
        series.set_day(d, std::move(active));
    }
    const auto report = analyze_eui64_mobility(series, 5);
    EXPECT_EQ(report.stable_eui64_addresses, 1u);
    EXPECT_EQ(report.unstable_eui64_addresses, 1u);
    EXPECT_EQ(report.iid_in_multiple_addresses, 1u);
    EXPECT_EQ(report.iid_also_stable, 1u);
    EXPECT_DOUBLE_EQ(report.also_stable_share(), 1.0);
}

TEST(Eui64MobilityTest, LoneSightingIsNeither) {
    // A single-day, single-address device: unstable but with a unique
    // IID-address pairing — contributes to neither numerator.
    const mac_address mac = device_mac(4);
    daily_series series;
    series.set_day(5, {eui_at(0xcc, mac)});
    const auto report = analyze_eui64_mobility(series, 5);
    EXPECT_EQ(report.unstable_eui64_addresses, 1u);
    EXPECT_EQ(report.iid_in_multiple_addresses, 0u);
    EXPECT_EQ(report.iid_also_stable, 0u);
}

TEST(Eui64MobilityTest, NonEuiAddressesAreIgnored) {
    daily_series series;
    series.set_day(5, {address::from_pair(0xaa, privacy_iid(0x123456789abcdefull))});
    const auto report = analyze_eui64_mobility(series, 5);
    EXPECT_EQ(report.unstable_eui64_addresses, 0u);
    EXPECT_EQ(report.stable_eui64_addresses, 0u);
}

}  // namespace
}  // namespace v6
