// Seed-robustness tests: the headline conclusions of the reproduction
// must hold across different world seeds, not just the default bench
// seed. Each case re-derives one EXPERIMENTS.md claim on a small world.
#include <gtest/gtest.h>

#include <algorithm>

#include "v6class/analysis/network_profile.h"
#include "v6class/cdnsim/world.h"
#include "v6class/routersim/targets.h"
#include "v6class/routersim/topology.h"
#include "v6class/spatial/mra.h"
#include "v6class/temporal/stability.h"

namespace v6 {
namespace {

world_config seeded(std::uint64_t seed) {
    world_config cfg;
    cfg.seed = seed;
    cfg.scale = 0.12;
    cfg.tail_isps = 10;
    return cfg;
}

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustness, Table1ShapeHolds) {
    const world w(seeded(GetParam()));
    const auto cull = cull_transition(w.active_addresses(kMar2015));
    const double total = static_cast<double>(
        cull.teredo.size() + cull.isatap.size() + cull.six_to_four.size() +
        cull.other.size());
    EXPECT_GT(cull.other.size() / total, 0.90);
    EXPECT_LT(cull.six_to_four.size() / total, 0.10);
    // The mix grows over the study year.
    EXPECT_GT(w.active_addresses(kMar2015).size(),
              w.active_addresses(kMar2014).size());
}

TEST_P(SeedRobustness, StabilityGapHolds) {
    const world w(seeded(GetParam()));
    const daily_series series = w.series(kMar2015 - 7, kMar2015 + 7);
    stability_analyzer addr_an(series);
    const auto addrs = addr_an.classify_day(kMar2015, 3);
    const double addr_rate =
        static_cast<double>(addrs.stable.size()) /
        static_cast<double>(addrs.stable.size() + addrs.not_stable.size());
    const daily_series p64 = series.project(64);
    stability_analyzer pfx_an(p64);
    const auto pfx = pfx_an.classify_day(kMar2015, 3);
    const double pfx_rate =
        static_cast<double>(pfx.stable.size()) /
        static_cast<double>(pfx.stable.size() + pfx.not_stable.size());
    // The paper's core temporal finding: /64s are enormously more stable
    // than addresses, at any seed.
    EXPECT_LT(addr_rate, 0.35);
    EXPECT_GT(pfx_rate, 0.6);
    EXPECT_GT(pfx_rate, 3 * addr_rate);
}

TEST_P(SeedRobustness, StableTargetsBeatBaselineAtAnySeed) {
    const world w(seeded(GetParam()));
    const router_topology topo(w);
    const daily_series series = w.series(kMar2015 - 7, kMar2015 + 7);
    stability_analyzer an(series);
    const auto split = an.classify_day(kMar2015, 3);
    const std::vector<address>& live = series.day(kMar2015 + 5);
    const std::size_t budget = 2000;
    const auto baseline = ipv4_style_targets(
        topo.resolver_addresses(), series.day(kMar2015), budget, GetParam());
    const auto informed =
        stable_informed_targets(split.stable, budget, GetParam());
    EXPECT_GT(topo.probe_campaign(informed, live).size(),
              topo.probe_campaign(baseline, live).size());
}

TEST_P(SeedRobustness, MobileMraSaturationHolds) {
    const world w(seeded(GetParam()));
    std::vector<observation> obs;
    for (int d = kMar2015; d < kMar2015 + 7; ++d)
        w.mobile1().day_activity(d, obs);
    std::vector<address> addrs;
    addrs.reserve(obs.size());
    for (const auto& o : obs) addrs.push_back(o.addr);
    const mra_series mra = compute_mra(std::move(addrs));
    // The pool segment dominates at every seed (value scales with pool).
    EXPECT_GT(mra.ratio(48, 16), 50.0);
    EXPECT_LT(mra.ratio(0, 16), 10.0);
}

TEST_P(SeedRobustness, PracticeInferenceHolds) {
    const world w(seeded(GetParam()));
    daily_series raw = w.series(kMar2015 - 7, kMar2015 + 7);
    daily_series native;
    for (const int d : raw.days())
        native.set_day(d, cull_transition(raw.day(d)).other);
    const auto profiles = profile_networks(w.registry(), native, kMar2015);
    const auto guess_of = [&](std::uint32_t asn) {
        for (const auto& p : profiles)
            if (p.asn == asn) return p.guess;
        return practice_guess::unknown;
    };
    EXPECT_EQ(guess_of(20001), practice_guess::dynamic_64_pool);
    EXPECT_EQ(guess_of(20011), practice_guess::shared_dense);
    const practice_guess jp = guess_of(20004);
    EXPECT_TRUE(jp == practice_guess::static_per_subscriber ||
                jp == practice_guess::privacy_sparse);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(7u, 1234u, 987654u));

}  // namespace
}  // namespace v6
