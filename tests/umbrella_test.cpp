// Verifies the umbrella header compiles standalone and exposes the API.
#include "v6class/v6class.h"

#include <gtest/gtest.h>

namespace v6 {
namespace {

TEST(UmbrellaTest, EverythingIsVisible) {
    const address a = address::must_parse("2001:db8::1");
    EXPECT_EQ(classify(a).scope, address_scope::documentation);
    radix_tree tree;
    tree.add(a);
    EXPECT_EQ(tree.total(), 1u);
    prefix_map<int> routes;
    routes.insert(prefix::must_parse("2001:db8::/32"), 1);
    EXPECT_TRUE(routes.longest_match(a).has_value());
    daily_series series;
    series.set_day(0, {a});
    EXPECT_EQ(stability_analyzer(series).count_stable(0, 1), 0u);
    EXPECT_EQ(compute_mra({a}).size(), 1u);
}

}  // namespace
}  // namespace v6
