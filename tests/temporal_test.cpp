// Unit and property tests for the temporal (stability) classifier.
#include <gtest/gtest.h>

#include <algorithm>

#include "v6class/netgen/rng.h"
#include "v6class/temporal/stability.h"

namespace v6 {
namespace {

using namespace v6::literals;

address nth(unsigned i) {
    return address::from_pair(0x20010db800000000ull, 0x10000u + i);
}

TEST(DailySeriesTest, SetAndQuery) {
    daily_series s;
    s.set_day(5, {nth(2), nth(1), nth(2)});  // unsorted with duplicate
    EXPECT_EQ(s.count(5), 2u);
    EXPECT_TRUE(s.active_on(5, nth(1)));
    EXPECT_FALSE(s.active_on(5, nth(3)));
    EXPECT_TRUE(s.day(4).empty());
    EXPECT_TRUE(std::is_sorted(s.day(5).begin(), s.day(5).end()));
}

TEST(DailySeriesTest, MergeDay) {
    daily_series s;
    s.set_day(1, {nth(1)});
    s.merge_day(1, {nth(2), nth(1)});
    EXPECT_EQ(s.count(1), 2u);
    s.merge_day(2, {nth(9)});  // merge into an absent day behaves as set
    EXPECT_EQ(s.count(2), 1u);
}

TEST(DailySeriesTest, UnionOver) {
    daily_series s;
    s.set_day(1, {nth(1), nth(2)});
    s.set_day(2, {nth(2), nth(3)});
    s.set_day(5, {nth(9)});
    const auto u = s.union_over(1, 2);
    EXPECT_EQ(u.size(), 3u);
    EXPECT_EQ(s.union_over(1, 5).size(), 4u);
    EXPECT_TRUE(s.union_over(3, 4).empty());
}

TEST(DailySeriesTest, ProjectTo64) {
    daily_series s;
    s.set_day(1, {address::from_pair(0x20010db800000001ull, 1),
                  address::from_pair(0x20010db800000001ull, 2),
                  address::from_pair(0x20010db800000002ull, 1)});
    const daily_series p = s.project(64);
    EXPECT_EQ(p.count(1), 2u);  // two distinct /64s
    EXPECT_TRUE(p.active_on(1, address::from_pair(0x20010db800000001ull, 0)));
}

TEST(DailySeriesTest, Days) {
    daily_series s;
    s.set_day(3, {});
    s.set_day(1, {nth(1)});
    const auto d = s.days();
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0], 1);
    EXPECT_EQ(d[1], 3);
}

TEST(SetOpsTest, IntersectAndUnion) {
    const std::vector<address> a{nth(1), nth(2), nth(3)};
    const std::vector<address> b{nth(2), nth(3), nth(4)};
    const auto i = intersect_sorted(a, b);
    ASSERT_EQ(i.size(), 2u);
    EXPECT_EQ(i[0], nth(2));
    const auto u = union_sorted(a, b);
    EXPECT_EQ(u.size(), 4u);
}

// ------------------------------------------------------------ stability

TEST(StabilityTest, PaperDefinitionExamples) {
    // Section 5.1: seen March 17 and 18 -> 1d-stable; seen March 17 and
    // 19 -> 2d-stable (and 1d-stable); nd-stable implies (n-1)d-stable.
    daily_series s;
    s.set_day(17, {nth(1), nth(2)});
    s.set_day(18, {nth(1)});
    s.set_day(19, {nth(2)});
    stability_analyzer an(s);
    EXPECT_EQ(an.count_stable(17, 1), 2u);  // both are 1d-stable
    EXPECT_EQ(an.count_stable(17, 2), 1u);  // only nth(2) is 2d-stable
    EXPECT_EQ(an.count_stable(17, 3), 0u);
}

TEST(StabilityTest, SplitPartitionsReferenceDay) {
    daily_series s;
    s.set_day(10, {nth(1), nth(2), nth(3)});
    s.set_day(13, {nth(2)});
    stability_analyzer an(s);
    const stability_split split = an.classify_day(10, 3);
    ASSERT_EQ(split.stable.size(), 1u);
    EXPECT_EQ(split.stable[0], nth(2));
    EXPECT_EQ(split.not_stable.size(), 2u);
    EXPECT_EQ(split.stable.size() + split.not_stable.size(), s.count(10));
}

TEST(StabilityTest, WindowClipsObservations) {
    daily_series s;
    s.set_day(0, {nth(1)});
    s.set_day(20, {nth(1)});
    stability_analyzer an(s);  // default window (-7d,+7d)
    // The other observation is outside the window: not stable.
    EXPECT_EQ(an.count_stable(20, 3), 0u);
    // Widen the window and it becomes 20d-stable.
    stability_analyzer wide(s, {.window_back = 25, .window_fwd = 7});
    EXPECT_EQ(wide.count_stable(20, 20), 1u);
}

TEST(StabilityTest, GapSpanningReferenceDayCounts) {
    // Activity on days 4 and 10, reference day 7 — the address is not
    // active on day 7, so it is not classified at all there; but
    // reference day 10 sees the day-4 observation 6 days back.
    daily_series s;
    s.set_day(4, {nth(1)});
    s.set_day(10, {nth(1)});
    stability_analyzer an(s);
    EXPECT_EQ(an.count_stable(7, 1), 0u);  // not active on the ref day
    EXPECT_EQ(an.count_stable(10, 6), 1u);
    EXPECT_EQ(an.count_stable(10, 7), 0u);
}

TEST(StabilityTest, MinMaxSpreadWithinWindow) {
    // Days 3 and 17 around reference 10: spread 14 >= n though neither
    // pair includes the reference day's neighbours.
    daily_series s;
    s.set_day(3, {nth(1)});
    s.set_day(10, {nth(1)});
    s.set_day(17, {nth(1)});
    stability_analyzer an(s);
    EXPECT_EQ(an.count_stable(10, 14), 1u);
}

TEST(StabilityTest, SlewToleranceDemandsWiderGap) {
    daily_series s;
    s.set_day(10, {nth(1)});
    s.set_day(13, {nth(1)});
    stability_analyzer strict(s, {.slew_tolerance = 1});
    EXPECT_EQ(strict.count_stable(10, 3), 0u);  // needs gap >= 4 now
    EXPECT_EQ(strict.count_stable(10, 2), 1u);
    stability_analyzer trusting(s);
    EXPECT_EQ(trusting.count_stable(10, 3), 1u);
}

TEST(StabilityTest, WeekRollupUnionsDays) {
    daily_series s;
    // nth(1) stable around day 10, nth(2) stable around day 16; both
    // must appear in the weekly union starting day 10.
    s.set_day(10, {nth(1)});
    s.set_day(14, {nth(1)});
    s.set_day(16, {nth(2)});
    s.set_day(13, {nth(2)});
    stability_analyzer an(s);
    const auto week = an.classify_week(10, 3);
    EXPECT_EQ(week.stable.size(), 2u);
}

TEST(StabilityTest, AddressCanBeBothStableAndNotOverAWeek) {
    // Stable relative to one reference day, not another — the paper
    // counts such addresses in both weekly rows, so the two unions can
    // overlap and their sizes need not sum to the distinct total.
    daily_series s;
    s.set_day(10, {nth(1)});
    s.set_day(12, {nth(1)});
    s.set_day(16, {nth(1)});
    stability_analyzer an(s, {.window_back = 2, .window_fwd = 2});
    const auto week = an.classify_week(10, 2);
    // Ref day 10 sees days 10 and 12 (gap 2): stable. Ref day 16's
    // window (14..18) sees only day 16: not stable.
    EXPECT_EQ(week.stable.size(), 1u);
    EXPECT_EQ(week.not_stable.size(), 1u);
}

TEST(StabilityTest, OverlapSeries) {
    daily_series s;
    s.set_day(1, {nth(1), nth(2)});
    s.set_day(2, {nth(2), nth(3)});
    s.set_day(3, {nth(4)});
    stability_analyzer an(s);
    const auto series = an.overlap_series(1, 1, 3);
    ASSERT_EQ(series.size(), 3u);
    EXPECT_EQ(series[0], 2u);  // self-overlap = active count
    EXPECT_EQ(series[1], 1u);
    EXPECT_EQ(series[2], 0u);
}

TEST(StabilityTest, EpochStable) {
    const std::vector<address> now{nth(1), nth(2), nth(5)};
    const std::vector<address> past{nth(2), nth(5), nth(9)};
    const auto stable = epoch_stable(now, past);
    EXPECT_EQ(stable.size(), 2u);
}

// Property: nd-stable is a subset of (n-1)d-stable, over random
// activity schedules.
class StabilityMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StabilityMonotonicity, NestedClasses) {
    rng r{GetParam()};
    daily_series s;
    for (int day = 0; day < 20; ++day) {
        std::vector<address> active;
        for (unsigned i = 0; i < 200; ++i)
            if (r.chance(0.3)) active.push_back(nth(i));
        s.set_day(day, std::move(active));
    }
    stability_analyzer an(s);
    std::uint64_t prev = s.count(10);
    for (unsigned n = 1; n <= 14; ++n) {
        const std::uint64_t count = an.count_stable(10, n);
        EXPECT_LE(count, prev) << "n=" << n;
        prev = count;
    }
    // And the nd-stable sets themselves are nested.
    const auto s3 = an.classify_day(10, 3).stable;
    const auto s2 = an.classify_day(10, 2).stable;
    EXPECT_TRUE(std::includes(s2.begin(), s2.end(), s3.begin(), s3.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StabilityMonotonicity,
                         ::testing::Range<std::uint64_t>(1, 9));

// Property: /64 stability is an upper bound on address stability.
TEST(StabilityTest, PrefixStabilityBoundsAddressStability) {
    rng r{77};
    daily_series s;
    for (int day = 0; day < 15; ++day) {
        std::vector<address> active;
        for (unsigned i = 0; i < 500; ++i)
            if (r.chance(0.4))
                active.push_back(
                    address::from_pair(0x20010db800000000ull + i % 50, r()));
        s.set_day(day, std::move(active));
    }
    const daily_series s64 = s.project(64);
    stability_analyzer addr_an(s);
    stability_analyzer pfx_an(s64);
    // "The upper limit on the number of stable addresses is the number
    // of stable /64s" — as proportions of their own actives, prefixes
    // are at least as stable.
    const double addr_rate = static_cast<double>(addr_an.count_stable(7, 3)) /
                             static_cast<double>(s.count(7));
    const double pfx_rate = static_cast<double>(pfx_an.count_stable(7, 3)) /
                            static_cast<double>(s64.count(7));
    EXPECT_GE(pfx_rate, addr_rate);
}

}  // namespace
}  // namespace v6
