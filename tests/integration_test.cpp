// End-to-end integration tests: the full pipeline from simulated logs
// through temporal and spatial classification, asserting the paper's
// qualitative findings hold in the reproduction.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "v6class/analysis/reports.h"
#include "v6class/cdnsim/world.h"
#include "v6class/routersim/targets.h"
#include "v6class/routersim/topology.h"
#include "v6class/spatial/density.h"
#include "v6class/spatial/mra.h"
#include "v6class/spatial/population.h"
#include "v6class/temporal/stability.h"

namespace v6 {
namespace {

class IntegrationTest : public ::testing::Test {
protected:
    static world_config cfg() {
        world_config c;
        c.scale = 0.15;
        c.tail_isps = 16;
        return c;
    }
    IntegrationTest() : w_(cfg()) {}
    world w_;
};

TEST_F(IntegrationTest, AddressesAreFarLessStableThanSlash64s) {
    // Table 2's headline: ~9% of addresses are 3d-stable but ~90% of
    // /64s are.
    const daily_series series = w_.series(kMar2015 - 7, kMar2015 + 7);
    const culled_addresses cull =
        cull_transition(series.day(kMar2015));
    daily_series native;
    for (const int d : series.days()) {
        const auto day_cull = cull_transition(series.day(d));
        native.set_day(d, day_cull.other);
    }
    stability_analyzer addr_an(native);
    const auto addr_split = addr_an.classify_day(kMar2015, 3);
    const double addr_rate =
        static_cast<double>(addr_split.stable.size()) /
        static_cast<double>(addr_split.stable.size() + addr_split.not_stable.size());

    const daily_series native64 = native.project(64);
    stability_analyzer pfx_an(native64);
    const auto pfx_split = pfx_an.classify_day(kMar2015, 3);
    const double pfx_rate =
        static_cast<double>(pfx_split.stable.size()) /
        static_cast<double>(pfx_split.stable.size() + pfx_split.not_stable.size());

    EXPECT_LT(addr_rate, 0.35);
    EXPECT_GT(pfx_rate, 0.55);
    EXPECT_GT(pfx_rate, addr_rate * 2);
    (void)cull;
}

TEST_F(IntegrationTest, MobileCarriersContributeStableAddressesDespiteDynamicPools) {
    // Section 6.1: of the long-lived addresses, a large share sits in
    // the mobile carriers (fixed IIDs over reused /64 pools).
    const daily_series series = w_.series(kMar2015 - 7, kMar2015 + 7);
    stability_analyzer an(series);
    const auto split = an.classify_day(kMar2015, 3);
    ASSERT_GT(split.stable.size(), 100u);
    std::size_t mobile_stable = 0;
    for (const address& a : split.stable) {
        const auto route = w_.registry().origin_of(a);
        if (route && (route->asn == 20001 || route->asn == 20002)) ++mobile_stable;
    }
    EXPECT_GT(static_cast<double>(mobile_stable) / split.stable.size(), 0.10);
}

TEST_F(IntegrationTest, EpochStabilityIsRareForAddressesCommonForPrefixes) {
    const auto now = cull_transition(w_.active_addresses(kMar2015)).other;
    const auto half_year_ago =
        cull_transition(w_.active_addresses(kSep2014)).other;
    const auto stable_addrs = epoch_stable(now, half_year_ago);
    const double addr_share =
        static_cast<double>(stable_addrs.size()) / static_cast<double>(now.size());

    auto to64 = [](const std::vector<address>& v) {
        std::vector<address> out;
        out.reserve(v.size());
        for (const address& a : v) out.push_back(a.masked(64));
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    };
    const auto now64 = to64(now);
    const auto stable_64s = epoch_stable(now64, to64(half_year_ago));
    const double pfx_share =
        static_cast<double>(stable_64s.size()) / static_cast<double>(now64.size());

    // Paper: 0.34% of addresses vs 27% of /64s were 6m-stable.
    EXPECT_LT(addr_share, 0.15);
    EXPECT_GT(pfx_share, 0.20);
    EXPECT_GT(pfx_share, addr_share * 3);
}

TEST_F(IntegrationTest, MobileWeeklyMraSaturatesPoolSegment) {
    // Figure 5e: the mobile carrier's 44..64 segment is near-saturated
    // over a week.
    std::vector<observation> obs;
    for (int d = kMar2015; d < kMar2015 + 7; ++d)
        w_.mobile1().day_activity(d, obs);
    std::vector<address> addrs;
    addrs.reserve(obs.size());
    for (const auto& o : obs) addrs.push_back(o.addr);
    const mra_series mra = compute_mra(addrs);
    // Aggregation ratio in the 48..64 segment approaches its 64K max —
    // at our scale, well above 1000.
    EXPECT_GT(mra.ratio(48, 16), 200.0);
}

TEST_F(IntegrationTest, JapanIspShowsFlatSegmentAndStableMacs) {
    std::vector<observation> obs;
    for (int d = kMar2015; d < kMar2015 + 7; ++d) w_.japan().day_activity(d, obs);
    std::vector<address> addrs;
    for (const auto& o : obs) addrs.push_back(o.addr);
    const mra_series mra = compute_mra(addrs);
    // Figure 5h: "the 48-64 bit segment exhibits seemingly no
    // aggregation".
    EXPECT_LT(mra.ratio(48, 16), 1.2);

    // 99%+ of EUI-64 IIDs appear in exactly one /64 over the week.
    std::map<std::uint64_t, std::set<std::uint64_t>> mac_64s;
    for (const address& a : addrs)
        if (const auto mac = eui64_mac(a)) mac_64s[mac->to_uint()].insert(a.hi());
    ASSERT_FALSE(mac_64s.empty());
    std::size_t single = 0;
    for (const auto& [mac, s] : mac_64s)
        if (s.size() == 1) ++single;
    EXPECT_GT(static_cast<double>(single) / mac_64s.size(), 0.98);
}

TEST_F(IntegrationTest, DepartmentYieldsDense112Prefixes) {
    // Figure 5g's selection criterion: the department /64 contains
    // multiple 2@/112-dense prefixes.
    std::vector<observation> obs;
    for (int d = 0; d < 7; ++d) w_.department().day_activity(d, obs);
    radix_tree t;
    std::set<address> uniq;
    for (const auto& o : obs) uniq.insert(o.addr);
    for (const address& a : uniq) t.add(a);
    const auto dense = t.dense_prefixes_at(2, 112);
    EXPECT_GE(dense.size(), 2u);
}

TEST_F(IntegrationTest, WwwClientDenseScanTargetsAreBounded) {
    // Section 6.2.2's final experiment: dense /112s among WWW clients
    // expand to a scannable target list.
    const auto addrs = cull_transition(w_.active_addresses(kMar2015)).other;
    radix_tree t;
    for (const address& a : addrs) t.add(a);
    const auto dense = t.dense_prefixes_at(2, 112);
    ASSERT_FALSE(dense.empty());
    const auto targets = expand_scan_targets(dense, 2'000'000);
    EXPECT_GT(targets.size(), dense.size());  // expansion really happened
    // Every covered client address is among the possible targets' space.
    const auto covered = addresses_covered(dense, addrs);
    EXPECT_GE(covered.size(), 2 * dense.size());
}

TEST_F(IntegrationTest, PopulationCcdfIsHeavyTailed) {
    const auto addrs = cull_transition(w_.active_addresses(kMar2015)).other;
    const auto ccdf = ccdf_of(aggregate_populations(addrs, 48));
    ASSERT_FALSE(ccdf.empty());
    // A tiny fraction of /48s holds populations orders of magnitude
    // above the median — Figure 3's core observation.
    EXPECT_LT(ccdf_at(ccdf, 1000.0), 0.05);
    EXPECT_GT(ccdf_at(ccdf, 1000.0), 0.0);
}

TEST_F(IntegrationTest, RouterDiscoveryImprovesWithStableTargets) {
    const router_topology topo(w_);
    const daily_series series = w_.series(kMar2015 - 7, kMar2015 + 7);
    stability_analyzer an(series);
    const auto split = an.classify_day(kMar2015, 3);

    // Probes run five days after target selection.
    const std::vector<address>& live = series.day(kMar2015 + 5);

    const std::size_t budget = 2'000;
    const auto baseline = ipv4_style_targets(topo.resolver_addresses(),
                                             series.day(kMar2015), budget, 7);
    const auto informed = stable_informed_targets(split.stable, budget, 7);
    const auto base_found = topo.probe_campaign(baseline, live);
    const auto informed_found = topo.probe_campaign(informed, live);
    // Paper: +129%. Shape requirement: a clear improvement.
    EXPECT_GT(static_cast<double>(informed_found.size()),
              1.2 * static_cast<double>(base_found.size()));
}

}  // namespace
}  // namespace v6
