// Tests for the day-bitmap observation store, including the ablation
// cross-check against the merge-based stability analyzer.
#include <gtest/gtest.h>

#include <algorithm>

#include "v6class/netgen/rng.h"
#include "v6class/temporal/observation_store.h"
#include "v6class/temporal/stability.h"

namespace v6 {
namespace {

address nth(unsigned i) {
    return address::from_pair(0x20010db800000000ull, 0x5000u + i);
}

TEST(ObservationStoreTest, EmptyStore) {
    observation_store store;
    EXPECT_EQ(store.distinct_count(), 0u);
    EXPECT_EQ(store.days_seen(nth(1)), 0u);
    EXPECT_FALSE(store.first_last(nth(1)).has_value());
    EXPECT_FALSE(store.is_stable(nth(1), 0));
    EXPECT_TRUE(store.stable_addresses(1).empty());
}

TEST(ObservationStoreTest, BasicRecording) {
    observation_store store;
    store.record_day(10, {nth(1), nth(2)});
    store.record_day(12, {nth(1)});
    EXPECT_EQ(store.distinct_count(), 2u);
    EXPECT_EQ(store.days_seen(nth(1)), 2u);
    EXPECT_EQ(store.days_seen(nth(2)), 1u);
    const auto fl = store.first_last(nth(1));
    ASSERT_TRUE(fl.has_value());
    EXPECT_EQ(fl->first, 10);
    EXPECT_EQ(fl->second, 12);
    EXPECT_TRUE(store.is_stable(nth(1), 2));
    EXPECT_FALSE(store.is_stable(nth(1), 3));
    EXPECT_TRUE(store.is_stable(nth(2), 0));
}

TEST(ObservationStoreTest, IdempotentRecording) {
    observation_store store;
    store.record_day(5, {nth(1)});
    store.record_day(5, {nth(1)});
    EXPECT_EQ(store.days_seen(nth(1)), 1u);
}

TEST(ObservationStoreTest, OutOfOrderDays) {
    observation_store store;
    store.record_day(20, {nth(1)});
    store.record_day(3, {nth(1)});  // earlier day arrives later
    store.record_day(10, {nth(1)});
    EXPECT_EQ(store.days_seen(nth(1)), 3u);
    const auto fl = store.first_last(nth(1));
    EXPECT_EQ(fl->first, 3);
    EXPECT_EQ(fl->second, 20);
}

TEST(ObservationStoreTest, LongSpansUseOverflow) {
    observation_store store;
    for (int day = 0; day <= 400; day += 40) store.record_day(day, {nth(7)});
    EXPECT_EQ(store.days_seen(nth(7)), 11u);
    EXPECT_TRUE(store.is_stable(nth(7), 400));
    const auto gaps = store.gap_histogram(100);
    EXPECT_EQ(gaps[40], 10u);
}

// The next four tests pin down record::shift_right (reached via an
// earlier day arriving after later ones): the rebase must carry bits
// across the inline/overflow 64-bit word boundary, handle shifts of
// exactly one word and of multiple words, and lose no set bit.

TEST(ObservationStoreTest, RebaseCarriesAcrossWordBoundary) {
    observation_store store;
    store.record_day(70, {nth(1)});  // bit 0 of the inline word
    store.record_day(0, {nth(1)});   // rebase: old bit must land at 70
    EXPECT_EQ(store.days_seen(nth(1)), 2u);
    const auto fl = store.first_last(nth(1));
    ASSERT_TRUE(fl.has_value());
    EXPECT_EQ(fl->first, 0);
    EXPECT_EQ(fl->second, 70);
    const auto gaps = store.gap_histogram(100);
    EXPECT_EQ(gaps[70], 1u);
}

TEST(ObservationStoreTest, RebaseByExactlyOneWord) {
    observation_store store;
    store.record_day(64, {nth(2)});
    store.record_day(0, {nth(2)});  // shift by exactly 64
    EXPECT_EQ(store.days_seen(nth(2)), 2u);
    EXPECT_TRUE(store.is_stable(nth(2), 64));
    EXPECT_FALSE(store.is_stable(nth(2), 65));
    const auto gaps = store.gap_histogram(100);
    EXPECT_EQ(gaps[64], 1u);
}

TEST(ObservationStoreTest, RebaseByMoreThanOneWord) {
    observation_store store;
    store.record_day(200, {nth(3)});
    store.record_day(201, {nth(3)});
    store.record_day(0, {nth(3)});  // shift by 200: two whole words + 8 bits
    EXPECT_EQ(store.days_seen(nth(3)), 3u);
    const auto fl = store.first_last(nth(3));
    EXPECT_EQ(fl->first, 0);
    EXPECT_EQ(fl->second, 201);
    const auto gaps = store.gap_histogram(250);
    EXPECT_EQ(gaps[200], 1u);
    EXPECT_EQ(gaps[1], 1u);
}

TEST(ObservationStoreTest, RepeatedRebasesLoseNoBits) {
    observation_store store;
    // Straddle both sides of the word boundary, then rebase three times
    // by amounts that are not multiples of 64.
    const int days[] = {300, 310, 350, 363, 364, 390};
    for (const int d : days) store.record_day(d, {nth(4)});
    store.record_day(170, {nth(4)});  // shift 130
    store.record_day(100, {nth(4)});  // shift 70
    store.record_day(99, {nth(4)});   // shift 1
    EXPECT_EQ(store.days_seen(nth(4)), 9u);
    const auto fl = store.first_last(nth(4));
    EXPECT_EQ(fl->first, 99);
    EXPECT_EQ(fl->second, 390);
    // Every consecutive-day gap must survive the rebases.
    const auto gaps = store.gap_histogram(200);
    EXPECT_EQ(gaps[1], 2u);    // 99->100, 363->364
    EXPECT_EQ(gaps[70], 1u);   // 100->170
    EXPECT_EQ(gaps[130], 1u);  // 170->300
    EXPECT_EQ(gaps[10], 1u);   // 300->310
    EXPECT_EQ(gaps[40], 1u);   // 310->350
    EXPECT_EQ(gaps[13], 1u);   // 350->363
    EXPECT_EQ(gaps[26], 1u);   // 364->390
}

TEST(ObservationStoreTest, PrefixProjection) {
    observation_store store(64);
    store.record_day(1, {address::from_pair(0xaa, 1), address::from_pair(0xaa, 2)});
    EXPECT_EQ(store.distinct_count(), 1u);  // same /64
    EXPECT_EQ(store.days_seen(address::from_pair(0xaa, 99)), 1u);
}

TEST(ObservationStoreTest, SpectrumIsMonotoneAndAnchored) {
    observation_store store;
    rng r{50};
    for (int day = 0; day < 30; ++day) {
        std::vector<address> active;
        for (unsigned i = 0; i < 300; ++i)
            if (r.chance(0.25)) active.push_back(nth(i));
        store.record_day(day, active);
    }
    const auto spectrum = store.stability_spectrum(30);
    EXPECT_EQ(spectrum[0], store.distinct_count());
    for (std::size_t n = 1; n < spectrum.size(); ++n)
        EXPECT_LE(spectrum[n], spectrum[n - 1]);
    // spectrum[n] must equal the count of stable_addresses(n).
    for (unsigned n : {1u, 5u, 12u, 29u})
        EXPECT_EQ(spectrum[n], store.stable_addresses(n).size()) << n;
}

TEST(ObservationStoreTest, GapHistogramCountsConsecutiveReturns) {
    observation_store store;
    store.record_day(1, {nth(1)});
    store.record_day(2, {nth(1)});
    store.record_day(9, {nth(1)});
    store.record_day(4, {nth(2)});
    store.record_day(5, {nth(2)});
    const auto gaps = store.gap_histogram(10);
    EXPECT_EQ(gaps[1], 2u);  // 1->2 and 4->5
    EXPECT_EQ(gaps[7], 1u);  // 2->9
}

TEST(ObservationStoreTest, GapsAboveMaxAccumulateInLastBucket) {
    observation_store store;
    store.record_day(0, {nth(1)});
    store.record_day(500, {nth(1)});
    const auto gaps = store.gap_histogram(16);
    EXPECT_EQ(gaps[16], 1u);
}

// Ablation cross-check (DESIGN.md #3): within a full-coverage window the
// bitmap store's whole-record stability agrees with the merge-based
// analyzer's windowed classification.
class StoreVsMerge : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreVsMerge, AgreeOnStableSets) {
    rng r{GetParam() * 3 + 1};
    daily_series series;
    observation_store store;
    const int ref = 7;
    for (int day = 0; day <= 14; ++day) {
        std::vector<address> active;
        for (unsigned i = 0; i < 400; ++i)
            if (r.chance(0.3)) active.push_back(nth(i));
        series.set_day(day, active);
        store.record_day(day, active);
    }
    stability_analyzer an(series);  // window (-7,+7) covers all days
    for (unsigned n : {1u, 3u, 7u}) {
        const auto merge_stable = an.classify_day(ref, n).stable;
        // The store's stable set over the whole record, filtered to the
        // reference day's actives, must match.
        std::vector<address> store_stable;
        for (const address& a : series.day(ref))
            if (store.is_stable(a, n)) store_stable.push_back(a);
        EXPECT_EQ(merge_stable, store_stable) << "n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreVsMerge, ::testing::Range<std::uint64_t>(1, 9));

// Property: record_day is order-independent and duplicate-insensitive. A
// feed that arrives shuffled, with days re-recorded and in-day
// duplicates, must leave the store in exactly the state of the in-order
// feed — distinct count, spectrum, per-address days/span, stable sets.
class StoreScheduleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreScheduleProperty, ShuffledDuplicatedScheduleIsEquivalent) {
    rng r{GetParam() * 11 + 5};
    // One (day, active-set) entry per day, generated in order.
    std::vector<std::pair<int, std::vector<address>>> schedule;
    for (int day = 0; day < 25; ++day) {
        std::vector<address> active;
        for (unsigned i = 0; i < 200; ++i)
            if (r.chance(0.2)) active.push_back(nth(i));
        schedule.emplace_back(day, std::move(active));
    }

    observation_store in_order;
    for (const auto& [day, active] : schedule) in_order.record_day(day, active);

    // Adversarial replay: shuffle the days, record each 1-3 times, and
    // duplicate addresses within each delivery.
    std::vector<std::pair<int, std::vector<address>>> replay;
    for (const auto& entry : schedule) {
        const unsigned repeats = 1 + static_cast<unsigned>(r.uniform(3));
        for (unsigned k = 0; k < repeats; ++k) replay.push_back(entry);
    }
    std::shuffle(replay.begin(), replay.end(), r);
    observation_store scrambled;
    for (auto& [day, active] : replay) {
        std::vector<address> noisy = active;
        for (const address& a : active)
            if (r.chance(0.3)) noisy.push_back(a);
        std::shuffle(noisy.begin(), noisy.end(), r);
        scrambled.record_day(day, noisy);
    }

    EXPECT_EQ(scrambled.distinct_count(), in_order.distinct_count());
    EXPECT_EQ(scrambled.stability_spectrum(25), in_order.stability_spectrum(25));
    EXPECT_EQ(scrambled.gap_histogram(25), in_order.gap_histogram(25));
    for (unsigned n : {1u, 5u, 12u})
        EXPECT_EQ(scrambled.stable_addresses(n), in_order.stable_addresses(n)) << n;
    for (unsigned i = 0; i < 200; ++i) {
        EXPECT_EQ(scrambled.days_seen(nth(i)), in_order.days_seen(nth(i))) << i;
        EXPECT_EQ(scrambled.first_last(nth(i)), in_order.first_last(nth(i))) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreScheduleProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace v6
