// Tests of the alert rules engine: the rule-file grammar (and its
// rejection diagnostics), the pending -> firing -> resolved state
// machine with hold-downs, absence and rate-of-change conditions,
// event-sourced rules fed by the structured log, the reload contract
// (unchanged rules keep their state), and the exported metrics.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "v6class/obs/alert.h"
#include "v6class/obs/event_log.h"
#include "v6class/obs/metrics.h"

namespace {

using namespace v6;

/// A sampler over a mutable map: tests drive the series by assignment;
/// erase() models a missing sample.
struct fake_sampler {
    std::map<std::pair<std::string, std::string>, double> values;

    obs::alert_engine::sampler fn() {
        return [this](const std::string& s,
                      const std::string& l) -> std::optional<double> {
            const auto it = values.find({s, l});
            if (it == values.end()) return std::nullopt;
            return it->second;
        };
    }
};

obs::alert_rule parse_one(const std::string& line) {
    std::string error;
    const auto rules = obs::parse_alert_rules(line, &error);
    EXPECT_TRUE(rules.has_value()) << error;
    EXPECT_EQ(rules->size(), 1u);
    return rules->front();
}

obs::alert_state state_of(const obs::alert_engine& eng,
                          const std::string& name) {
    for (const auto& s : eng.snapshot())
        if (s.rule.name == name) return s.state;
    ADD_FAILURE() << "no rule " << name;
    return obs::alert_state::inactive;
}

// --------------------------------------------------------------- parser

TEST(AlertParseTest, FullRuleLineRoundTrips) {
    const obs::alert_rule r = parse_one(
        "hot series=v6class_gamma16_48 label=p48 above=0.9 for=3 level=error");
    EXPECT_EQ(r.name, "hot");
    EXPECT_EQ(r.series, "v6class_gamma16_48");
    EXPECT_EQ(r.label, "p48");
    EXPECT_EQ(r.cond, obs::alert_cond::above);
    EXPECT_DOUBLE_EQ(r.threshold, 0.9);
    EXPECT_EQ(r.hold, 3u);
    EXPECT_EQ(r.level, obs::event_level::error);
}

TEST(AlertParseTest, CommentsAndBlanksAreSkipped) {
    std::string error;
    const auto rules = obs::parse_alert_rules(
        "# header comment\n"
        "\n"
        "a series=s below=1   # trailing comment\n"
        "b event=drift\n",
        &error);
    ASSERT_TRUE(rules.has_value()) << error;
    ASSERT_EQ(rules->size(), 2u);
    EXPECT_EQ((*rules)[0].cond, obs::alert_cond::below);
    EXPECT_EQ((*rules)[1].cond, obs::alert_cond::event);
    EXPECT_EQ((*rules)[1].event_kind, "drift");
}

TEST(AlertParseTest, RejectionsNameTheOffendingLine) {
    std::string error;
    // Unknown key.
    EXPECT_FALSE(obs::parse_alert_rules("a series=s above=1 bogus=2", &error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
    // No condition.
    EXPECT_FALSE(obs::parse_alert_rules("ok series=s above=1\nb series=s",
                                        &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    // Two conditions.
    EXPECT_FALSE(obs::parse_alert_rules("a series=s above=1 below=2", &error));
    // Bad number.
    EXPECT_FALSE(obs::parse_alert_rules("a series=s above=wat", &error));
    // Sampled condition without a series.
    EXPECT_FALSE(obs::parse_alert_rules("a above=1", &error));
    // absent must be >= 1 evaluation.
    EXPECT_FALSE(obs::parse_alert_rules("a series=s absent=0", &error));
    // Bad level.
    EXPECT_FALSE(obs::parse_alert_rules("a series=s above=1 level=loud",
                                        &error));
}

// ---------------------------------------------------------- state machine

TEST(AlertParseTest, NodeSugarExpandsToFleetLivenessAbsence) {
    const obs::alert_rule r = parse_one("collector-gone node=edge1 for=2");
    EXPECT_EQ(r.name, "collector-gone");
    EXPECT_EQ(r.series, "v6fleet_node_up");
    EXPECT_EQ(r.label, "node=edge1");
    EXPECT_EQ(r.cond, obs::alert_cond::absent);
    EXPECT_DOUBLE_EQ(r.threshold, 1);  // one missing eval trips it
    EXPECT_EQ(r.hold, 2u);
}

TEST(AlertParseTest, NodeSugarIsACondLikeAnyOther) {
    std::string error;
    // node= counts as the rule's one condition...
    EXPECT_FALSE(obs::parse_alert_rules("a node=x above=1", &error));
    EXPECT_NE(error.find("exactly one"), std::string::npos) << error;
    // ...and needs an id.
    EXPECT_FALSE(obs::parse_alert_rules("a node=", &error));
    EXPECT_NE(error.find("collector id"), std::string::npos) << error;
}

TEST(AlertEngineTest, ThresholdFiresImmediatelyWithoutHold) {
    obs::alert_engine eng;
    eng.load_rules({parse_one("hot series=s above=10")});
    fake_sampler fs;

    fs.values[{"s", ""}] = 5;
    eng.evaluate(fs.fn(), 1);
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::inactive);

    fs.values[{"s", ""}] = 11;
    eng.evaluate(fs.fn(), 2);
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::firing);
    EXPECT_EQ(eng.firing_count(), 1u);

    fs.values[{"s", ""}] = 9;
    eng.evaluate(fs.fn(), 3);
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::resolved);
    EXPECT_EQ(eng.firing_count(), 0u);

    eng.evaluate(fs.fn(), 4);  // resolved is a one-evaluation state
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::inactive);
}

TEST(AlertEngineTest, HoldDownKeepsPendingUntilStreakExceedsFor) {
    obs::alert_engine eng;
    eng.load_rules({parse_one("hot series=s above=10 for=2")});
    fake_sampler fs;
    fs.values[{"s", ""}] = 99;

    eng.evaluate(fs.fn(), 1);  // streak 1
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::pending);
    eng.evaluate(fs.fn(), 2);  // streak 2
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::pending);
    EXPECT_EQ(eng.pending_count(), 1u);
    eng.evaluate(fs.fn(), 3);  // streak 3 > for=2
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::firing);

    // A dip while merely pending goes straight back to inactive, no
    // resolved transition (it never fired).
    eng.load_rules({parse_one("p series=s above=10 for=5")});
    eng.evaluate(fs.fn(), 4);
    EXPECT_EQ(state_of(eng, "p"), obs::alert_state::pending);
    fs.values[{"s", ""}] = 0;
    eng.evaluate(fs.fn(), 5);
    EXPECT_EQ(state_of(eng, "p"), obs::alert_state::inactive);
}

TEST(AlertEngineTest, MissingSampleFreezesAThresholdStreak) {
    obs::alert_engine eng;
    eng.load_rules({parse_one("hot series=s above=10 for=1")});
    fake_sampler fs;
    fs.values[{"s", ""}] = 50;
    eng.evaluate(fs.fn(), 1);
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::pending);

    fs.values.clear();  // series vanishes: no information
    eng.evaluate(fs.fn(), 2);
    eng.evaluate(fs.fn(), 3);
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::pending);  // frozen

    fs.values[{"s", ""}] = 50;
    eng.evaluate(fs.fn(), 4);  // streak resumes: 2 > for=1
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::firing);
}

TEST(AlertEngineTest, AbsenceCountsConsecutiveMissingEvaluations) {
    obs::alert_engine eng;
    eng.load_rules({parse_one("gone series=s absent=3")});
    fake_sampler fs;

    eng.evaluate(fs.fn(), 1);
    eng.evaluate(fs.fn(), 2);
    EXPECT_NE(state_of(eng, "gone"), obs::alert_state::firing);
    eng.evaluate(fs.fn(), 3);  // 3rd consecutive miss
    EXPECT_EQ(state_of(eng, "gone"), obs::alert_state::firing);

    fs.values[{"s", ""}] = 1;  // series comes back
    eng.evaluate(fs.fn(), 4);
    EXPECT_EQ(state_of(eng, "gone"), obs::alert_state::resolved);
    eng.evaluate(fs.fn(), 5);
    fs.values.erase({"s", ""});
    eng.evaluate(fs.fn(), 6);  // counter restarted: 1 miss, not 4
    EXPECT_NE(state_of(eng, "gone"), obs::alert_state::firing);
}

TEST(AlertEngineTest, DeltaComparesAgainstThePreviousSample) {
    obs::alert_engine eng;
    eng.load_rules({parse_one("jump series=s delta=0.5")});
    fake_sampler fs;

    fs.values[{"s", ""}] = 100;
    eng.evaluate(fs.fn(), 1);  // first sample: no previous, no fire
    EXPECT_EQ(state_of(eng, "jump"), obs::alert_state::inactive);

    fs.values[{"s", ""}] = 120;  // +20%
    eng.evaluate(fs.fn(), 2);
    EXPECT_EQ(state_of(eng, "jump"), obs::alert_state::inactive);

    fs.values[{"s", ""}] = 250;  // more than +50%
    eng.evaluate(fs.fn(), 3);
    EXPECT_EQ(state_of(eng, "jump"), obs::alert_state::firing);

    fs.values[{"s", ""}] = 260;  // settles
    eng.evaluate(fs.fn(), 4);
    EXPECT_EQ(state_of(eng, "jump"), obs::alert_state::resolved);
}

// ------------------------------------------------------------ event rules

TEST(AlertEngineTest, EventRuleFiresOnNewMatchingEventsAndAutoResolves) {
    obs::event_log log;
    obs::alert_engine eng(nullptr, &log);
    eng.load_rules({parse_one("drift_watch event=drift")});
    fake_sampler fs;

    eng.evaluate(fs.fn(), 1);  // nothing logged yet
    EXPECT_EQ(state_of(eng, "drift_watch"), obs::alert_state::inactive);

    log.log(obs::event_level::warn, "drift", "gamma shifted");
    eng.evaluate(fs.fn(), 2);
    EXPECT_EQ(state_of(eng, "drift_watch"), obs::alert_state::firing);

    // Still firing while events keep arriving; resolves on a quiet round.
    log.log(obs::event_level::warn, "drift", "again");
    eng.evaluate(fs.fn(), 3);
    EXPECT_EQ(state_of(eng, "drift_watch"), obs::alert_state::firing);
    eng.evaluate(fs.fn(), 4);
    EXPECT_EQ(state_of(eng, "drift_watch"), obs::alert_state::resolved);

    // Other kinds do not match.
    log.log(obs::event_level::warn, "lifecycle", "noise");
    eng.evaluate(fs.fn(), 5);
    EXPECT_EQ(state_of(eng, "drift_watch"), obs::alert_state::inactive);
}

TEST(AlertEngineTest, OwnTransitionEventsDoNotSelfTrigger) {
    obs::event_log log;
    obs::alert_engine eng(nullptr, &log);
    // A rule matching the engine's own "alert" transition events would
    // otherwise latch forever.
    eng.load_rules({parse_one("meta event=alert"),
                    parse_one("hot series=s above=1")});
    fake_sampler fs;
    fs.values[{"s", ""}] = 5;
    eng.evaluate(fs.fn(), 1);  // hot fires -> logs an "alert" event
    EXPECT_EQ(state_of(eng, "hot"), obs::alert_state::firing);
    eng.evaluate(fs.fn(), 2);
    EXPECT_EQ(state_of(eng, "meta"), obs::alert_state::inactive);
}

TEST(AlertEngineTest, TransitionsRaiseStructuredEvents) {
    obs::event_log log;
    obs::alert_engine eng(nullptr, &log);
    eng.load_rules({parse_one("hot series=s above=1 level=error")});
    fake_sampler fs;
    fs.values[{"s", ""}] = 5;
    eng.evaluate(fs.fn(), 7);
    fs.values[{"s", ""}] = 0;
    eng.evaluate(fs.fn(), 8);

    const auto events = log.recent(10);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, "alert");
    EXPECT_EQ(events[0].level, obs::event_level::error);  // rule's level
    EXPECT_NE(events[0].message.find("firing"), std::string::npos);
    EXPECT_EQ(events[1].level, obs::event_level::info);  // resolved is calm
    EXPECT_NE(events[1].message.find("resolved"), std::string::npos);
}

// ---------------------------------------------------------------- reload

TEST(AlertEngineTest, ReloadPreservesStateForIdenticalRulesOnly) {
    obs::alert_engine eng;
    eng.load_rules({parse_one("keep series=s above=1 for=1"),
                    parse_one("change series=t above=1")});
    fake_sampler fs;
    fs.values[{"s", ""}] = 5;
    fs.values[{"t", ""}] = 5;
    eng.evaluate(fs.fn(), 1);
    eng.evaluate(fs.fn(), 2);
    EXPECT_EQ(state_of(eng, "keep"), obs::alert_state::firing);
    EXPECT_EQ(state_of(eng, "change"), obs::alert_state::firing);

    // SIGHUP shape: "keep" is byte-identical, "change" got a new
    // threshold, "fresh" is new.
    eng.load_rules({parse_one("keep series=s above=1 for=1"),
                    parse_one("change series=t above=2"),
                    parse_one("fresh series=u above=1")});
    EXPECT_EQ(state_of(eng, "keep"), obs::alert_state::firing);   // carried
    EXPECT_EQ(state_of(eng, "change"), obs::alert_state::inactive);  // reset
    EXPECT_EQ(state_of(eng, "fresh"), obs::alert_state::inactive);
    EXPECT_EQ(eng.rule_count(), 3u);
    EXPECT_EQ(eng.firing_count(), 1u);
}

TEST(AlertEngineTest, LoadFileFailureKeepsTheCurrentRules) {
    obs::alert_engine eng;
    eng.load_rules({parse_one("hot series=s above=1")});
    std::string error;
    EXPECT_FALSE(eng.load_file("/nonexistent/alerts.txt", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(eng.rule_count(), 1u);
}

// --------------------------------------------------------------- metrics

TEST(AlertEngineTest, CountersAndGaugesTrackTransitions) {
    obs::registry reg;
    obs::alert_engine eng(&reg);
    eng.load_rules({parse_one("hot series=s above=1 for=1")});
    fake_sampler fs;
    fs.values[{"s", ""}] = 5;
    eng.evaluate(fs.fn(), 1);  // pending
    eng.evaluate(fs.fn(), 2);  // firing
    fs.values[{"s", ""}] = 0;
    eng.evaluate(fs.fn(), 3);  // resolved

    const std::string text = reg.prometheus_text();
    EXPECT_NE(text.find("v6class_alerts_pending_total 1"), std::string::npos)
        << text;
    EXPECT_NE(text.find("v6class_alerts_firing_total 1"), std::string::npos)
        << text;
    EXPECT_NE(text.find("v6class_alerts_resolved_total 1"), std::string::npos)
        << text;
    EXPECT_NE(text.find("v6class_alerts_firing 0"), std::string::npos) << text;
    EXPECT_EQ(eng.evaluations(), 3u);
}

TEST(AlertEngineTest, StatusJsonListsEveryRule) {
    obs::alert_engine eng;
    eng.load_rules({parse_one("a series=s above=1"),
                    parse_one("b event=drift")});
    const std::string json = eng.status_json();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"name\":\"b\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"state\":\"inactive\""), std::string::npos) << json;
}

}  // namespace
