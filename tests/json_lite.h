// json_lite.h — a tiny recursive-descent JSON syntax checker for tests
// that validate the JSON artifacts our tools emit (--metrics-out dumps,
// trace files). Checks well-formedness only — no DOM, no numbers parsed
// beyond shape — which is all a schema smoke test needs without pulling
// in a JSON dependency.
#pragma once

#include <cctype>
#include <string_view>

namespace v6::testing {

class json_checker {
public:
    /// True iff `text` is one complete, well-formed JSON value.
    static bool valid(std::string_view text) {
        json_checker c{text};
        c.skip_ws();
        if (!c.value()) return false;
        c.skip_ws();
        return c.pos_ == c.text_.size();
    }

private:
    explicit json_checker(std::string_view text) : text_(text) {}

    bool at_end() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }
    bool eat(char c) {
        if (at_end() || text_[pos_] != c) return false;
        ++pos_;
        return true;
    }
    void skip_ws() {
        while (!at_end() && std::isspace(static_cast<unsigned char>(peek())))
            ++pos_;
    }

    bool value() {
        if (at_end()) return false;
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    bool object() {
        if (!eat('{')) return false;
        skip_ws();
        if (eat('}')) return true;
        do {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (!eat(':')) return false;
            skip_ws();
            if (!value()) return false;
            skip_ws();
        } while (eat(','));
        return eat('}');
    }

    bool array() {
        if (!eat('[')) return false;
        skip_ws();
        if (eat(']')) return true;
        do {
            skip_ws();
            if (!value()) return false;
            skip_ws();
        } while (eat(','));
        return eat(']');
    }

    bool string() {
        if (!eat('"')) return false;
        while (!at_end()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (at_end()) return false;
                ++pos_;  // accept any escape; shape check only
            }
        }
        return false;
    }

    bool number() {
        const std::size_t start = pos_;
        if (!at_end() && (peek() == '-' || peek() == '+')) ++pos_;
        bool digits = false;
        const auto eat_digits = [&] {
            while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
                digits = true;
            }
        };
        eat_digits();
        if (!at_end() && peek() == '.') {
            ++pos_;
            eat_digits();
        }
        if (digits && !at_end() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!at_end() && (peek() == '-' || peek() == '+')) ++pos_;
            eat_digits();
        }
        return digits && pos_ > start;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace v6::testing
