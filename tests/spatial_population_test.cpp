// Tests for aggregate population distributions and CCDFs (Figure 3).
#include <gtest/gtest.h>

#include "v6class/netgen/rng.h"
#include "v6class/spatial/population.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(PopulationTest, CountsPerAggregate) {
    const std::vector<address> addrs{
        "2001:db8::1"_v6, "2001:db8::2"_v6, "2001:db8::3"_v6,
        "2001:db9::1"_v6,
    };
    const auto pops = aggregate_populations(addrs, 32);
    ASSERT_EQ(pops.size(), 2u);  // two active /32s
    EXPECT_EQ(pops[0], 1u);
    EXPECT_EQ(pops[1], 3u);
}

TEST(PopulationTest, DeduplicatesElements) {
    const auto pops =
        aggregate_populations({"2001:db8::1"_v6, "2001:db8::1"_v6}, 48);
    ASSERT_EQ(pops.size(), 1u);
    EXPECT_EQ(pops[0], 1u);
}

TEST(PopulationTest, AggregateLengthZeroIsOneBucket) {
    const auto pops = aggregate_populations(
        {"2001:db8::1"_v6, "fe80::1"_v6, "ff02::1"_v6}, 0);
    ASSERT_EQ(pops.size(), 1u);
    EXPECT_EQ(pops[0], 3u);
}

TEST(CcdfTest, EmptySample) { EXPECT_TRUE(ccdf_of({}).empty()); }

TEST(CcdfTest, BasicShape) {
    const auto ccdf = ccdf_of({1, 1, 2, 5, 5, 5});
    ASSERT_EQ(ccdf.size(), 3u);
    EXPECT_DOUBLE_EQ(ccdf[0].value, 1.0);
    EXPECT_DOUBLE_EQ(ccdf[0].proportion, 1.0);
    EXPECT_DOUBLE_EQ(ccdf[1].value, 2.0);
    EXPECT_DOUBLE_EQ(ccdf[1].proportion, 4.0 / 6.0);
    EXPECT_DOUBLE_EQ(ccdf[2].value, 5.0);
    EXPECT_DOUBLE_EQ(ccdf[2].proportion, 3.0 / 6.0);
}

TEST(CcdfTest, ProportionsAreNonIncreasing) {
    rng r{3};
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 5000; ++i) samples.push_back(1 + r.uniform(1000));
    const auto ccdf = ccdf_of(std::move(samples));
    for (std::size_t i = 1; i < ccdf.size(); ++i) {
        EXPECT_LT(ccdf[i - 1].value, ccdf[i].value);
        EXPECT_GE(ccdf[i - 1].proportion, ccdf[i].proportion);
    }
    EXPECT_DOUBLE_EQ(ccdf.front().proportion, 1.0);
}

TEST(CcdfTest, ReadAtThreshold) {
    const auto ccdf = ccdf_of({1, 2, 5, 10});
    EXPECT_DOUBLE_EQ(ccdf_at(ccdf, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(ccdf_at(ccdf, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(ccdf_at(ccdf, 3.0), 0.5);   // 5 and 10 qualify
    EXPECT_DOUBLE_EQ(ccdf_at(ccdf, 10.0), 0.25);
    EXPECT_DOUBLE_EQ(ccdf_at(ccdf, 11.0), 0.0);
}

TEST(PopulationTest, SkewedStructureShowsHeavyTail) {
    // One giant /48 plus many singletons: the CCDF at high populations
    // is small but non-zero — Figure 3's "a few prefixes contain most of
    // the addresses".
    rng r{8};
    std::vector<address> addrs;
    for (int i = 0; i < 5000; ++i)
        addrs.push_back(address::from_pair(0x20010db800010000ull, r()));
    for (int i = 0; i < 200; ++i)
        addrs.push_back(address::from_pair(0x2600000000000000ull | (r() >> 16), r()));
    const auto pops = aggregate_populations(addrs, 48);
    const auto ccdf = ccdf_of(pops);
    EXPECT_GT(ccdf_at(ccdf, 2), 0.0);
    EXPECT_LT(ccdf_at(ccdf, 1000), 0.05);
    EXPECT_GT(ccdf_at(ccdf, 1000), 0.0);
}

}  // namespace
}  // namespace v6
