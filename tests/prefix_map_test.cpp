// Tests for the longest-prefix-match map.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "v6class/netgen/rng.h"
#include "v6class/trie/prefix_map.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(PrefixMapTest, EmptyMap) {
    prefix_map<int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find("::/0"_pfx), nullptr);
    EXPECT_FALSE(m.longest_match("2001:db8::1"_v6).has_value());
}

TEST(PrefixMapTest, InsertAndFind) {
    prefix_map<std::string> m;
    EXPECT_TRUE(m.insert("2001:db8::/32"_pfx, "doc"));
    EXPECT_TRUE(m.insert("2001:db8:1::/48"_pfx, "sub"));
    EXPECT_FALSE(m.insert("2001:db8::/32"_pfx, "doc2"));  // overwrite
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find("2001:db8::/32"_pfx), nullptr);
    EXPECT_EQ(*m.find("2001:db8::/32"_pfx), "doc2");
    EXPECT_EQ(m.find("2001:db8::/33"_pfx), nullptr);
}

TEST(PrefixMapTest, LongestMatchPrefersSpecific) {
    prefix_map<int> m;
    m.insert("2000::/3"_pfx, 3);
    m.insert("2001:db8::/32"_pfx, 32);
    m.insert("2001:db8:1::/48"_pfx, 48);
    const auto inside48 = m.longest_match("2001:db8:1::42"_v6);
    ASSERT_TRUE(inside48.has_value());
    EXPECT_EQ(inside48->second.get(), 48);
    EXPECT_EQ(inside48->first, "2001:db8:1::/48"_pfx);
    const auto inside32 = m.longest_match("2001:db8:2::42"_v6);
    ASSERT_TRUE(inside32.has_value());
    EXPECT_EQ(inside32->second.get(), 32);
    const auto inside3 = m.longest_match("2600::1"_v6);
    ASSERT_TRUE(inside3.has_value());
    EXPECT_EQ(inside3->second.get(), 3);
    EXPECT_FALSE(m.longest_match("fe80::1"_v6).has_value());
}

TEST(PrefixMapTest, BranchNodesCarryNoValue) {
    prefix_map<int> m;
    m.insert("2001:db8:0:1::/64"_pfx, 1);
    m.insert("2001:db8:0:2::/64"_pfx, 2);
    // The implicit branch at their meet must not match.
    EXPECT_FALSE(m.longest_match("2001:db8:0:3::1"_v6).has_value());
    ASSERT_TRUE(m.longest_match("2001:db8:0:1::9"_v6).has_value());
}

TEST(PrefixMapTest, CoveringInsertAfterSpecific) {
    prefix_map<int> m;
    m.insert("2001:db8:1::/48"_pfx, 48);
    m.insert("2001:db8::/32"_pfx, 32);  // inserted above an existing node
    EXPECT_EQ(m.size(), 2u);
    const auto match = m.longest_match("2001:db8:9::1"_v6);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->second.get(), 32);
}

TEST(PrefixMapTest, HostRoutes) {
    prefix_map<int> m;
    m.insert("2001:db8::1/128"_pfx, 128);
    m.insert("2001:db8::/64"_pfx, 64);
    EXPECT_EQ(m.longest_match("2001:db8::1"_v6)->second.get(), 128);
    EXPECT_EQ(m.longest_match("2001:db8::2"_v6)->second.get(), 64);
}

TEST(PrefixMapTest, VisitInAddressOrder) {
    prefix_map<int> m;
    m.insert("2001:db8:2::/48"_pfx, 2);
    m.insert("2001:db8::/32"_pfx, 0);
    m.insert("2001:db8:1::/48"_pfx, 1);
    std::vector<prefix> seen;
    m.visit([&](const prefix& p, const int&) { seen.push_back(p); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(PrefixMapTest, ClearResets) {
    prefix_map<int> m;
    m.insert("2001:db8::/32"_pfx, 1);
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.longest_match("2001:db8::1"_v6).has_value());
}

// A uniformly random address inside `p`: the base with host bits drawn
// from `seed`.
address address_probe_inside(const prefix& p, std::uint64_t seed) {
    address a = p.base();
    for (unsigned bit = p.length(); bit < 128; ++bit)
        a = a.with_bit(bit, static_cast<unsigned>(mix64(seed + bit) & 1));
    return a;
}

// Property: longest_match agrees with a brute-force scan over random
// rule sets.
class PrefixMapCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixMapCrossCheck, MatchesBruteForce) {
    rng r{GetParam() * 13 + 5};
    prefix_map<std::size_t> m;
    std::vector<prefix> rules;
    for (int i = 0; i < 300; ++i) {
        const address base = address::from_pair(
            0x2000000000000000ull | (r() >> 4), r());
        const unsigned len = static_cast<unsigned>(8 + r.uniform(121));
        const prefix p{base, len};
        if (m.insert(p, rules.size())) rules.push_back(p);
    }
    for (int i = 0; i < 500; ++i) {
        // Mix of random addresses and addresses inside random rules.
        address probe = address::from_pair(0x2000000000000000ull | (r() >> 4), r());
        if (r.chance(0.5) && !rules.empty())
            probe = address_probe_inside(rules[r.uniform(rules.size())], r());
        const auto got = m.longest_match(probe);
        // Brute force.
        const prefix* best = nullptr;
        for (const prefix& p : rules)
            if (p.contains(probe) && (!best || p.length() > best->length()))
                best = &p;
        if (!best) {
            EXPECT_FALSE(got.has_value());
        } else {
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(got->first, *best);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixMapCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace v6
