// Tests of the drift-detection stack: the ring history, the EWMA
// z-score detector's fire-once discipline, the structured event log
// (JSON-lines validity, retention, atomic dump), the atomic file
// writer, and the dashboard renderer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_lite.h"
#include "v6class/obs/atomic_file.h"
#include "v6class/obs/dashboard.h"
#include "v6class/obs/drift.h"
#include "v6class/obs/event_log.h"

namespace {

using namespace v6;

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ------------------------------------------------------------ ring_history

TEST(RingHistoryTest, FillsThenWrapsOldestFirst) {
    obs::ring_history ring(4);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.back(), 0.0);
    for (double v : {1.0, 2.0, 3.0}) ring.push(v);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.at(0), 1.0);
    EXPECT_EQ(ring.back(), 3.0);
    for (double v : {4.0, 5.0, 6.0}) ring.push(v);  // overwrites 1 and 2
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.total(), 6u);
    EXPECT_EQ(ring.values(), (std::vector<double>{3.0, 4.0, 5.0, 6.0}));
    EXPECT_EQ(ring.back(), 6.0);
}

TEST(RingHistoryTest, ZeroCapacityIsClampedToOne) {
    obs::ring_history ring(0);
    ring.push(1.0);
    ring.push(2.0);
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.back(), 2.0);
}

// ------------------------------------------------------------ ewma_detector

TEST(EwmaDetectorTest, StepChangeFiresExactlyOnce) {
    obs::ewma_detector det;
    // Settle at one level (with a little noise so sigma is honest)...
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(det.update(10.0 + 0.1 * (i % 3)).has_value()) << i;
    // ...then step to a new level: the first post-step sample alarms...
    const auto alarm = det.update(20.0);
    ASSERT_TRUE(alarm.has_value());
    EXPECT_NEAR(alarm->mean, 10.0, 0.5);
    EXPECT_EQ(alarm->value, 20.0);
    EXPECT_GT(alarm->z, det.options().z_threshold);
    // ...and the re-baselined detector accepts the new normal without
    // flapping: no further alarms while the series stays there.
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(det.update(20.0 + 0.1 * (i % 3)).has_value()) << i;
}

TEST(EwmaDetectorTest, WarmupNeverAlarms) {
    obs::drift_options opt;
    opt.min_samples = 5;
    obs::ewma_detector det(opt);
    // Wild swings inside the warm-up window are learning material, not
    // alarms.
    for (double v : {1.0, 100.0, 1.0, 100.0}) EXPECT_FALSE(det.update(v));
}

TEST(EwmaDetectorTest, FlatSeriesTolerates2PercentWiggle) {
    obs::ewma_detector det;  // rel_sigma = 0.02 floors sigma at 2% of mean
    for (int i = 0; i < 20; ++i) EXPECT_FALSE(det.update(1000.0));
    // A perfectly flat history would have sigma = 0 and infinite z; the
    // relative floor keeps a small wiggle unalarmed...
    EXPECT_FALSE(det.update(1030.0).has_value());
    // ...while a genuine jump still fires.
    EXPECT_TRUE(det.update(1200.0).has_value());
}

TEST(EwmaDetectorTest, SecondStepFiresAgainAfterRebaseline) {
    obs::ewma_detector det;
    for (int i = 0; i < 20; ++i) det.update(10.0 + 0.1 * (i % 2));
    ASSERT_TRUE(det.update(30.0).has_value());
    // Warm up at the new level, then step again: a distinct alarm.
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(det.update(30.0 + 0.1 * (i % 2)).has_value());
    EXPECT_TRUE(det.update(90.0).has_value());
}

// ------------------------------------------------------------ event_log

TEST(EventLogTest, StampsSequenceAndTime) {
    obs::event_log log;
    log.log(obs::event_level::info, "lifecycle", "started");
    log.log(obs::event_level::warn, "drift", "gamma16 shifted",
            {{"day", obs::event_field_number(12)},
             {"series", obs::event_field_string("gamma16@48")}});
    EXPECT_EQ(log.total(), 2u);
    const std::vector<obs::event> recent = log.recent(10);
    ASSERT_EQ(recent.size(), 2u);
    EXPECT_EQ(recent[0].seq, 1u);
    EXPECT_EQ(recent[1].seq, 2u);
    EXPECT_GT(recent[0].unix_time, 1.0e9);  // a plausible wall clock
    EXPECT_EQ(recent[1].kind, "drift");
    EXPECT_EQ(recent[1].level, obs::event_level::warn);
}

TEST(EventLogTest, JsonLinesAreValidJson) {
    obs::event_log log;
    log.log(obs::event_level::error, "io", "write \"failed\"\n",
            {{"path", obs::event_field_string("/tmp/x \"y\"")},
             {"errno", obs::event_field_number(28)}});
    const std::string lines = log.json_lines();
    std::istringstream in(lines);
    std::string line;
    std::size_t count = 0;
    while (std::getline(in, line)) {
        EXPECT_TRUE(v6::testing::json_checker::valid(line)) << line;
        ++count;
    }
    EXPECT_EQ(count, 1u);
    EXPECT_NE(lines.find("\"level\":\"error\""), std::string::npos);
    EXPECT_NE(lines.find("\"errno\":28"), std::string::npos);
}

TEST(EventLogTest, RetentionDropsOldestButCountsAll) {
    obs::event_log log(3);
    for (int i = 0; i < 10; ++i)
        log.log(obs::event_level::info, "tick", std::to_string(i));
    EXPECT_EQ(log.total(), 10u);
    const std::vector<obs::event> recent = log.recent(100);
    ASSERT_EQ(recent.size(), 3u);
    EXPECT_EQ(recent.front().message, "7");  // oldest retained
    EXPECT_EQ(recent.back().message, "9");
    EXPECT_EQ(recent.back().seq, 10u);
}

TEST(EventLogTest, DumpWritesJsonLinesAtomically) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "v6_events_test.jsonl")
            .string();
    obs::event_log log;
    log.log(obs::event_level::warn, "drift", "shift");
    ASSERT_TRUE(log.dump(path));
    const std::string content = read_file(path);
    EXPECT_NE(content.find("\"kind\":\"drift\""), std::string::npos);
    // No tmp sibling left behind.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(EventLogTest, GlobalIsASingleton) {
    EXPECT_EQ(&obs::event_log::global(), &obs::event_log::global());
}

TEST(EventLogTest, SinceReturnsOnlyNewerEventsOldestFirst) {
    obs::event_log log;
    for (int i = 0; i < 5; ++i)
        log.log(obs::event_level::info, "tick", std::to_string(i));
    const auto tail = log.since(3);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].seq, 4u);
    EXPECT_EQ(tail[1].seq, 5u);
    EXPECT_TRUE(log.since(5).empty());
    EXPECT_EQ(log.since(0).size(), 5u);
}

TEST(EventLogTest, StreamingFileGetsRetainedBacklogThenAppends) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "v6_events_stream.jsonl")
            .string();
    std::remove(path.c_str());
    obs::event_log log;
    log.log(obs::event_level::info, "early", "before streaming");
    ASSERT_TRUE(log.enable_file(path, 1u << 20));
    EXPECT_TRUE(log.file_enabled());
    log.log(obs::event_level::warn, "late", "after streaming");

    std::istringstream in(read_file(path));
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);  // backlog replayed, then live append
    EXPECT_NE(lines[0].find("\"kind\":\"early\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"kind\":\"late\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(EventLogTest, StreamingFileRotatesAtTheCapAndCountsIt) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "v6_events_rot.jsonl")
            .string();
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
    obs::registry reg;
    obs::event_log log;
    ASSERT_TRUE(log.enable_file(path, 256, &reg));  // tiny cap
    for (int i = 0; i < 40; ++i)
        log.log(obs::event_level::info, "tick",
                "event number " + std::to_string(i));

    EXPECT_TRUE(std::filesystem::exists(path + ".1"));  // one generation kept
    EXPECT_LE(std::filesystem::file_size(path + ".1"), 512u);
    const std::string text = reg.prometheus_text();
    EXPECT_NE(text.find("v6class_event_log_rotations_total"),
              std::string::npos)
        << text;
    // Every line in both generations is still whole JSON.
    for (const std::string& p : {path, path + ".1"}) {
        std::istringstream in(read_file(p));
        std::string line;
        while (std::getline(in, line))
            EXPECT_TRUE(v6::testing::json_checker::valid(line)) << line;
    }
    // The in-memory view is unaffected by rotation.
    EXPECT_EQ(log.total(), 40u);
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

TEST(EventLogTest, StreamingHealthIsExportedAsMetrics) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "v6_events_gauge.jsonl")
            .string();
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
    obs::registry reg;
    obs::event_log log;
    EXPECT_EQ(log.rotations(), 0u);
    EXPECT_EQ(log.file_bytes(), 0u);  // no streaming file yet

    ASSERT_TRUE(log.enable_file(path, 256, &reg));
    log.log(obs::event_level::info, "tick", "one event");
    EXPECT_GT(log.file_bytes(), 0u);
    EXPECT_EQ(log.file_bytes(), std::filesystem::file_size(path));

    // The accessors are mirrored into the registry, so a /metrics
    // scrape can watch the sink without filesystem access: the current
    // file size as a gauge, rotations as a counter.
    std::string text = reg.prometheus_text();
    const std::string want_gauge =
        "v6class_event_log_file_bytes " + std::to_string(log.file_bytes());
    EXPECT_NE(text.find(want_gauge), std::string::npos) << text;

    for (int i = 0; i < 40; ++i)
        log.log(obs::event_level::info, "tick",
                "event number " + std::to_string(i));
    ASSERT_GT(log.rotations(), 0u);
    text = reg.prometheus_text();
    EXPECT_NE(text.find("v6class_event_log_rotations_total " +
                        std::to_string(log.rotations())),
              std::string::npos)
        << text;
    // After a rotation the gauge tracks the fresh file, not the total
    // ever written.
    EXPECT_EQ(log.file_bytes(), std::filesystem::file_size(path));
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

// ------------------------------------------------------------ atomic_file

TEST(AtomicFileTest, WritesAndReplacesWholeFiles) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "v6_atomic_test.txt")
            .string();
    ASSERT_TRUE(obs::atomic_write_file(path, "first\n"));
    EXPECT_EQ(read_file(path), "first\n");
    ASSERT_TRUE(obs::atomic_write_file(path, "second\n"));
    EXPECT_EQ(read_file(path), "second\n");
    std::remove(path.c_str());
}

TEST(AtomicFileTest, FailsCleanlyOnUnwritableDirectory) {
    EXPECT_FALSE(obs::atomic_write_file("/nonexistent-dir/x/y.txt", "data"));
}

// ------------------------------------------------------------ dashboard

TEST(DashboardTest, SparklineIsInlineSvg) {
    const std::string svg = obs::svg_sparkline({1.0, 3.0, 2.0, 5.0}, 120, 28);
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("polyline"), std::string::npos);
    EXPECT_EQ(svg.find("http"), std::string::npos);  // self-contained
}

TEST(DashboardTest, FlatAndEmptySeriesStillRender) {
    EXPECT_NE(obs::svg_sparkline({}, 120, 28).find("<svg"), std::string::npos);
    EXPECT_NE(obs::svg_sparkline({7.0}, 120, 28).find("<svg"),
              std::string::npos);
    EXPECT_NE(obs::svg_sparkline({4.0, 4.0, 4.0}, 120, 28).find("polyline"),
              std::string::npos);
}

TEST(DashboardTest, RendersModelWithSeriesStatsAndEvents) {
    obs::dashboard_model model;
    model.title = "v6stream live";
    model.status = "serving";
    model.uptime_seconds = 3725;  // 1h 2m 5s
    model.stats = {{"records", "10400"}, {"epoch", "12"}};
    model.series.push_back(
        {"gamma16@48", "MRA ratio", 3.4, {3.0, 3.2, 3.4}, false});
    model.series.push_back(
        {"stable_fraction", "nd-stable share", 0.61, {0.6, 0.61}, true});
    obs::event_log log;
    log.log(obs::event_level::warn, "drift", "stable_fraction shifted");
    model.events = log.recent(5);
    const std::string html = obs::render_dashboard(model);
    EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(html.find("v6stream live"), std::string::npos);
    EXPECT_NE(html.find("gamma16@48"), std::string::npos);
    EXPECT_NE(html.find("10400"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("stable_fraction shifted"), std::string::npos);
    // Self-contained: no external scripts, stylesheets, or images.
    EXPECT_EQ(html.find("src=\"http"), std::string::npos);
    EXPECT_EQ(html.find("href=\"http"), std::string::npos);
}

TEST(DashboardTest, EscapesHtmlInUserishStrings) {
    obs::dashboard_model model;
    model.title = "<script>alert(1)</script>";
    const std::string html = obs::render_dashboard(model);
    EXPECT_EQ(html.find("<script>alert"), std::string::npos);
    EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(DashboardTest, ValueFormattingKeepsIntegersIntegral) {
    EXPECT_EQ(obs::dashboard_value(12), "12");
    EXPECT_EQ(obs::dashboard_value(0.5), "0.5");
    const std::string big = obs::dashboard_value(1.0e6);
    EXPECT_NE(big.find("1"), std::string::npos);
}

}  // namespace
