// Runtime-dispatch coverage: the pure resolve function, the CPUID probe,
// and the table fallback contract.

#include <gtest/gtest.h>

#include <cstdlib>

#include "v6class/simd/kernels.h"

namespace {

using v6::simd::level;

TEST(SimdDispatch, ResolveIsPure) {
    // Unset / empty / "0" keep the detected level.
    EXPECT_EQ(v6::simd::resolve_level(nullptr, level::avx2), level::avx2);
    EXPECT_EQ(v6::simd::resolve_level("", level::avx2), level::avx2);
    EXPECT_EQ(v6::simd::resolve_level("0", level::avx2), level::avx2);
    EXPECT_EQ(v6::simd::resolve_level(nullptr, level::scalar), level::scalar);
    // Any other value forces scalar.
    EXPECT_EQ(v6::simd::resolve_level("1", level::avx2), level::scalar);
    EXPECT_EQ(v6::simd::resolve_level("yes", level::avx2), level::scalar);
    EXPECT_EQ(v6::simd::resolve_level("00", level::avx2), level::scalar);
    EXPECT_EQ(v6::simd::resolve_level("1", level::scalar), level::scalar);
}

TEST(SimdDispatch, DetectIsStableAndHonest) {
    const level a = v6::simd::detect_level();
    const level b = v6::simd::detect_level();
    EXPECT_EQ(a, b);
#if defined(__AVX2__)
    // A binary compiled *for* AVX2 can only be running on an AVX2 CPU.
    EXPECT_EQ(a, level::avx2);
#endif
}

TEST(SimdDispatch, ActiveLevelHonoursEnvironment) {
    const char* env = std::getenv("V6CLASS_FORCE_SCALAR");
    const level expected =
        v6::simd::resolve_level(env, v6::simd::detect_level());
    EXPECT_EQ(v6::simd::active_level(), expected);
    EXPECT_EQ(&v6::simd::active_table(),
              &v6::simd::table_for(v6::simd::active_level()));
}

TEST(SimdDispatch, TableForFallsBackToScalar) {
    // Requesting a level is always safe: an unavailable level resolves to
    // the scalar table rather than crashing on unsupported instructions.
    const auto& scalar = v6::simd::table_for(level::scalar);
    const auto& maybe_avx2 = v6::simd::table_for(level::avx2);
    if (v6::simd::detect_level() == level::scalar) {
        EXPECT_EQ(&maybe_avx2, &scalar);
    } else {
        EXPECT_NE(&maybe_avx2, &scalar);
    }
    EXPECT_NE(scalar.parse, nullptr);
    EXPECT_NE(scalar.sort_unique, nullptr);
}

TEST(SimdDispatch, LevelNames) {
    EXPECT_EQ(v6::simd::level_name(level::scalar), "scalar");
    EXPECT_EQ(v6::simd::level_name(level::avx2), "avx2");
}

}  // namespace
