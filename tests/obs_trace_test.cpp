// Tests for the execution tracer (per-thread span rings, cross-thread
// context propagation through the v6::par pool) and the sampling
// self-profiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "json_lite.h"
#include "v6class/obs/profile.h"
#include "v6class/obs/trace.h"
#include "v6class/par/pool.h"

namespace {

using namespace v6;
using v6::testing::json_checker;

class ObsTracerTest : public ::testing::Test {
protected:
    void SetUp() override { obs::tracer::reset(); }
    void TearDown() override {
        obs::tracer::reset();
        par::set_default_threads(0);
    }
};

TEST_F(ObsTracerTest, DisabledSpansAreNoOps) {
    ASSERT_FALSE(obs::tracer::enabled());
    {
        const obs::span outer("outer");
        EXPECT_EQ(outer.context().span_id, 0u);  // never started
        const obs::span inner("inner");
        EXPECT_EQ(obs::tracer::current().span_id, 0u);
    }
    EXPECT_TRUE(obs::tracer::snapshot().empty());
    EXPECT_EQ(obs::tracer::dropped(), 0u);
}

TEST_F(ObsTracerTest, NestedSpansParentOnOneThread) {
    obs::tracer::enable();
    std::uint64_t outer_id = 0, trace_id = 0;
    {
        const obs::span outer("outer");
        outer_id = outer.context().span_id;
        trace_id = outer.context().trace_id;
        EXPECT_NE(outer_id, 0u);
        EXPECT_EQ(trace_id, outer_id);  // root: trace_id = own span id
        const obs::span inner("inner");
        EXPECT_EQ(inner.context().trace_id, trace_id);
        EXPECT_EQ(obs::tracer::current().span_id, inner.context().span_id);
    }
    EXPECT_EQ(obs::tracer::current().span_id, 0u);

    const auto spans = obs::tracer::snapshot();
    ASSERT_EQ(spans.size(), 2u);  // inner emitted first (closes first)
    EXPECT_STREQ(spans[0].name, "outer");  // sorted by start time
    EXPECT_STREQ(spans[1].name, "inner");
    EXPECT_EQ(spans[1].parent_id, outer_id);
    EXPECT_EQ(spans[0].parent_id, 0u);
    EXPECT_EQ(spans[0].trace_id, trace_id);
    EXPECT_EQ(spans[1].trace_id, trace_id);
}

TEST_F(ObsTracerTest, SpanParentChildAcrossParFanOut) {
    obs::tracer::enable();
    par::set_default_threads(4);
    std::uint64_t root_id = 0, trace_id = 0;
    {
        const obs::span root("root");
        root_id = root.context().span_id;
        trace_id = root.context().trace_id;
        par::run_indexed(8, [](std::size_t) {
            const obs::span mid("mid");
            // Nested fan-out runs inline on the same thread, so leaf
            // spans parent to this task's mid span.
            par::run_indexed(2, [](std::size_t) { const obs::span leaf("leaf"); });
        });
    }

    const auto spans = obs::tracer::snapshot();
    std::vector<std::uint64_t> task_ids, mid_ids;
    std::size_t queue_waits = 0, leaves = 0;
    for (const auto& s : spans) {
        if (std::string(s.name) == "par.task") {
            EXPECT_EQ(s.trace_id, trace_id);
            EXPECT_EQ(s.parent_id, root_id);
            EXPECT_EQ(s.kind, obs::span_kind::run);
            task_ids.push_back(s.span_id);
        } else if (std::string(s.name) == "par.queue_wait") {
            EXPECT_EQ(s.trace_id, trace_id);
            EXPECT_EQ(s.parent_id, root_id);
            EXPECT_EQ(s.kind, obs::span_kind::queue_wait);
            ++queue_waits;
        } else if (std::string(s.name) == "mid") {
            EXPECT_EQ(s.trace_id, trace_id);
            mid_ids.push_back(s.parent_id);  // must be some par.task id
        } else if (std::string(s.name) == "leaf") {
            EXPECT_EQ(s.trace_id, trace_id);
            ++leaves;
        }
    }
    EXPECT_EQ(task_ids.size(), 8u);
    EXPECT_EQ(mid_ids.size(), 8u);
    EXPECT_EQ(leaves, 16u);
    // The submitting thread participates and always claims at least one
    // task, so at least one queue_wait span exists.
    EXPECT_GE(queue_waits, 1u);
    for (const std::uint64_t parent : mid_ids)
        EXPECT_NE(std::find(task_ids.begin(), task_ids.end(), parent),
                  task_ids.end());
}

TEST_F(ObsTracerTest, ContextScopeAdoptsForeignContext) {
    obs::tracer::enable();
    const obs::span root("root");
    const obs::span_context ctx = root.context();
    std::thread t([ctx] {
        const obs::context_scope adopt(ctx);
        const obs::span child("remote_child");
    });
    t.join();
    bool found = false;
    for (const auto& s : obs::tracer::snapshot()) {
        if (std::string(s.name) != "remote_child") continue;
        found = true;
        EXPECT_EQ(s.trace_id, ctx.trace_id);
        EXPECT_EQ(s.parent_id, ctx.span_id);
    }
    EXPECT_TRUE(found);
}

TEST_F(ObsTracerTest, RingWraparoundCountsDropped) {
    obs::tracer::enable();
    const std::size_t extra = 100;
    for (std::size_t i = 0; i < obs::tracer::ring_capacity + extra; ++i)
        obs::tracer::emit("wrap", obs::span_kind::run,
                          {0, obs::tracer::next_id()}, 0, i, 1);
    EXPECT_GE(obs::tracer::dropped(), extra);
    EXPECT_LE(obs::tracer::snapshot().size(), obs::tracer::ring_capacity);
    obs::tracer::reset();
    EXPECT_EQ(obs::tracer::dropped(), 0u);
    EXPECT_TRUE(obs::tracer::snapshot().empty());
}

TEST_F(ObsTracerTest, ConcurrentEmitAndSnapshot) {
    obs::tracer::enable();
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([w] {
            for (int i = 0; i < 20000; ++i) {
                const obs::span s(w % 2 ? "writer_odd" : "writer_even");
            }
        });
    }
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const auto spans = obs::tracer::snapshot();
            for (const auto& s : spans) {
                // A torn read would show as a wild pointer; touching the
                // name under ASan/TSan is the real assertion here.
                ASSERT_NE(s.name, nullptr);
            }
        }
    });
    for (auto& t : writers) t.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    EXPECT_TRUE(json_checker::valid(obs::tracer::chrome_json()));
}

TEST_F(ObsTracerTest, ChromeJsonShapeAndThreadNames) {
    obs::tracer::enable();
    obs::tracer::set_thread_name("trace-test-main");
    {
        const obs::span s("alpha", obs::span_kind::merge);
    }
    const std::string json = obs::tracer::chrome_json();
    EXPECT_TRUE(json_checker::valid(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"alpha\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("trace-test-main"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"merge\""), std::string::npos);  // the category
}

TEST_F(ObsTracerTest, EmitWhileDisabledIsDiscarded) {
    obs::tracer::emit("ghost", obs::span_kind::run, {0, 1}, 0, 0, 1);
    EXPECT_TRUE(obs::tracer::snapshot().empty());
}

TEST(ObsProfilerTest, StartSamplesAndStops) {
    if (!obs::profiler::start(500)) GTEST_SKIP() << "profiler unsupported";
    // Busy work until at least one SIGPROF sample lands (bounded wait).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::atomic<std::uint64_t> sink{0};
    while (obs::profiler::sample_count() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        for (int i = 0; i < 100000; ++i)
            sink.fetch_add(static_cast<std::uint64_t>(i),
                           std::memory_order_relaxed);
    }
    obs::profiler::stop();
    EXPECT_FALSE(obs::profiler::running());
    obs::profiler::stop();  // idempotent
    ASSERT_GE(obs::profiler::sample_count(), 1u);
    const std::string folded = obs::profiler::folded_text();
    ASSERT_FALSE(folded.empty());
    // Folded lines are "thread;frame;... count"; the calling thread was
    // registered as "main" by start().
    EXPECT_NE(folded.find("main"), std::string::npos);
    EXPECT_NE(folded.find(' '), std::string::npos);
}

TEST(ObsProfilerTest, SecondStartWhileRunningFails) {
    if (!obs::profiler::start(101)) GTEST_SKIP() << "profiler unsupported";
    EXPECT_TRUE(obs::profiler::running());
    EXPECT_FALSE(obs::profiler::start(101));
    obs::profiler::stop();
}

}  // namespace
