// Tests for line-oriented address I/O, including failure accounting and
// robustness against garbage input.
#include <gtest/gtest.h>

#include <sstream>

#include "v6class/ip/io.h"
#include "v6class/netgen/rng.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(ReadAddressLinesTest, MixedContent) {
    std::istringstream in(
        "# a comment\n"
        "2001:db8::1\n"
        "\n"
        "2001:db8::2 42\n"
        "   2001:db8::3\t7  \n"
        "not-an-address\n"
        "2001:db8::4 banana\n");
    std::vector<std::pair<address, std::uint64_t>> got;
    const read_report report = read_address_lines(
        in, [&](const address& a, std::uint64_t c) { got.emplace_back(a, c); });
    EXPECT_EQ(report.lines, 7u);
    EXPECT_EQ(report.parsed, 3u);
    EXPECT_EQ(report.comments, 1u);
    EXPECT_EQ(report.blank, 1u);
    EXPECT_EQ(report.malformed, 2u);
    ASSERT_EQ(report.first_errors.size(), 2u);
    EXPECT_EQ(report.first_errors[0].line_number, 6u);
    EXPECT_EQ(report.first_errors[0].text, "not-an-address");
    EXPECT_EQ(report.first_errors[1].line_number, 7u);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], (std::pair{"2001:db8::1"_v6, std::uint64_t{1}}));
    EXPECT_EQ(got[1], (std::pair{"2001:db8::2"_v6, std::uint64_t{42}}));
    EXPECT_EQ(got[2], (std::pair{"2001:db8::3"_v6, std::uint64_t{7}}));
}

TEST(ReadAddressLinesTest, ZeroCountIsMalformed) {
    std::istringstream in("2001:db8::1 0\n");
    std::vector<address> got;
    const read_report report = read_addresses(in, got);
    EXPECT_EQ(report.malformed, 1u);
    EXPECT_TRUE(got.empty());
}

TEST(ReadAddressLinesTest, CrLfTolerant) {
    std::istringstream in("2001:db8::1\r\n2001:db8::2 9\r\n");
    std::vector<address> got;
    const read_report report = read_addresses(in, got);
    EXPECT_EQ(report.parsed, 2u);
    EXPECT_EQ(report.malformed, 0u);
}

TEST(WriteAddressesTest, RoundTrip) {
    const std::vector<address> addrs{"2001:db8::1"_v6, "fe80::1"_v6,
                                     "2002:c000:221::42"_v6};
    std::ostringstream out;
    write_addresses(out, addrs);
    std::istringstream in(out.str());
    std::vector<address> back;
    const read_report report = read_addresses(in, back);
    EXPECT_EQ(report.malformed, 0u);
    EXPECT_EQ(back, addrs);
}

TEST(WriteAddressCountsTest, RoundTrip) {
    const std::vector<std::pair<address, std::uint64_t>> records{
        {"2001:db8::1"_v6, 5}, {"2001:db8::2"_v6, 123456789}};
    std::ostringstream out;
    write_address_counts(out, records);
    std::istringstream in(out.str());
    std::vector<std::pair<address, std::uint64_t>> back;
    read_address_lines(in, [&](const address& a, std::uint64_t c) {
        back.emplace_back(a, c);
    });
    EXPECT_EQ(back, records);
}

TEST(ReadAddressLinesTest, ErrorSamplesAreCapped) {
    std::ostringstream feed;
    for (int i = 0; i < 100; ++i) feed << "garbage-" << i << "\n";
    std::istringstream in(feed.str());
    std::vector<address> got;
    const read_report report = read_addresses(in, got);
    EXPECT_EQ(report.malformed, 100u);
    EXPECT_EQ(report.first_errors.size(), 8u);
}

TEST(ReadPrefixLinesTest, RouteDumpFormat) {
    std::istringstream in(
        "# routes\n"
        "2001:db8::/32 64500\n"
        "2002::/16 64501\n"
        "2a00:0:800::/41\n"
        "garbage/xx 3\n");
    std::vector<std::pair<prefix, std::uint64_t>> got;
    const read_report report = read_prefix_lines(
        in, [&](const prefix& p, std::uint64_t v) { got.emplace_back(p, v); });
    EXPECT_EQ(report.parsed, 3u);
    EXPECT_EQ(report.malformed, 1u);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].first.to_string(), "2001:db8::/32");
    EXPECT_EQ(got[0].second, 64500u);
    EXPECT_EQ(got[2].second, 0u);  // value optional
}

TEST(WritePrefixValuesTest, RoundTrip) {
    const std::vector<std::pair<prefix, std::uint64_t>> records{
        {prefix::must_parse("2001:db8::/32"), 7},
        {prefix::must_parse("2600::/12"), 99}};
    std::ostringstream out;
    write_prefix_values(out, records);
    std::istringstream in(out.str());
    std::vector<std::pair<prefix, std::uint64_t>> back;
    read_prefix_lines(in, [&](const prefix& p, std::uint64_t v) {
        back.emplace_back(p, v);
    });
    EXPECT_EQ(back, records);
}

// Robustness: random byte soup must never crash or hang the reader, and
// accounting must stay consistent.
class IoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzz, RandomBytesAreHandled) {
    rng r{GetParam()};
    std::string soup;
    for (int i = 0; i < 4096; ++i) {
        const char c = static_cast<char>(r.uniform(96) + 32 - (r.chance(0.1) ? 22 : 0));
        soup += (r.chance(0.05) ? '\n' : c);
    }
    std::istringstream in(soup);
    std::vector<address> got;
    const read_report report = read_addresses(in, got);
    EXPECT_EQ(report.parsed, got.size());
    EXPECT_EQ(report.lines,
              report.parsed + report.blank + report.comments + report.malformed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace v6
