// Functional tests of the streaming sketches: HLL semantics (idempotent
// add, exact union under merge, reset, precision clamping) and the P²
// quantile estimator's exact-phase and marker-phase behaviour. The
// statistical error bounds live in obs_sketch_accuracy_test.cpp (the
// slow-labeled binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "v6class/obs/sketch.h"

namespace {

using namespace v6;

TEST(HyperLogLogTest, EmptySketchEstimatesZero) {
    obs::hyperloglog hll;
    EXPECT_EQ(hll.estimate(), 0.0);
}

TEST(HyperLogLogTest, PrecisionControlsRegisterCount) {
    EXPECT_EQ(obs::hyperloglog(10).register_count(), 1024u);
    EXPECT_EQ(obs::hyperloglog(14).register_count(), 16384u);
    // Out-of-range precision clamps instead of allocating absurdly.
    EXPECT_EQ(obs::hyperloglog(2).precision(), 4u);
    EXPECT_EQ(obs::hyperloglog(40).precision(), 18u);
}

TEST(HyperLogLogTest, DuplicatesAreIdempotent) {
    obs::hyperloglog hll;
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t i = 0; i < 100; ++i) hll.add(i);
    // 1000 adds of 100 distinct values: the estimate tracks distinct
    // count, and at this range the linear-counting correction makes it
    // essentially exact.
    EXPECT_NEAR(hll.estimate(), 100.0, 3.0);
}

TEST(HyperLogLogTest, SmallRangeIsNearExact) {
    obs::hyperloglog hll;
    for (std::uint64_t i = 0; i < 1000; ++i) hll.add(i);
    EXPECT_NEAR(hll.estimate(), 1000.0, 20.0);
}

TEST(HyperLogLogTest, MergeEstimatesTheUnion) {
    obs::hyperloglog a(12), b(12), u(12);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        a.add(i);
        u.add(i);
    }
    for (std::uint64_t i = 2500; i < 7500; ++i) {  // half overlaps a
        b.add(i);
        u.add(i);
    }
    a.merge(b);
    // Register-wise max is an exact union: merged sketch == sketch of
    // the union, so the estimates agree exactly, not just closely.
    EXPECT_EQ(a.estimate(), u.estimate());
    EXPECT_NEAR(a.estimate(), 7500.0, 7500.0 * 0.05);
}

TEST(HyperLogLogTest, ResetReturnsToEmpty) {
    obs::hyperloglog hll;
    for (std::uint64_t i = 0; i < 1000; ++i) hll.add(i);
    ASSERT_GT(hll.estimate(), 0.0);
    hll.reset();
    EXPECT_EQ(hll.estimate(), 0.0);
    EXPECT_EQ(hll.register_count(), 16384u);  // registers stay allocated
    hll.add(42);
    EXPECT_GT(hll.estimate(), 0.0);
}

TEST(P2QuantileTest, ZeroBeforeAnyObservation) {
    obs::p2_quantile p2(0.5);
    EXPECT_EQ(p2.value(), 0.0);
    EXPECT_EQ(p2.count(), 0u);
    EXPECT_EQ(p2.quantile(), 0.5);
}

TEST(P2QuantileTest, ExactBelowFiveSamples) {
    obs::p2_quantile median(0.5);
    median.observe(5.0);
    EXPECT_EQ(median.value(), 5.0);
    median.observe(1.0);
    median.observe(9.0);
    EXPECT_EQ(median.value(), 5.0);  // median of {1, 5, 9}
}

TEST(P2QuantileTest, MedianOfUniformRamp) {
    obs::p2_quantile median(0.5);
    for (int i = 1; i <= 1001; ++i) median.observe(static_cast<double>(i));
    EXPECT_NEAR(median.value(), 501.0, 10.0);
    EXPECT_EQ(median.count(), 1001u);
}

TEST(P2QuantileTest, P99TracksTheTail) {
    obs::p2_quantile p99(0.99);
    // 1% of samples at 100, the rest at 1: p99 must sit near the jump.
    for (int i = 0; i < 10000; ++i) p99.observe(i % 100 == 0 ? 100.0 : 1.0);
    EXPECT_GE(p99.value(), 1.0);
    EXPECT_LE(p99.value(), 100.0);
}

TEST(P2QuantileTest, ResetClearsState) {
    obs::p2_quantile median(0.5);
    for (int i = 0; i < 100; ++i) median.observe(50.0);
    median.reset();
    EXPECT_EQ(median.count(), 0u);
    EXPECT_EQ(median.value(), 0.0);
    median.observe(7.0);
    EXPECT_EQ(median.value(), 7.0);
}

TEST(P2QuantileTest, ConstantStreamIsExact) {
    obs::p2_quantile p90(0.9);
    for (int i = 0; i < 1000; ++i) p90.observe(3.5);
    EXPECT_DOUBLE_EQ(p90.value(), 3.5);
}

}  // namespace
