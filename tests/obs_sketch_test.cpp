// Functional tests of the streaming sketches: HLL semantics (idempotent
// add, exact union under merge, reset, precision clamping) and the P²
// quantile estimator's exact-phase and marker-phase behaviour. The
// statistical error bounds live in obs_sketch_accuracy_test.cpp (the
// slow-labeled binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "v6class/obs/sketch.h"

namespace {

using namespace v6;

TEST(HyperLogLogTest, EmptySketchEstimatesZero) {
    obs::hyperloglog hll;
    EXPECT_EQ(hll.estimate(), 0.0);
}

TEST(HyperLogLogTest, PrecisionControlsRegisterCount) {
    EXPECT_EQ(obs::hyperloglog(10).register_count(), 1024u);
    EXPECT_EQ(obs::hyperloglog(14).register_count(), 16384u);
    // Out-of-range precision clamps instead of allocating absurdly.
    EXPECT_EQ(obs::hyperloglog(2).precision(), 4u);
    EXPECT_EQ(obs::hyperloglog(40).precision(), 18u);
}

TEST(HyperLogLogTest, DuplicatesAreIdempotent) {
    obs::hyperloglog hll;
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t i = 0; i < 100; ++i) hll.add(i);
    // 1000 adds of 100 distinct values: the estimate tracks distinct
    // count, and at this range the linear-counting correction makes it
    // essentially exact.
    EXPECT_NEAR(hll.estimate(), 100.0, 3.0);
}

TEST(HyperLogLogTest, SmallRangeIsNearExact) {
    obs::hyperloglog hll;
    for (std::uint64_t i = 0; i < 1000; ++i) hll.add(i);
    EXPECT_NEAR(hll.estimate(), 1000.0, 20.0);
}

TEST(HyperLogLogTest, MergeEstimatesTheUnion) {
    obs::hyperloglog a(12), b(12), u(12);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        a.add(i);
        u.add(i);
    }
    for (std::uint64_t i = 2500; i < 7500; ++i) {  // half overlaps a
        b.add(i);
        u.add(i);
    }
    a.merge(b);
    // Register-wise max is an exact union: merged sketch == sketch of
    // the union, so the estimates agree exactly, not just closely.
    EXPECT_EQ(a.estimate(), u.estimate());
    EXPECT_NEAR(a.estimate(), 7500.0, 7500.0 * 0.05);
}

TEST(HyperLogLogTest, ResetReturnsToEmpty) {
    obs::hyperloglog hll;
    for (std::uint64_t i = 0; i < 1000; ++i) hll.add(i);
    ASSERT_GT(hll.estimate(), 0.0);
    hll.reset();
    EXPECT_EQ(hll.estimate(), 0.0);
    EXPECT_EQ(hll.register_count(), 16384u);  // registers stay allocated
    hll.add(42);
    EXPECT_GT(hll.estimate(), 0.0);
}

TEST(P2QuantileTest, ZeroBeforeAnyObservation) {
    obs::p2_quantile p2(0.5);
    EXPECT_EQ(p2.value(), 0.0);
    EXPECT_EQ(p2.count(), 0u);
    EXPECT_EQ(p2.quantile(), 0.5);
}

TEST(P2QuantileTest, ExactBelowFiveSamples) {
    obs::p2_quantile median(0.5);
    median.observe(5.0);
    EXPECT_EQ(median.value(), 5.0);
    median.observe(1.0);
    median.observe(9.0);
    EXPECT_EQ(median.value(), 5.0);  // median of {1, 5, 9}
}

TEST(P2QuantileTest, MedianOfUniformRamp) {
    obs::p2_quantile median(0.5);
    for (int i = 1; i <= 1001; ++i) median.observe(static_cast<double>(i));
    EXPECT_NEAR(median.value(), 501.0, 10.0);
    EXPECT_EQ(median.count(), 1001u);
}

TEST(P2QuantileTest, P99TracksTheTail) {
    obs::p2_quantile p99(0.99);
    // 1% of samples at 100, the rest at 1: p99 must sit near the jump.
    for (int i = 0; i < 10000; ++i) p99.observe(i % 100 == 0 ? 100.0 : 1.0);
    EXPECT_GE(p99.value(), 1.0);
    EXPECT_LE(p99.value(), 100.0);
}

TEST(P2QuantileTest, ResetClearsState) {
    obs::p2_quantile median(0.5);
    for (int i = 0; i < 100; ++i) median.observe(50.0);
    median.reset();
    EXPECT_EQ(median.count(), 0u);
    EXPECT_EQ(median.value(), 0.0);
    median.observe(7.0);
    EXPECT_EQ(median.value(), 7.0);
}

TEST(P2QuantileTest, ConstantStreamIsExact) {
    obs::p2_quantile p90(0.9);
    for (int i = 0; i < 1000; ++i) p90.observe(3.5);
    EXPECT_DOUBLE_EQ(p90.value(), 3.5);
}

// ------------------------------------------------- wire round-trips
// The federation contract: a sketch that crosses a process boundary
// must union exactly as if it had never been serialized.

TEST(HyperLogLogWireTest, RoundTripIsBitForBit) {
    obs::hyperloglog hll(12);
    for (std::uint64_t i = 0; i < 5000; ++i) hll.add(i * 2654435761u);
    std::vector<std::uint8_t> wire;
    hll.serialize(wire);
    ASSERT_EQ(wire.size(), 1u + hll.register_count());
    EXPECT_EQ(wire[0], hll.precision());
    const auto back = obs::hyperloglog::deserialize(wire.data(), wire.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == hll);  // registers, not just estimates
    EXPECT_EQ(back->estimate(), hll.estimate());
}

TEST(HyperLogLogWireTest, UnionOfDeserializedEqualsUnionOfOriginals) {
    obs::hyperloglog a(12), b(12);
    for (std::uint64_t i = 0; i < 4000; ++i) a.add(i);
    for (std::uint64_t i = 2000; i < 6000; ++i) b.add(i);

    std::vector<std::uint8_t> wa, wb;
    a.serialize(wa);
    b.serialize(wb);
    auto da = obs::hyperloglog::deserialize(wa.data(), wa.size());
    const auto db = obs::hyperloglog::deserialize(wb.data(), wb.size());
    ASSERT_TRUE(da.has_value() && db.has_value());

    obs::hyperloglog direct = a;
    direct.merge(b);
    da->merge(*db);
    // Bit-for-bit: the union commutes with serialization.
    EXPECT_TRUE(*da == direct);
    EXPECT_EQ(da->estimate(), direct.estimate());
}

TEST(HyperLogLogWireTest, EmptySketchRoundTripsAndUnionsAsIdentity) {
    const obs::hyperloglog empty(10);
    std::vector<std::uint8_t> wire;
    empty.serialize(wire);
    auto back = obs::hyperloglog::deserialize(wire.data(), wire.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == empty);
    EXPECT_EQ(back->estimate(), 0.0);

    // Merging a deserialized empty sketch must not perturb anything.
    obs::hyperloglog full(10), want(10);
    for (std::uint64_t i = 0; i < 500; ++i) {
        full.add(i);
        want.add(i);
    }
    full.merge(*back);
    EXPECT_TRUE(full == want);
}

TEST(HyperLogLogWireTest, SingleRegisterSketchRoundTrips) {
    // One add() populates exactly one register — the smallest non-empty
    // state, and the one where an off-by-one in the register loop shows.
    obs::hyperloglog one(4);
    one.add(0xdeadbeefcafef00dull);
    std::size_t populated = 0;
    for (const std::uint8_t r : one.registers()) populated += r != 0;
    ASSERT_EQ(populated, 1u);

    std::vector<std::uint8_t> wire;
    one.serialize(wire);
    auto back = obs::hyperloglog::deserialize(wire.data(), wire.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == one);

    obs::hyperloglog merged(4);
    merged.merge(*back);
    EXPECT_TRUE(merged == one);
}

TEST(HyperLogLogWireTest, DeserializeRejectsMalformedBuffers) {
    obs::hyperloglog hll(6);
    hll.add(7);
    std::vector<std::uint8_t> wire;
    hll.serialize(wire);

    // Precision outside [4, 18].
    auto bad = wire;
    bad[0] = 3;
    EXPECT_FALSE(obs::hyperloglog::deserialize(bad.data(), bad.size()));
    bad[0] = 19;
    EXPECT_FALSE(obs::hyperloglog::deserialize(bad.data(), bad.size()));
    // Buffer shorter / longer than 1 + 2^precision.
    EXPECT_FALSE(obs::hyperloglog::deserialize(wire.data(), wire.size() - 1));
    bad = wire;
    bad.push_back(0);
    EXPECT_FALSE(obs::hyperloglog::deserialize(bad.data(), bad.size()));
    EXPECT_FALSE(obs::hyperloglog::deserialize(wire.data(), 0));
    // A register value add() could never produce (> 65 - precision).
    bad = wire;
    bad[1] = 61;  // 65 - 6 = 59 is the ceiling at precision 6
    EXPECT_FALSE(obs::hyperloglog::deserialize(bad.data(), bad.size()));
}

TEST(P2QuantileWireTest, ExactPhaseRoundTripsAndKeepsObserving) {
    obs::p2_quantile median(0.5);
    median.observe(3.0);
    median.observe(1.0);  // two samples: still in the exact phase
    std::vector<std::uint8_t> wire;
    median.serialize(wire);
    auto back = obs::p2_quantile::deserialize(wire.data(), wire.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == median);

    // The restored estimator continues as the original would.
    back->observe(9.0);
    median.observe(9.0);
    EXPECT_TRUE(*back == median);
    EXPECT_EQ(back->value(), 3.0);  // median of {1, 3, 9}
}

TEST(P2QuantileWireTest, MarkerPhaseRoundTripsBitForBit) {
    obs::p2_quantile p99(0.99);
    for (int i = 1; i <= 500; ++i) p99.observe(static_cast<double>(i % 97));
    std::vector<std::uint8_t> wire;
    p99.serialize(wire);
    const auto back = obs::p2_quantile::deserialize(wire.data(), wire.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == p99);
    EXPECT_EQ(back->count(), 500u);
    EXPECT_EQ(back->value(), p99.value());
}

TEST(P2QuantileWireTest, DeserializeRejectsMalformedBuffers) {
    obs::p2_quantile p2(0.5);
    for (int i = 0; i < 20; ++i) p2.observe(i);
    std::vector<std::uint8_t> wire;
    p2.serialize(wire);

    EXPECT_FALSE(obs::p2_quantile::deserialize(wire.data(), wire.size() - 1));
    auto bad = wire;
    bad.push_back(0);
    EXPECT_FALSE(obs::p2_quantile::deserialize(bad.data(), bad.size()));
    EXPECT_FALSE(obs::p2_quantile::deserialize(wire.data(), 0));
    // q outside (0, 1): patch the leading LE double to 1.5.
    bad = wire;
    const double bad_q = 1.5;
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof bad_q);
    std::memcpy(&bits, &bad_q, sizeof bits);
    for (int i = 0; i < 8; ++i)
        bad[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(bits >> (8 * i));
    EXPECT_FALSE(obs::p2_quantile::deserialize(bad.data(), bad.size()));
}

}  // namespace
