// Tests for the active-scan simulation.
#include <gtest/gtest.h>

#include <algorithm>

#include "v6class/netgen/rng.h"
#include "v6class/routersim/scan.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(RunScanTest, CountsResponders) {
    std::vector<address> live{"2001:db8::1"_v6, "2001:db8::5"_v6};
    std::sort(live.begin(), live.end());
    const scan_outcome out = run_scan(
        {"2001:db8::1"_v6, "2001:db8::2"_v6, "2001:db8::5"_v6}, live);
    EXPECT_EQ(out.probes, 3u);
    EXPECT_EQ(out.responders, 2u);
    EXPECT_NEAR(out.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(RunScanTest, EmptyInputs) {
    EXPECT_EQ(run_scan({}, {}).probes, 0u);
    EXPECT_DOUBLE_EQ(run_scan({}, {}).hit_rate(), 0.0);
}

TEST(DenseSurveyTest, DensestBlockFirstUnderBudget) {
    // Two /120 blocks: one with 8 live hosts, one with 2. With a budget
    // of one block (256 probes), the denser one must be scanned.
    std::vector<address> live;
    for (unsigned i = 1; i <= 8; ++i)
        live.push_back(address::from_pair(0x20010db800000001ull, i));
    for (unsigned i = 1; i <= 2; ++i)
        live.push_back(address::from_pair(0x20010db800000002ull, i));
    std::sort(live.begin(), live.end());
    const std::vector<dense_prefix> dense{
        {prefix{address::from_pair(0x20010db800000002ull, 0), 120}, 2},
        {prefix{address::from_pair(0x20010db800000001ull, 0), 120}, 8},
    };
    const survey_outcome out = run_dense_survey(dense, live, 256);
    EXPECT_EQ(out.scan.probes, 256u);
    EXPECT_EQ(out.scan.responders, 8u);  // the dense block's hosts
    EXPECT_EQ(out.blocks_started, 1u);
    EXPECT_EQ(out.blocks_completed, 1u);
}

TEST(DenseSurveyTest, CompletesAllBlocksWithAmpleBudget) {
    std::vector<address> live{address::from_pair(0xaa, 1),
                              address::from_pair(0xaa, 2)};
    std::sort(live.begin(), live.end());
    const std::vector<dense_prefix> dense{
        {prefix{address::from_pair(0xaa, 0), 120}, 2}};
    const survey_outcome out = run_dense_survey(dense, live, 1'000'000);
    EXPECT_EQ(out.blocks_completed, 1u);
    EXPECT_EQ(out.scan.probes, 256u);
    EXPECT_EQ(out.scan.responders, 2u);
}

TEST(DenseSurveyTest, SkipsUnscannableBlocks) {
    const std::vector<dense_prefix> dense{
        {prefix{address::from_pair(0xaa, 0), 64}, 100}};
    const survey_outcome out = run_dense_survey(dense, {}, 1000);
    EXPECT_EQ(out.blocks_started, 0u);
    EXPECT_EQ(out.scan.probes, 0u);
}

TEST(RandomScanTest, ProbesStayInsidePrefixes) {
    const std::vector<prefix> within{prefix::must_parse("2001:db8::/32")};
    rng r{1};
    // Live set = everything we might probe is unknowable; instead verify
    // containment by re-running with a live set equal to one known probe.
    const scan_outcome out = run_random_scan(within, {}, 500, 7);
    EXPECT_EQ(out.probes, 500u);
    EXPECT_EQ(out.responders, 0u);
}

TEST(RandomScanTest, BlindScanningIsHopeless) {
    // 10K live hosts scattered in a /32: random probing finds none.
    rng r{9};
    std::vector<address> live;
    for (int i = 0; i < 10'000; ++i)
        live.push_back(address::from_pair(0x20010db800000000ull | (r() >> 32),
                                          r()));
    std::sort(live.begin(), live.end());
    const scan_outcome out = run_random_scan(
        {prefix::must_parse("2001:db8::/32")}, live, 200'000, 11);
    EXPECT_EQ(out.responders, 0u);
}

TEST(RandomScanTest, DeterministicInSeed) {
    const std::vector<prefix> within{prefix::must_parse("2001:db8::/126")};
    std::vector<address> live{address::must_parse("2001:db8::2")};
    const scan_outcome a = run_random_scan(within, live, 100, 3);
    const scan_outcome b = run_random_scan(within, live, 100, 3);
    EXPECT_EQ(a.responders, b.responders);
    EXPECT_GT(a.responders, 0u);  // 1-in-4 space, 100 probes
}

}  // namespace
}  // namespace v6
