// Tests for v6::obs::pmu — the perf_event_open counter groups behind
// pmu_scope, /pmu, and the bench IPC counters. The box running the
// suite decides how much hardware there is (a locked-down
// perf_event_paranoid or a VM without a PMU degrades the probe to the
// software tier or to unavailable), so every test that needs live
// counters GTEST_SKIPs rather than fails when the tier is too low: the
// scaling math, the JSON/HTML shape, the export and HTTP plumbing, and
// the V6CLASS_DISABLE_PMU kill switch are still exercised everywhere.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "json_lite.h"
#include "v6class/obs/http.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/pmu.h"

namespace {

using namespace v6;

/// Burns enough user-space cycles that any live counter must move.
std::uint64_t spin() {
    volatile std::uint64_t acc = 1;
    for (std::uint64_t i = 1; i < 2000000; ++i) acc = acc * 31 + i;
    return acc;
}

std::string http_get(std::uint16_t port, const std::string& target) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return "";
    }
    const std::string request =
        "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    (void)!::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

/// Every test starts from a clean slate (fresh probe, empty sites) and
/// leaves the global disabled so tests cannot observe each other.
class ObsPmuTest : public ::testing::Test {
protected:
    void SetUp() override {
        ::unsetenv("V6CLASS_DISABLE_PMU");
        obs::pmu::reset_for_test();
    }
    void TearDown() override {
        ::unsetenv("V6CLASS_DISABLE_PMU");
        obs::pmu::reset_for_test();
    }
};

// ---- multiplexing scale math: pure arithmetic, runs on any box ----

TEST_F(ObsPmuTest, ScaleValuePassthroughWhenNeverMultiplexed) {
    // enabled == running: the kernel scheduled the group the whole time.
    EXPECT_EQ(obs::pmu::scale_value(1000, 500, 500), 1000u);
    EXPECT_EQ(obs::pmu::scale_value(0, 123, 123), 0u);
}

TEST_F(ObsPmuTest, ScaleValueExtrapolatesMultiplexedWindows) {
    // Scheduled half the time -> the estimate doubles (rounded).
    EXPECT_EQ(obs::pmu::scale_value(1000, 1000, 500), 2000u);
    // Scheduled 3/4 of the time: 900 * 4/3 = 1200.
    EXPECT_EQ(obs::pmu::scale_value(900, 1000, 750), 1200u);
    // Rounding, not truncation: 10 * 3/2 = 15.
    EXPECT_EQ(obs::pmu::scale_value(10, 3, 2), 15u);
}

TEST_F(ObsPmuTest, ScaleValueNeverScheduledIsZeroOrRaw) {
    // Enabled but never scheduled: no basis to extrapolate -> 0.
    EXPECT_EQ(obs::pmu::scale_value(7, 1000, 0), 0u);
    // Never even enabled (both zero): the raw value passes through.
    EXPECT_EQ(obs::pmu::scale_value(7, 0, 0), 7u);
}

// ---- availability probe ----

TEST_F(ObsPmuTest, ProbeAlwaysExplainsItself) {
    const obs::pmu::availability& pa = obs::pmu::available();
    EXPECT_FALSE(pa.reason.empty());
    if (pa.hardware()) {
        EXPECT_EQ(pa.reason, "ok");
    }
    // The probe is cached: a second call returns the identical object.
    EXPECT_EQ(&pa, &obs::pmu::available());
}

TEST_F(ObsPmuTest, DisableEnvForcesUnavailableNoOp) {
    ::setenv("V6CLASS_DISABLE_PMU", "1", 1);
    obs::pmu::reset_for_test();
    const obs::pmu::availability& pa = obs::pmu::available();
    EXPECT_FALSE(pa.counting());
    EXPECT_NE(pa.reason.find("V6CLASS_DISABLE_PMU"), std::string::npos);
    obs::pmu::enable();  // must refuse: nothing to count
    EXPECT_FALSE(obs::pmu::enabled());
    {
        const obs::pmu_scope scope("pmu_test.disabled");
        spin();
    }
    EXPECT_EQ(obs::pmu::site_totals("pmu_test.disabled").spans, 0u);
    EXPECT_FALSE(obs::pmu::read_current().ok);
    // The snapshot still renders (mode + reason), it just has no data.
    const std::string json = obs::pmu::snapshot_json();
    EXPECT_TRUE(v6::testing::json_checker::valid(json)) << json;
    EXPECT_NE(json.find("unavailable"), std::string::npos);
}

TEST_F(ObsPmuTest, DisableEnvZeroMeansEnabled) {
    ::setenv("V6CLASS_DISABLE_PMU", "0", 1);
    obs::pmu::reset_for_test();
    // "0" is not a disable: the probe proceeds to the real tiers.
    EXPECT_EQ(obs::pmu::available().reason.find("V6CLASS_DISABLE_PMU"),
              std::string::npos);
}

// ---- live counting (skips where the probe found nothing) ----

TEST_F(ObsPmuTest, GroupReadIsSaneUnderLoad) {
    if (!obs::pmu::available().counting())
        GTEST_SKIP() << "pmu unavailable: " << obs::pmu::available().reason;
    obs::pmu::enable();
    const obs::pmu::sample a = obs::pmu::read_current();
    ASSERT_TRUE(a.ok);
    spin();
    const obs::pmu::sample b = obs::pmu::read_current();
    ASSERT_TRUE(b.ok);
    // task-clock rides in every tier and only moves forward; the spin
    // is milliseconds of pure user CPU, so it must have advanced.
    ASSERT_TRUE(b.has(obs::pmu::counter::task_clock_ns));
    EXPECT_GT(b[obs::pmu::counter::task_clock_ns],
              a[obs::pmu::counter::task_clock_ns]);
    EXPECT_GE(b.time_enabled, a.time_enabled);
    EXPECT_GE(b.time_running, a.time_running);
    if (obs::pmu::available().hardware()) {
        ASSERT_TRUE(b.has(obs::pmu::counter::instructions));
        EXPECT_GT(b.scaled(obs::pmu::counter::instructions),
                  a.scaled(obs::pmu::counter::instructions));
        EXPECT_GT(b.scaled(obs::pmu::counter::cycles), 0u);
    }
}

TEST_F(ObsPmuTest, ScopeDeltasAccumulateAtTheirSite) {
    if (!obs::pmu::available().counting())
        GTEST_SKIP() << "pmu unavailable: " << obs::pmu::available().reason;
    obs::pmu::enable();
    for (int i = 0; i < 3; ++i) {
        const obs::pmu_scope scope("pmu_test.outer");
        spin();
        {  // nested scopes attribute to their own site, not the outer's
            const obs::pmu_scope inner("pmu_test.inner");
            spin();
        }
    }
    const obs::pmu::site_stats outer = obs::pmu::site_totals("pmu_test.outer");
    const obs::pmu::site_stats inner = obs::pmu::site_totals("pmu_test.inner");
    EXPECT_EQ(outer.spans, 3u);
    EXPECT_EQ(inner.spans, 3u);
    using c = obs::pmu::counter;
    ASSERT_TRUE(outer.has(c::task_clock_ns));
    EXPECT_GT(outer[c::task_clock_ns], 0u);
    // The outer scope wraps the inner spin too, so it burned more CPU.
    EXPECT_GT(outer[c::task_clock_ns], inner[c::task_clock_ns]);
    if (obs::pmu::available().hardware()) {
        EXPECT_GT(outer.ipc(), 0.0);
        EXPECT_LT(outer.ipc(), 16.0);  // sane bound on any real core
    }
}

TEST_F(ObsPmuTest, ScopesAreFreeWhileDisabled) {
    if (!obs::pmu::available().counting())
        GTEST_SKIP() << "pmu unavailable: " << obs::pmu::available().reason;
    // Never enabled: scopes must not intern sites or touch counters.
    {
        const obs::pmu_scope scope("pmu_test.never_enabled");
        spin();
    }
    EXPECT_EQ(obs::pmu::site_totals("pmu_test.never_enabled").spans, 0u);
}

// ---- snapshot, export, HTTP ----

TEST_F(ObsPmuTest, SnapshotJsonIsWellFormedAndHtmlRenders) {
    if (obs::pmu::available().counting()) {
        obs::pmu::enable();
        const obs::pmu_scope scope("pmu_test.snapshot");
        spin();
    }
    const std::string json = obs::pmu::snapshot_json();
    EXPECT_TRUE(v6::testing::json_checker::valid(json)) << json;
    EXPECT_NE(json.find("\"mode\""), std::string::npos);
    EXPECT_NE(json.find("\"reason\""), std::string::npos);
    EXPECT_NE(json.find("\"sites\""), std::string::npos);
    const std::string html = obs::pmu::topdown_html();
    EXPECT_NE(html.find("<html"), std::string::npos);
    EXPECT_NE(html.find("pmu"), std::string::npos);
}

TEST_F(ObsPmuTest, ExportGaugesPublishesAvailabilityAndSites) {
    obs::registry reg;
    if (obs::pmu::available().counting()) {
        obs::pmu::enable();
        const obs::pmu_scope scope("pmu_test.export");
        spin();
    }
    obs::pmu::export_gauges(reg);
    const std::string text = reg.prometheus_text();
    // The availability gauge always exports, tier and reason as labels.
    EXPECT_NE(text.find("v6class_pmu_available"), std::string::npos);
    EXPECT_NE(text.find("mode="), std::string::npos);
    if (obs::pmu::available().counting()) {
        EXPECT_NE(text.find("v6class_pmu_site_spans"), std::string::npos);
        EXPECT_NE(text.find("pmu_test.export"), std::string::npos);
    }
}

TEST_F(ObsPmuTest, PmuEndpointServesJsonAndHtml) {
    obs::registry reg;
    obs::metrics_server server;
    std::string error;
    ASSERT_TRUE(server.start(0, &reg, &error)) << error;
    if (obs::pmu::available().counting()) {
        obs::pmu::enable();
        const obs::pmu_scope scope("pmu_test.http");
        spin();
    }
    const std::string json_reply = http_get(server.port(), "/pmu");
    EXPECT_NE(json_reply.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(json_reply.find("application/json"), std::string::npos);
    const std::string body = json_reply.substr(json_reply.find("\r\n\r\n") + 4);
    EXPECT_TRUE(v6::testing::json_checker::valid(body)) << body;
    const std::string html_reply =
        http_get(server.port(), "/pmu?format=html");
    EXPECT_NE(html_reply.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(html_reply.find("text/html"), std::string::npos);
    EXPECT_NE(html_reply.find("<html"), std::string::npos);
    server.stop();
}

}  // namespace
