// Statistical accuracy bounds of the streaming sketches, at realistic
// scale — labeled "slow" in ctest (scripts/check.sh excludes the label
// under sanitizers; run `ctest -L slow` to exercise these directly).
//
//   * HyperLogLog at the engine's default precision (p = 14) must land
//     within 2% relative error on one million distinct /64 prefixes —
//     the sketch's actual production diet (standard error at p = 14 is
//     1.04 / sqrt(2^14) ~ 0.8%, so 2% is ~2.5 sigma of headroom).
//   * P² must hold rank error <= 1%: the fraction of samples at or
//     below its estimate stays within one percentage point of the
//     requested quantile.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "v6class/ip/address.h"
#include "v6class/obs/sketch.h"

namespace {

using namespace v6;

/// splitmix64: deterministic, dependency-free sample generator.
std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// An address whose top 64 bits encode `i` (one /64 per i) and whose
/// interface identifier varies with `salt` — distinct addresses, but
/// only 2^much-fewer distinct /64s.
address make_addr(std::uint64_t i, std::uint64_t salt) {
    std::array<std::uint8_t, 16> bytes{};
    bytes[0] = 0x20;
    bytes[1] = 0x01;
    for (int b = 0; b < 6; ++b)
        bytes[2 + b] = static_cast<std::uint8_t>(i >> (8 * (5 - b)));
    for (int b = 0; b < 8; ++b)
        bytes[8 + b] = static_cast<std::uint8_t>(salt >> (8 * (7 - b)));
    return address(bytes);
}

TEST(HllAccuracyTest, MillionDistinct64sWithinTwoPercent) {
    constexpr std::uint64_t kDistinct = 1'000'000;
    obs::hyperloglog hll(14);  // the stream_config default
    for (std::uint64_t i = 0; i < kDistinct; ++i) {
        // Three addresses per /64 — distinct interface ids must not
        // inflate the prefix estimate.
        for (std::uint64_t salt = 1; salt <= 3; ++salt)
            hll.add(address_hash{}(make_addr(i, salt).masked(64)));
    }
    const double estimate = hll.estimate();
    const double rel_error =
        std::abs(estimate - static_cast<double>(kDistinct)) / kDistinct;
    EXPECT_LE(rel_error, 0.02) << "estimate " << estimate;
}

TEST(HllAccuracyTest, ErrorShrinksWithPrecision) {
    constexpr std::uint64_t kDistinct = 200'000;
    double errors[2] = {};
    const unsigned precisions[2] = {10, 14};
    for (int t = 0; t < 2; ++t) {
        obs::hyperloglog hll(precisions[t]);
        std::uint64_t rng = 7;
        for (std::uint64_t i = 0; i < kDistinct; ++i) hll.add(splitmix64(rng));
        errors[t] = std::abs(hll.estimate() - kDistinct) / kDistinct;
    }
    // p = 10 has ~3.2% standard error, p = 14 ~0.8%; allow generous
    // slack but insist the high-precision sketch is the tight one.
    EXPECT_LE(errors[1], 0.02);
    EXPECT_LE(errors[1], errors[0] + 0.01);
}

/// Rank error of a P² estimate against the sample set it was fed: the
/// empirical CDF at the estimate, minus the requested quantile.
double rank_error(const std::vector<double>& samples, double estimate,
                  double q) {
    const auto at_or_below = static_cast<double>(
        std::count_if(samples.begin(), samples.end(),
                      [&](double s) { return s <= estimate; }));
    return std::abs(at_or_below / static_cast<double>(samples.size()) - q);
}

TEST(P2AccuracyTest, RankErrorUnderOnePercent) {
    constexpr std::size_t kSamples = 200'000;
    const double quantiles[] = {0.5, 0.9, 0.99};
    for (const double q : quantiles) {
        obs::p2_quantile p2(q);
        std::vector<double> samples;
        samples.reserve(kSamples);
        std::uint64_t rng = 42;
        for (std::size_t i = 0; i < kSamples; ++i) {
            // Heavy-tailed hit-count-like distribution: exp of a
            // uniform, spanning ~4 decades.
            const double u =
                static_cast<double>(splitmix64(rng) >> 11) / 9007199254740992.0;
            const double x = std::exp(9.0 * u);
            samples.push_back(x);
            p2.observe(x);
        }
        EXPECT_LE(rank_error(samples, p2.value(), q), 0.01)
            << "q = " << q << ", estimate " << p2.value();
    }
}

TEST(P2AccuracyTest, UniformRampQuantilesAreTight) {
    constexpr std::size_t kSamples = 100'000;
    obs::p2_quantile p2(0.9);
    std::vector<double> samples;
    samples.reserve(kSamples);
    std::uint64_t rng = 1234;
    for (std::size_t i = 0; i < kSamples; ++i) {
        const double x = static_cast<double>(splitmix64(rng) % 1'000'000);
        samples.push_back(x);
        p2.observe(x);
    }
    EXPECT_LE(rank_error(samples, p2.value(), 0.9), 0.01);
}

}  // namespace
