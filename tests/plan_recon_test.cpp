// Tests for the Section 7.2 extension: longest stable prefixes from
// EUI-64 tracking.
#include <gtest/gtest.h>

#include "v6class/analysis/plan_recon.h"
#include "v6class/cdnsim/world.h"
#include "v6class/netgen/iid.h"

namespace v6 {
namespace {

address with_mac(std::uint64_t hi, const mac_address& mac) {
    return address::from_pair(hi, mac.to_eui64_iid());
}

TEST(PlanReconTest, IgnoresNonEui64) {
    plan_reconstructor recon;
    recon.observe_day({address::from_pair(0x20010db800000001ull, 0x1234)});
    EXPECT_EQ(recon.tracked_devices(), 0u);
}

TEST(PlanReconTest, SingleDayDevicesAreFiltered) {
    plan_reconstructor recon;
    const mac_address mac = device_mac(1);
    recon.observe_day({with_mac(0x20010db800000001ull, mac)});
    EXPECT_EQ(recon.tracked_devices(), 1u);
    EXPECT_TRUE(recon.device_tracks(2).empty());
    EXPECT_EQ(recon.device_tracks(1).size(), 1u);
}

TEST(PlanReconTest, StaticDeviceYieldsItsSlash64) {
    plan_reconstructor recon;
    const mac_address mac = device_mac(2);
    for (int day = 0; day < 3; ++day)
        recon.observe_day({with_mac(0x20010db8000a0001ull, mac)});
    const auto tracks = recon.device_tracks(2);
    ASSERT_EQ(tracks.size(), 1u);
    EXPECT_EQ(tracks[0].days_seen, 3u);
    EXPECT_EQ(tracks[0].distinct_64s, 1u);
    EXPECT_EQ(tracks[0].stable_prefix.length(), 64u);
}

TEST(PlanReconTest, RenumberedDeviceRevealsTheStableHead) {
    // A device whose network identifier varies only in bits 41..55:
    // the longest stable prefix ends at bit 41 (or wherever the values
    // happen to agree beyond it).
    plan_reconstructor recon;
    const mac_address mac = device_mac(3);
    const std::uint64_t base = 0x2a00100000000000ull;  // /19-ish head
    recon.observe_day({with_mac(base | (0x1234ull << 8), mac)});
    recon.observe_day({with_mac(base | (0x5e77ull << 8), mac)});
    recon.observe_day({with_mac(base | (0x0fc1ull << 8), mac)});
    const auto tracks = recon.device_tracks(2);
    ASSERT_EQ(tracks.size(), 1u);
    EXPECT_GE(tracks[0].distinct_64s, 3u);
    EXPECT_LE(tracks[0].stable_prefix.length(), 41u);
    EXPECT_TRUE(tracks[0].stable_prefix.contains(
        address::from_pair(base | (0x1234ull << 8), 0)));
}

TEST(PlanReconTest, AggregatesRankByDeviceAgreement) {
    plan_reconstructor recon;
    // Three devices pinned to the same /48 (different /64s), one
    // elsewhere.
    for (int day = 0; day < 2; ++day) {
        recon.observe_day({
            with_mac(0x20010db800010001ull, device_mac(10)),
            with_mac(0x20010db800010002ull, device_mac(11)),
            with_mac(0x20010db800010003ull, device_mac(12)),
            with_mac(0x2a00000000000001ull, device_mac(13)),
        });
    }
    const auto aggregates = recon.longest_stable_prefixes(2, 1);
    ASSERT_GE(aggregates.size(), 2u);
    // Each device saw a single /64, so stable prefixes are the /64s —
    // all with one device each; raise variation across days instead:
    // (covered by the next test; here just check determinism and counts)
    std::uint64_t devices = 0;
    for (const auto& agg : aggregates) devices += agg.devices;
    EXPECT_EQ(devices, 4u);
}

TEST(PlanReconTest, LengthHistogramDiscriminatesPractices) {
    // Against the simulated world: Japanese ISP devices (static /48,
    // one /64 per MAC) produce mostly length-64 stable prefixes; the
    // European ISP's renumbering produces markedly shorter ones.
    world_config cfg;
    cfg.scale = 0.3;
    cfg.tail_isps = 4;
    const world w(cfg);

    auto run_recon = [&](const network_model& model, int days) {
        plan_reconstructor recon;
        for (int d = 0; d < days; ++d) {
            std::vector<observation> obs;
            model.day_activity(d, obs);
            std::vector<address> addrs;
            for (const auto& o : obs) addrs.push_back(o.addr);
            recon.observe_day(addrs);
        }
        return recon;
    };

    const auto jp = run_recon(w.japan(), 40);
    const auto eu = run_recon(w.europe(), 40);

    auto mean_length = [](const plan_reconstructor& recon) {
        double total = 0, n = 0;
        const auto hist = recon.length_histogram(2);
        for (unsigned len = 0; len <= 128; ++len) {
            total += static_cast<double>(hist[len]) * len;
            n += static_cast<double>(hist[len]);
        }
        return n > 0 ? total / n : 0.0;
    };
    const double jp_mean = mean_length(jp);
    const double eu_mean = mean_length(eu);
    EXPECT_GT(jp_mean, 60.0);
    EXPECT_LT(eu_mean, 55.0);
    EXPECT_GT(jp_mean, eu_mean + 10.0);
}

}  // namespace
}  // namespace v6
