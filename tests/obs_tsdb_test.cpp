// Tests of the durable flight recorder (v6::obs::tsdb): round-trip
// persistence, the restart re-anchor contract, segment rotation and
// retention, downsampling, and — the load-bearing property — crash-safe
// recovery with the active segment truncated at EVERY byte offset of
// its tail records.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "v6class/obs/event_log.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/tsdb.h"

namespace {

using namespace v6;
namespace fs = std::filesystem;

class TsdbTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (fs::temp_directory_path() /
                ("v6tsdb_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                   .string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::unique_ptr<obs::tsdb::database> open(
        const obs::tsdb::options& opt = {}) {
        std::string error;
        auto db = obs::tsdb::database::open(dir_, opt, &error);
        EXPECT_NE(db, nullptr) << error;
        return db;
    }

    /// The one segment file when exactly one exists.
    std::string only_segment() const {
        std::string found;
        for (const auto& entry : fs::directory_iterator(dir_)) {
            EXPECT_TRUE(found.empty()) << "more than one segment";
            found = entry.path().string();
        }
        EXPECT_FALSE(found.empty());
        return found;
    }

    std::string dir_;
};

std::vector<char> read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes,
                 std::size_t n) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(n));
}

obs::event make_event(obs::event_level level, const std::string& kind,
                      const std::string& message, double t) {
    obs::event e;
    e.unix_time = t;
    e.level = level;
    e.kind = kind;
    e.message = message;
    e.fields = {{"k", obs::event_field_number(1)}};
    return e;
}

// ------------------------------------------------------------- round trip

TEST_F(TsdbTest, PointsAndEventsSurviveReopen) {
    {
        auto db = open();
        for (int d = 0; d < 10; ++d) {
            db->append("gamma", "", d, 0.5 + d);
            db->append("gamma", "p60", d, 2.0 * d);
        }
        db->append_event(make_event(obs::event_level::warn, "drift",
                                    "gamma shifted", 100.5));
        ASSERT_TRUE(db->commit());
    }
    auto db = open();
    EXPECT_EQ(db->recovered_points(), 20u);
    EXPECT_EQ(db->truncated_bytes(), 0u);

    const auto pts = db->query("gamma", "", INT64_MIN, INT64_MAX);
    ASSERT_EQ(pts.size(), 10u);
    for (int d = 0; d < 10; ++d) {
        EXPECT_EQ(pts[d].ts, d);
        EXPECT_DOUBLE_EQ(pts[d].value, 0.5 + d);
    }
    EXPECT_EQ(db->query("gamma", "p60", 3, 5).size(), 3u);
    EXPECT_TRUE(db->query("gamma", "nope", INT64_MIN, INT64_MAX).empty());
    EXPECT_TRUE(db->query("unknown", "", INT64_MIN, INT64_MAX).empty());

    const auto events = db->query_events(obs::event_level::info, 0, 1e9);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, "drift");
    EXPECT_EQ(events[0].message, "gamma shifted");
    EXPECT_EQ(events[0].level, obs::event_level::warn);
    EXPECT_DOUBLE_EQ(events[0].unix_time, 100.5);
    EXPECT_EQ(events[0].fields_json, "{\"k\":1}");

    const auto infos = db->list_series();
    ASSERT_EQ(infos.size(), 2u);
    EXPECT_EQ(infos[0].name, "gamma");
    EXPECT_EQ(infos[0].points, 10u);
}

TEST_F(TsdbTest, QueriesSeeTheUncommittedBuffer) {
    auto db = open();
    db->append("s", "", 1, 1.0);
    ASSERT_TRUE(db->commit());
    db->append("s", "", 2, 2.0);  // buffered only
    const auto pts = db->query("s", "", INT64_MIN, INT64_MAX);
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[1].ts, 2);
    EXPECT_EQ(db->last_ts("s", ""), 2);
}

// ------------------------------------------------------------- re-anchor

TEST_F(TsdbTest, ReplayOverExistingHistoryIsIdempotent) {
    const auto feed = [](obs::tsdb::database& db) {
        for (int d = 0; d < 8; ++d) db.append("s", "", d, d * 1.0);
        ASSERT_TRUE(db.commit());
    };
    {
        auto db = open();
        feed(*db);
    }
    auto db = open();
    EXPECT_EQ(db->last_ts("s", ""), 7);
    feed(*db);  // the restart replays the whole corpus
    EXPECT_EQ(db->duplicate_points(), 8u);
    db->append("s", "", 8, 8.0);  // genuinely new day still lands
    const auto pts = db->query("s", "", INT64_MIN, INT64_MAX);
    ASSERT_EQ(pts.size(), 9u);
    for (int d = 0; d < 9; ++d) EXPECT_EQ(pts[d].ts, d);
}

TEST_F(TsdbTest, SeriesIdsAreStableAcrossReopen) {
    std::uint32_t id;
    {
        auto db = open();
        id = db->series_id("a", "x");
        db->series_id("b", "");
        db->append(id, 1, 1.0);
        ASSERT_TRUE(db->commit());
    }
    auto db = open();
    EXPECT_EQ(db->series_id("a", "x"), id);
}

TEST_F(TsdbTest, CrashAfterRotateRewritesDefinitionsIntoResumedSegment) {
    {
        auto db = open();
        db->append("gamma", "", 1, 0.5);
        db->append("active", "a", 1, 10.0);
        ASSERT_TRUE(db->commit());
    }
    // The crash shape right after rotate_locked(): a fresh active
    // segment exists but its definition records were never written.
    std::ofstream(dir_ + "/seg-000002.v6t", std::ios::binary).close();
    {
        auto db = open();
        db->append("gamma", "", 2, 0.6);
        db->append("active", "a", 2, 11.0);
        ASSERT_TRUE(db->commit());
    }
    // Retention's effect, by hand: the older segment holding the
    // original definitions disappears. The resumed segment must be
    // self-contained — its commit above had to rewrite the defs, not
    // assume segment 1 still carried them.
    ASSERT_EQ(::unlink((dir_ + "/seg-000001.v6t").c_str()), 0);
    auto db = open();
    EXPECT_EQ(db->truncated_bytes(), 0u);
    EXPECT_EQ(db->recovered_points(), 2u);
    const auto gamma = db->query("gamma", "", INT64_MIN, INT64_MAX);
    ASSERT_EQ(gamma.size(), 1u);
    EXPECT_EQ(gamma[0].ts, 2);
    EXPECT_DOUBLE_EQ(gamma[0].value, 0.6);
    const auto active = db->query("active", "a", INT64_MIN, INT64_MAX);
    ASSERT_EQ(active.size(), 1u);
    EXPECT_EQ(active[0].ts, 2);
}

// ------------------------------------------------- rotation + retention

TEST_F(TsdbTest, RotationSealsSegmentsAndRetentionDropsOldest) {
    obs::tsdb::options opt;
    opt.segment_bytes = 512;  // rotate quickly
    auto db = open(opt);
    for (int d = 0; d < 400; ++d) db->append("s", "", d, d * 1.0);
    ASSERT_TRUE(db->commit());
    for (int d = 400; d < 800; ++d) db->append("s", "", d, d * 1.0);
    ASSERT_TRUE(db->commit());
    EXPECT_GE(db->segment_count(), 2u);

    // Reopen with a byte cap: the oldest segments are unlinked, yet the
    // survivors are self-contained (every segment re-writes the defs),
    // so the newest points still resolve by name.
    obs::tsdb::options tight = opt;
    tight.retain_bytes = 600;
    db.reset();
    {
        std::string error;
        auto rdb = obs::tsdb::database::open(dir_, tight, &error);
        ASSERT_NE(rdb, nullptr) << error;
        // Retention applies at rotation; force one.
        for (int d = 800; d < 1600; ++d) rdb->append("s", "", d, d * 1.0);
        ASSERT_TRUE(rdb->commit());
        EXPECT_GT(rdb->retired_segments(), 0u);
        const auto pts = rdb->query("s", "", INT64_MIN, INT64_MAX);
        ASSERT_FALSE(pts.empty());
        EXPECT_EQ(pts.back().ts, 1599);  // newest data intact
        // The dropped prefix is really gone from disk and the index.
        EXPECT_GT(pts.front().ts, 0);
    }
}

// ------------------------------------------------------------ downsample

TEST(TsdbDownsampleTest, MeanPerBucketOldestFirst) {
    const std::vector<obs::tsdb::point> pts = {
        {0, 1.0}, {1, 3.0}, {4, 10.0}, {5, 20.0}, {9, 7.0}};
    const auto ds = obs::tsdb::downsample(pts, 4);
    ASSERT_EQ(ds.size(), 3u);
    EXPECT_EQ(ds[0].ts, 0);
    EXPECT_DOUBLE_EQ(ds[0].value, 2.0);
    EXPECT_EQ(ds[1].ts, 4);
    EXPECT_DOUBLE_EQ(ds[1].value, 15.0);
    EXPECT_EQ(ds[2].ts, 8);
    EXPECT_DOUBLE_EQ(ds[2].value, 7.0);
}

TEST(TsdbDownsampleTest, StepOneOrLessIsIdentity) {
    const std::vector<obs::tsdb::point> pts = {{3, 1.0}, {4, 2.0}};
    EXPECT_EQ(obs::tsdb::downsample(pts, 1), pts);
    EXPECT_EQ(obs::tsdb::downsample(pts, 0), pts);
}

TEST(TsdbDownsampleTest, NegativeTimestampsBucketTowardMinusInfinity) {
    const std::vector<obs::tsdb::point> pts = {{-5, 2.0}, {-4, 4.0}, {0, 8.0}};
    const auto ds = obs::tsdb::downsample(pts, 4);
    ASSERT_EQ(ds.size(), 3u);
    EXPECT_EQ(ds[0].ts, -8);  // floor(-5/4)*4, not trunc
    EXPECT_EQ(ds[1].ts, -4);
    EXPECT_EQ(ds[2].ts, 0);
}

// --------------------------------------------------------- crash safety

// The property the whole design hangs on: cut the active segment at
// EVERY byte offset and recovery must (a) succeed, (b) yield exactly a
// frame-prefix of the committed data, monotone in the cut, and (c)
// leave the file clean, so a second open recovers the same state with
// nothing further to truncate.
TEST_F(TsdbTest, RecoveryIsExactAtEveryTruncationOffset) {
    constexpr int kPoints = 6;
    {
        auto db = open();
        for (int d = 0; d < kPoints; ++d) {
            db->append("s", "", d, d * 1.5);
            // One commit per point = one frame per point, so the
            // recovered count maps 1:1 to whole frames before the cut.
            ASSERT_TRUE(db->commit());
        }
        db->append_event(
            make_event(obs::event_level::info, "k", "tail event", 9.0));
        ASSERT_TRUE(db->commit());
    }
    const std::string seg = only_segment();
    const std::vector<char> orig = read_bytes(seg);
    ASSERT_GT(orig.size(), 64u);

    std::size_t prev_points = 0;
    for (std::size_t cut = 0; cut <= orig.size(); ++cut) {
        write_bytes(seg, orig, cut);
        std::string error;
        auto db = obs::tsdb::database::open(dir_, {}, &error);
        ASSERT_NE(db, nullptr) << "cut=" << cut << ": " << error;
        const auto pts = db->query("s", "", INT64_MIN, INT64_MAX);
        // (b) exact frame-prefix: values match the append order.
        for (std::size_t i = 0; i < pts.size(); ++i) {
            EXPECT_EQ(pts[i].ts, static_cast<std::int64_t>(i)) << "cut=" << cut;
            EXPECT_DOUBLE_EQ(pts[i].value, i * 1.5) << "cut=" << cut;
        }
        EXPECT_GE(pts.size(), prev_points) << "cut=" << cut;  // monotone
        prev_points = pts.size();
        // (c) the truncation is durable: the file shrank to a whole-
        // frame boundary and a second open is clean.
        db.reset();
        EXPECT_LE(fs::file_size(seg), cut) << "cut=" << cut;
        auto again = obs::tsdb::database::open(dir_, {}, &error);
        ASSERT_NE(again, nullptr) << "cut=" << cut << ": " << error;
        EXPECT_EQ(again->truncated_bytes(), 0u) << "cut=" << cut;
        EXPECT_EQ(again->query("s", "", INT64_MIN, INT64_MAX).size(),
                  pts.size())
            << "cut=" << cut;
    }
    // The uncut file recovers everything.
    EXPECT_EQ(prev_points, static_cast<std::size_t>(kPoints));
}

TEST_F(TsdbTest, BitFlipCorruptionDropsTheTailNotTheStore) {
    {
        auto db = open();
        for (int d = 0; d < 4; ++d) {
            db->append("s", "", d, d * 1.0);
            ASSERT_TRUE(db->commit());
        }
    }
    const std::string seg = only_segment();
    std::vector<char> bytes = read_bytes(seg);
    bytes[bytes.size() / 2] ^= 0x40;  // corrupt mid-file
    write_bytes(seg, bytes, bytes.size());

    std::string error;
    auto db = obs::tsdb::database::open(dir_, {}, &error);
    ASSERT_NE(db, nullptr) << error;
    EXPECT_GT(db->truncated_bytes(), 0u);
    const auto pts = db->query("s", "", INT64_MIN, INT64_MAX);
    EXPECT_LT(pts.size(), 4u);  // the corrupt frame and its tail are gone
    for (std::size_t i = 0; i < pts.size(); ++i)
        EXPECT_EQ(pts[i].ts, static_cast<std::int64_t>(i));  // prefix intact

    // And the store keeps working: new appends land after recovery.
    db->append("s", "", 100, 1.0);
    ASSERT_TRUE(db->commit());
    db.reset();
    auto again = obs::tsdb::database::open(dir_, {}, &error);
    ASSERT_NE(again, nullptr) << error;
    EXPECT_EQ(again->last_ts("s", ""), 100);
}

TEST_F(TsdbTest, RestartResumeServesOneContinuousRange) {
    // Run 1 writes days 0..4; run 2 re-anchors and writes 5..9; the
    // reopened store serves one continuous range with no gap or
    // duplicate — the /api/series acceptance shape, at library level.
    {
        auto db = open();
        for (int d = 0; d < 5; ++d) db->append("g16", "", d, 1.0 + d);
        ASSERT_TRUE(db->commit());
    }
    {
        auto db = open();
        const auto anchor = db->last_ts("g16", "");
        ASSERT_TRUE(anchor.has_value());
        EXPECT_EQ(*anchor, 4);
        for (int d = 0; d < 10; ++d)       // replays the full history...
            if (d > *anchor) db->append("g16", "", d, 1.0 + d);  // ...skips old
        ASSERT_TRUE(db->commit());
    }
    auto db = open();
    const auto pts = db->query("g16", "", INT64_MIN, INT64_MAX);
    ASSERT_EQ(pts.size(), 10u);
    for (int d = 0; d < 10; ++d) {
        EXPECT_EQ(pts[d].ts, d);
        EXPECT_DOUBLE_EQ(pts[d].value, 1.0 + d);
    }
    EXPECT_EQ(db->duplicate_points(), 0u);
}

// ----------------------------------------------------------- event query

TEST_F(TsdbTest, EventQueryFiltersLevelRangeAndCapsToNewest) {
    auto db = open();
    for (int i = 0; i < 10; ++i)
        db->append_event(make_event(
            i % 2 ? obs::event_level::warn : obs::event_level::info, "k",
            "e" + std::to_string(i), 10.0 + i));
    ASSERT_TRUE(db->commit());

    EXPECT_EQ(db->query_events(obs::event_level::info, 0, 1e9).size(), 10u);
    EXPECT_EQ(db->query_events(obs::event_level::warn, 0, 1e9).size(), 5u);
    EXPECT_TRUE(db->query_events(obs::event_level::error, 0, 1e9).empty());
    EXPECT_EQ(db->query_events(obs::event_level::info, 12.0, 14.0).size(), 3u);

    // Cap keeps the NEWEST matches, oldest first.
    const auto capped = db->query_events(obs::event_level::info, 0, 1e9, 3);
    ASSERT_EQ(capped.size(), 3u);
    EXPECT_EQ(capped[0].message, "e7");
    EXPECT_EQ(capped[2].message, "e9");
}

TEST_F(TsdbTest, MetricsCountCommitsAndDuplicates) {
    obs::registry reg;
    obs::tsdb::options opt;
    opt.metrics = &reg;
    auto db = open(opt);
    db->append("s", "", 1, 1.0);
    ASSERT_TRUE(db->commit());
    db->append("s", "", 1, 2.0);  // dropped by the re-anchor check
    const std::string text = reg.prometheus_text();
    EXPECT_NE(text.find("v6_tsdb_commits_total 1"), std::string::npos) << text;
    EXPECT_NE(text.find("v6_tsdb_duplicate_points_total 1"), std::string::npos)
        << text;
}

}  // namespace
