// Tests for density classes (Table 3 accounting), covered-address
// selection and scan-target expansion.
#include <gtest/gtest.h>

#include "v6class/netgen/rng.h"
#include "v6class/spatial/density.h"

namespace v6 {
namespace {

using namespace v6::literals;

radix_tree make_tree(const std::vector<address>& addrs) {
    radix_tree t;
    for (const address& a : addrs) t.add(a);
    return t;
}

TEST(DensityRowTest, Accounting) {
    // Two dense /112s with 3 and 2 addresses, one stray.
    const std::vector<address> addrs{
        "2001:db8::1"_v6,   "2001:db8::2"_v6,    "2001:db8::3"_v6,
        "2001:db8:1::1"_v6, "2001:db8:1::2"_v6,  "2600::1"_v6,
    };
    const radix_tree t = make_tree(addrs);
    const density_row row = compute_density_class(t, 2, 112);
    EXPECT_EQ(row.n, 2u);
    EXPECT_EQ(row.p, 112u);
    EXPECT_EQ(row.dense_prefix_count, 2u);
    EXPECT_EQ(row.covered_addresses, 5u);
    EXPECT_DOUBLE_EQ(static_cast<double>(row.possible_addresses), 2.0 * 65536.0);
    EXPECT_NEAR(static_cast<double>(row.address_density), 5.0 / 131072.0, 1e-12);
}

TEST(DensityRowTest, TableSweepIsConsistent) {
    rng r{21};
    std::vector<address> addrs;
    for (int i = 0; i < 3000; ++i)
        addrs.push_back(address::from_pair(0x20010db800000000ull | r.uniform(4),
                                           r.uniform(1 << 14)));
    const radix_tree t = make_tree(addrs);
    const auto rows = compute_density_table(
        t, {{2, 124}, {2, 120}, {2, 116}, {2, 112}, {4, 112}, {64, 112}});
    // Fixed n: longer prefixes cannot have more covered addresses than
    // shorter ones at the same n... but can have more dense prefixes.
    // Verify per-row internal consistency instead of cross-row guesses.
    for (const auto& row : rows) {
        EXPECT_GE(row.covered_addresses, row.dense_prefix_count * row.n);
        if (row.dense_prefix_count > 0) {
            EXPECT_GT(static_cast<double>(row.address_density), 0.0);
            EXPECT_LE(static_cast<double>(row.address_density), 1.0);
        }
    }
    // At the same p, raising n can only shrink the dense set.
    const auto at = [&](std::uint64_t n, unsigned p) {
        for (const auto& row : rows)
            if (row.n == n && row.p == p) return row;
        ADD_FAILURE();
        return density_row{};
    };
    EXPECT_GE(at(2, 112).dense_prefix_count, at(4, 112).dense_prefix_count);
    EXPECT_GE(at(4, 112).dense_prefix_count, at(64, 112).dense_prefix_count);
}

TEST(AddressesCoveredTest, SelectsOnlyContained) {
    const std::vector<dense_prefix> dense{
        {"2001:db8::/112"_pfx, 3},
        {"2001:db8:5::/112"_pfx, 2},
    };
    const auto covered = addresses_covered(
        dense, {"2001:db8::7"_v6, "2001:db8:5::9"_v6, "2001:db8:6::1"_v6,
                "2600::1"_v6, "2001:db8::7"_v6});
    ASSERT_EQ(covered.size(), 2u);
    EXPECT_EQ(covered[0], "2001:db8::7"_v6);
    EXPECT_EQ(covered[1], "2001:db8:5::9"_v6);
}

TEST(ExpandScanTargetsTest, EnumeratesSmallPrefixes) {
    const std::vector<dense_prefix> dense{{"2001:db8::/124"_pfx, 2}};
    const auto targets = expand_scan_targets(dense, 1000);
    ASSERT_EQ(targets.size(), 16u);
    EXPECT_EQ(targets.front(), "2001:db8::"_v6);
    EXPECT_EQ(targets.back(), "2001:db8::f"_v6);
}

TEST(ExpandScanTargetsTest, RespectsLimit) {
    const std::vector<dense_prefix> dense{{"2001:db8::/112"_pfx, 2}};
    const auto targets = expand_scan_targets(dense, 100);
    EXPECT_EQ(targets.size(), 100u);
}

TEST(ExpandScanTargetsTest, SkipsUnscannablyWidePrefixes) {
    const std::vector<dense_prefix> dense{{"2001:db8::/64"_pfx, 1000}};
    EXPECT_TRUE(expand_scan_targets(dense, 100).empty());
}

}  // namespace
}  // namespace v6
