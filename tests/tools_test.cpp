// End-to-end tests of the command-line tools: invoke the real binaries
// with real files and check exit codes and output shape. Tool paths come
// from the V6CLASS_TOOLS_DIR compile definition.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "json_lite.h"

namespace {

namespace fs = std::filesystem;

std::string tool(const std::string& name) {
    return std::string(V6CLASS_TOOLS_DIR) + "/" + name;
}

struct run_result {
    int exit_code = -1;
    std::string output;
};

// Runs a shell command capturing stdout (stderr untouched).
run_result run(const std::string& command) {
    run_result result;
    const fs::path out_file =
        fs::temp_directory_path() /
        ("v6class_tools_out_" + std::to_string(::getpid()) + ".txt");
    const int status =
        std::system((command + " > " + out_file.string()).c_str());
    result.exit_code = status == -1 ? -1 : WEXITSTATUS(status);
    std::ifstream in(out_file);
    std::ostringstream buf;
    buf << in.rdbuf();
    result.output = buf.str();
    fs::remove(out_file);
    return result;
}

class ToolsTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        corpus_ = fs::temp_directory_path() /
                  ("v6class_tools_corpus_" + std::to_string(::getpid()));
        fs::remove_all(corpus_);
        const run_result synth = run(
            tool("v6synth") + " --out=" + corpus_.string() +
            " --scale=0.03 --first=362 --last=368 --routes --routers --zone"
            " 2>/dev/null");
        ASSERT_EQ(synth.exit_code, 0);
    }
    static void TearDownTestSuite() { fs::remove_all(corpus_); }
    static fs::path corpus_;
};

fs::path ToolsTest::corpus_;

TEST_F(ToolsTest, SynthWroteTheCorpus) {
    EXPECT_TRUE(fs::exists(corpus_ / "day_365.log"));
    EXPECT_TRUE(fs::exists(corpus_ / "routes.txt"));
    EXPECT_TRUE(fs::exists(corpus_ / "routers.txt"));
    EXPECT_TRUE(fs::exists(corpus_ / "zone.ptr"));
}

TEST_F(ToolsTest, ArpaNamesAndZoneResolution) {
    const fs::path input = corpus_ / "arpa_input.txt";
    {
        std::ofstream out(input);
        out << "2001:db8::1\n";
    }
    const run_result names = run(tool("v6arpa") + " " + input.string());
    EXPECT_EQ(names.exit_code, 0);
    EXPECT_NE(names.output.find("8.b.d.0.1.0.0.2.ip6.arpa"), std::string::npos);

    // Resolve the routers against the synthesized zone: every router
    // interface must have a name.
    const run_result scan =
        run(tool("v6arpa") + " --zone=" + (corpus_ / "zone.ptr").string() +
            " --scan " + (corpus_ / "routers.txt").string() + " 2>/dev/null");
    EXPECT_EQ(scan.exit_code, 0);
    EXPECT_NE(scan.output.find("example.net"), std::string::npos);
}

TEST_F(ToolsTest, ClassifyEmitsTsv) {
    const fs::path input = corpus_ / "classify_input.txt";
    {
        std::ofstream out(input);
        out << "2001:db8:0:1cdf:21e:c2ff:fec0:11db\n2002:c000:221::1\n";
    }
    const run_result r = run(tool("v6classify") + " " + input.string());
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("eui64"), std::string::npos);
    EXPECT_NE(r.output.find("mac=00:1e:c2:c0:11:db"), std::string::npos);
    EXPECT_NE(r.output.find("6to4"), std::string::npos);
    EXPECT_NE(r.output.find("v4=192.0.2.33"), std::string::npos);
}

TEST_F(ToolsTest, ClassifySummaryCounts) {
    const run_result r = run(tool("v6classify") + " --summary " +
                             (corpus_ / "day_365.log").string());
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("transition:"), std::string::npos);
    EXPECT_NE(r.output.find("native"), std::string::npos);
}

TEST_F(ToolsTest, MraRendersAsciiAndCsv) {
    const std::string input = (corpus_ / "day_365.log").string();
    const run_result ascii = run(tool("v6mra") + " --title=test " + input);
    EXPECT_EQ(ascii.exit_code, 0);
    EXPECT_NE(ascii.output.find("16-bit segments"), std::string::npos);
    const run_result csv = run(tool("v6mra") + " --csv " + input);
    EXPECT_EQ(csv.exit_code, 0);
    EXPECT_EQ(csv.output.rfind("p,k,ratio\n", 0), 0u);
}

TEST_F(ToolsTest, MraCompareMeasuresShapeDistance) {
    const std::string a = (corpus_ / "day_365.log").string();
    const std::string b = (corpus_ / "day_366.log").string();
    const std::string routers = (corpus_ / "routers.txt").string();
    // Same population two days apart: tiny distance. Clients vs routers:
    // very different plans.
    const run_result close_run = run(tool("v6mra") + " --compare=" + b + " " + a);
    ASSERT_EQ(close_run.exit_code, 0);
    const double same = std::atof(close_run.output.c_str());
    const run_result far = run(tool("v6mra") + " --compare=" + routers + " " + a);
    ASSERT_EQ(far.exit_code, 0);
    const double different = std::atof(far.output.c_str());
    EXPECT_LT(same, 0.5);
    EXPECT_GT(different, same * 2);
}

TEST_F(ToolsTest, MraWritesGnuplotArtifacts) {
    const fs::path plot_dir = corpus_ / "plots";
    const run_result r =
        run(tool("v6mra") + " --gnuplot=" + plot_dir.string() + " --stem=day " +
            (corpus_ / "day_365.log").string() + " 2>/dev/null");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_TRUE(fs::exists(plot_dir / "day.gp"));
    EXPECT_TRUE(fs::exists(plot_dir / "day.dat"));
}

TEST_F(ToolsTest, DenseTableAndTargets) {
    const std::string routers = (corpus_ / "routers.txt").string();
    const run_result table =
        run(tool("v6dense") + " --class=2@112 --class=2@120 " + routers);
    EXPECT_EQ(table.exit_code, 0);
    EXPECT_NE(table.output.find("2 @ /112"), std::string::npos);
    EXPECT_NE(table.output.find("2 @ /120"), std::string::npos);
    const run_result targets =
        run(tool("v6dense") + " --class=2@120 --targets=64 " + routers);
    EXPECT_EQ(targets.exit_code, 0);
    std::size_t lines = 0;
    for (char c : targets.output)
        if (c == '\n') ++lines;
    EXPECT_EQ(lines, 64u);
}

TEST_F(ToolsTest, DenseRejectsBadClass) {
    const run_result r = run(tool("v6dense") + " --class=banana /dev/null 2>/dev/null");
    EXPECT_NE(r.exit_code, 0);
}

TEST_F(ToolsTest, StableClassifiesReferenceDay) {
    const run_result r = run(tool("v6stable") + " --corpus=" + corpus_.string() +
                             " --ref=365 --n=3");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("3d-stable (-7d,+7d)"), std::string::npos);
    const run_result p64 = run(tool("v6stable") + " --corpus=" + corpus_.string() +
                               " --ref=365 --prefix-length=64");
    EXPECT_EQ(p64.exit_code, 0);
    EXPECT_NE(p64.output.find("/64 prefixes"), std::string::npos);
}

TEST_F(ToolsTest, ProfileInfersPractices) {
    const run_result r = run(tool("v6profile") + " --corpus=" + corpus_.string() +
                             " --routes=" + (corpus_ / "routes.txt").string() +
                             " --ref=365");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("dynamic-64-pool"), std::string::npos);
    EXPECT_NE(r.output.find("shared-dense"), std::string::npos);
    EXPECT_NE(r.output.find("AS20001"), std::string::npos);
}

TEST_F(ToolsTest, StreamConsumesSynthFeed) {
    // The README quickstart: pipe a synthetic feed straight into the
    // streaming classifier and read the JSON day roll-ups + final report.
    const run_result r = run(
        tool("v6synth") + " --stream --scale=0.02 --first=362 --last=366"
        " 2>/dev/null | " + tool("v6stream") + " --shards=3 --n=3 2>/dev/null");
    ASSERT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("{\"type\":\"day\",\"day\":362,"), std::string::npos);
    EXPECT_NE(r.output.find("{\"type\":\"day\",\"day\":366,"), std::string::npos);
    EXPECT_NE(r.output.find("\"type\":\"final\""), std::string::npos);
    EXPECT_NE(r.output.find("\"spectrum\":["), std::string::npos);
    EXPECT_NE(r.output.find("\"late_dropped\":0"), std::string::npos);
}

TEST_F(ToolsTest, StreamReplaysACorpusDirectory) {
    const run_result r =
        run(tool("v6stream") + " --replay=" + corpus_.string() +
            " --shards=2 2>/dev/null");
    ASSERT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("{\"type\":\"day\",\"day\":362,"), std::string::npos);
    EXPECT_NE(r.output.find("\"type\":\"final\""), std::string::npos);
}

TEST_F(ToolsTest, StreamRejectsBadClass) {
    const run_result r =
        run("true | " + tool("v6stream") + " --class=nope 2>/dev/null");
    EXPECT_NE(r.exit_code, 0);
}

TEST_F(ToolsTest, StreamRejectsUnknownFlag) {
    const run_result r =
        run("true | " + tool("v6stream") + " --no-such-flag 2>/dev/null");
    EXPECT_NE(r.exit_code, 0);
}

// ------------------------------------------------------------ wire

TEST_F(ToolsTest, WireDumpRoundTripsTheStreamFeed) {
    // The binary capture of a world must decode back to byte-for-byte
    // the text feed v6synth --stream emits for the same world.
    const fs::path capture = corpus_ / "feed.v6w";
    const run_result synth = run(
        tool("v6synth") + " --wire=" + capture.string() +
        " --scale=0.02 --first=362 --last=364 2>/dev/null");
    ASSERT_EQ(synth.exit_code, 0);

    const run_result text = run(
        tool("v6synth") + " --stream --scale=0.02 --first=362 --last=364"
        " 2>/dev/null");
    ASSERT_EQ(text.exit_code, 0);
    const run_result dump =
        run(tool("v6wire") + " dump " + capture.string() + " 2>/dev/null");
    ASSERT_EQ(dump.exit_code, 0);
    EXPECT_EQ(dump.output, text.output);

    const run_result info = run(tool("v6wire") + " info " + capture.string());
    EXPECT_EQ(info.exit_code, 0);
    EXPECT_NE(info.output.find("rejected    0"), std::string::npos);
}

TEST_F(ToolsTest, StreamReplaysWireCaptureIdenticalToCorpusDir) {
    const fs::path capture = corpus_ / "replay.v6w";
    const run_result synth = run(
        tool("v6synth") + " --wire=" + capture.string() +
        " --scale=0.03 --first=362 --last=368 2>/dev/null");
    ASSERT_EQ(synth.exit_code, 0);

    // The same world synthesized into corpus_ by SetUpTestSuite: the two
    // replay paths (text day logs vs binary wire capture) must produce
    // identical sealed-day roll-ups.
    const run_result from_dir =
        run(tool("v6stream") + " --replay=" + corpus_.string() +
            " --shards=2 2>/dev/null | grep '\"type\":\"day\"'");
    const run_result from_wire =
        run(tool("v6stream") + " --replay=" + capture.string() +
            " --shards=2 2>/dev/null | grep '\"type\":\"day\"'");
    ASSERT_EQ(from_dir.exit_code, 0);
    ASSERT_EQ(from_wire.exit_code, 0);
    ASSERT_FALSE(from_dir.output.empty());
    EXPECT_EQ(from_wire.output, from_dir.output);
}

TEST_F(ToolsTest, StreamForcedScalarReplayIsByteIdentical) {
    // The SIMD dispatch contract end to end: V6CLASS_FORCE_SCALAR=1 swaps
    // every batch kernel for its scalar reference, and the sealed-day
    // reports over the same wire capture must stay byte-for-byte
    // identical — the dispatch decision is invisible to every consumer.
    const fs::path capture = corpus_ / "scalar.v6w";
    const run_result synth = run(
        tool("v6synth") + " --wire=" + capture.string() +
        " --scale=0.03 --first=362 --last=368 2>/dev/null");
    ASSERT_EQ(synth.exit_code, 0);

    const std::string replay = tool("v6stream") + " --replay=" +
                               capture.string() + " --shards=2 2>/dev/null";
    const run_result dispatched = run(replay);
    const run_result scalar = run("V6CLASS_FORCE_SCALAR=1 " + replay);
    ASSERT_EQ(dispatched.exit_code, 0);
    ASSERT_EQ(scalar.exit_code, 0);
    ASSERT_NE(dispatched.output.find("{\"type\":\"day\",\"day\":362,"),
              std::string::npos);
    ASSERT_NE(dispatched.output.find("\"type\":\"final\""), std::string::npos);
    EXPECT_EQ(scalar.output, dispatched.output);
}

TEST_F(ToolsTest, MkdbBuildsDbAndStreamEmitsAsnBreakdowns) {
    const fs::path db = corpus_ / "asn.db";
    const run_result build = run(
        tool("v6mkdb") + " --in=" + (corpus_ / "routes.txt").string() +
        " --out=" + db.string() + " 2>/dev/null");
    ASSERT_EQ(build.exit_code, 0);
    ASSERT_TRUE(fs::exists(db));

    // The db dumps back as "prefix asn country" source lines.
    const run_result dump = run(tool("v6mkdb") + " --dump=" + db.string());
    ASSERT_EQ(dump.exit_code, 0);
    EXPECT_NE(dump.output.find("20001"), std::string::npos);

    // Enriched replay: every sealed day gains a day_asn breakdown whose
    // rows carry the synthetic world's ASNs.
    const run_result r =
        run(tool("v6stream") + " --replay=" + corpus_.string() +
            " --asn-db=" + db.string() + " --shards=2 2>/dev/null");
    ASSERT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("{\"type\":\"day_asn\",\"day\":362,"),
              std::string::npos);
    EXPECT_NE(r.output.find("\"asn\":20001"), std::string::npos);
    EXPECT_NE(r.output.find("\"records\":"), std::string::npos);
}

TEST_F(ToolsTest, MkdbRejectsGarbageDb) {
    const fs::path bad = corpus_ / "bad.db";
    {
        std::ofstream out(bad);
        out << "not a database\n";
    }
    const run_result dump =
        run(tool("v6mkdb") + " --dump=" + bad.string() + " 2>/dev/null");
    EXPECT_NE(dump.exit_code, 0);
    const run_result r =
        run("true | " + tool("v6stream") + " --asn-db=" + bad.string() +
            " 2>/dev/null");
    EXPECT_NE(r.exit_code, 0) << "a corrupt db at startup is a hard error";
}

TEST_F(ToolsTest, StreamReplaySigintSealsAndReports) {
    // SIGINT mid-replay must still produce the ordered shutdown: the
    // open day seals, day reports drain, and the final object appears —
    // with exit code 0. --rate keeps the replay running long enough for
    // the signal to land mid-feed.
    const run_result r = run(
        "{ " + tool("v6stream") + " --replay=" + corpus_.string() +
        " --rate=2000 --shards=2 2>/dev/null & pid=$!; sleep 1;"
        " kill -INT $pid; wait $pid; }");
    ASSERT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("\"type\":\"final\""), std::string::npos);
    EXPECT_NE(r.output.find("\"spectrum\":["), std::string::npos);
}

TEST_F(ToolsTest, ToolsPrintUsageOnHelp) {
    for (const char* name : {"v6classify", "v6mra", "v6dense", "v6stable",
                             "v6synth", "v6profile", "v6arpa", "v6stream",
                             "v6wire", "v6mkdb"}) {
        const run_result r = run(tool(name) + " --help");
        EXPECT_EQ(r.exit_code, 0) << name;
        EXPECT_NE(r.output.find("usage:"), std::string::npos) << name;
    }
}

TEST_F(ToolsTest, MissingInputFails) {
    const run_result r =
        run(tool("v6classify") + " /nonexistent/file.txt 2>/dev/null");
    EXPECT_NE(r.exit_code, 0);
}

// ------------------------------------------------------------ metrics

std::string slurp(const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST_F(ToolsTest, MetricsOutWritesValidJson) {
    const fs::path out = fs::temp_directory_path() / "v6class_tools_m.json";
    fs::remove(out);
    const run_result r = run(
        tool("v6classify") + " --summary --metrics-out=" + out.string() + " " +
        (corpus_ / "routers.txt").string() + " 2>/dev/null");
    ASSERT_EQ(r.exit_code, 0);
    const std::string json = slurp(out);
    ASSERT_FALSE(json.empty()) << "no metrics dump at " << out;
    EXPECT_TRUE(v6::testing::json_checker::valid(json)) << json;
    // The shared read-input phase timer must have fired exactly once.
    EXPECT_NE(json.find("\"v6_tools_read_input_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    fs::remove(out);
}

TEST_F(ToolsTest, StreamMetricsOutPrometheusAgreesWithFinalReport) {
    const fs::path out = fs::temp_directory_path() / "v6class_tools_m.prom";
    fs::remove(out);
    const run_result r = run(
        tool("v6synth") + " --stream --scale=0.02 --first=362 --last=364"
        " 2>/dev/null | " + tool("v6stream") + " --shards=2 --metrics-out=" +
        out.string() + " 2>/dev/null");
    ASSERT_EQ(r.exit_code, 0);
    // Pull "records" out of the final JSON line.
    const std::size_t fin = r.output.find("\"type\":\"final\"");
    ASSERT_NE(fin, std::string::npos);
    const std::size_t rec = r.output.find("\"records\":", fin);
    ASSERT_NE(rec, std::string::npos);
    const long long records = std::atoll(r.output.c_str() + rec + 10);
    ASSERT_GT(records, 0);

    const std::string prom = slurp(out);
    EXPECT_NE(prom.find("# TYPE v6_stream_records_total counter"),
              std::string::npos);
    EXPECT_NE(prom.find("v6_stream_records_total " + std::to_string(records)),
              std::string::npos);
    EXPECT_NE(prom.find("v6_stream_queue_depth{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("v6_stream_seal_latency_seconds_bucket"),
              std::string::npos);
    fs::remove(out);
}

TEST_F(ToolsTest, StreamEventsOutCapturesDriftOnStepFeed) {
    // A feed with a mid-run addressing change: ten steady days of 30
    // active addresses, then 300 — the daemon must raise drift events
    // and --events-out must capture them as valid JSON lines.
    const fs::path feed = fs::temp_directory_path() / "v6class_tools_feed.txt";
    const fs::path out = fs::temp_directory_path() / "v6class_tools_ev.jsonl";
    fs::remove(out);
    {
        std::ofstream f(feed);
        for (int day = 1; day <= 14; ++day) {
            const int actives = day <= 10 ? 30 : 300;
            for (int i = 0; i < actives; ++i)
                f << day << " 2001:db8:" << std::hex << (i >> 8) << "::"
                  << (i & 0xff) << std::dec << "\n";
        }
    }
    const run_result r = run(
        tool("v6stream") + " --shards=2 --n=1 --back=1 --fwd=0 --events-out=" +
        out.string() + " " + feed.string() + " 2>/dev/null");
    ASSERT_EQ(r.exit_code, 0);
    // The day roll-ups now carry the derived series.
    EXPECT_NE(r.output.find("\"gamma1\":"), std::string::npos);
    EXPECT_NE(r.output.find("\"stable_fraction\":"), std::string::npos);

    const std::string lines = slurp(out);
    ASSERT_FALSE(lines.empty()) << "no drift events were dumped";
    EXPECT_NE(lines.find("\"kind\":\"drift\""), std::string::npos);
    std::istringstream in(lines);
    std::string line;
    while (std::getline(in, line))
        EXPECT_TRUE(v6::testing::json_checker::valid(line)) << line;
    fs::remove(feed);
    fs::remove(out);
}

TEST_F(ToolsTest, TraceOutWritesChromeTraceJson) {
    const fs::path out = fs::temp_directory_path() / "v6class_tools_trace.json";
    fs::remove(out);
    const run_result r = run(
        tool("v6mra") + " --trace-out=" + out.string() + " " +
        (corpus_ / "routers.txt").string() + " 2>/dev/null");
    ASSERT_EQ(r.exit_code, 0);
    const std::string json = slurp(out);
    ASSERT_FALSE(json.empty());
    EXPECT_TRUE(v6::testing::json_checker::valid(json)) << json;
    EXPECT_NE(json.find("\"read_input\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    fs::remove(out);
}

}  // namespace
