// Tests for the v6::obs metrics registry: handle semantics, exact
// concurrent counting, half-open histogram buckets, and both export
// formats (Prometheus text round-tripped through a line parser, JSON
// through the syntax checker).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "json_lite.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/timer.h"

namespace {

using namespace v6;

TEST(ObsCounterTest, StartsAtZeroAndIncrements) {
    obs::registry reg;
    const obs::counter c = reg.get_counter("t_total");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounterTest, ReRegistrationReturnsTheSameSeries) {
    obs::registry reg;
    const obs::counter a = reg.get_counter("t_total");
    const obs::counter b = reg.get_counter("t_total");
    a.inc(3);
    b.inc(4);
    EXPECT_EQ(a.value(), 7u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsCounterTest, LabelVariantsAreDistinctSeries) {
    obs::registry reg;
    const obs::counter a = reg.get_counter("t_total", {{"shard", "0"}});
    const obs::counter b = reg.get_counter("t_total", {{"shard", "1"}});
    a.inc();
    EXPECT_EQ(a.value(), 1u);
    EXPECT_EQ(b.value(), 0u);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsCounterTest, ConcurrentIncrementsSumExactly) {
    obs::registry reg;
    const obs::counter c = reg.get_counter("t_total");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 100000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
        });
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGaugeTest, SetAddAndHighWaterRatchet) {
    obs::registry reg;
    const obs::gauge g = reg.get_gauge("t_depth");
    g.set(5);
    EXPECT_EQ(g.value(), 5);
    g.add(-2);
    EXPECT_EQ(g.value(), 3);
    const obs::gauge hw = reg.get_gauge("t_high_water");
    hw.max_of(7);
    hw.max_of(3);  // lower value must not regress the mark
    EXPECT_EQ(hw.value(), 7);
    hw.max_of(11);
    EXPECT_EQ(hw.value(), 11);
}

TEST(ObsHistogramTest, BucketsAreHalfOpen) {
    obs::registry reg;
    const obs::histogram h =
        reg.get_histogram("t_seconds", {1.0, 2.0, 4.0});
    // Cell i covers [bounds[i-1], bounds[i]); an observation equal to a
    // bound belongs to the cell ABOVE it.
    h.observe(0.5);   // [-inf, 1)
    h.observe(1.0);   // [1, 2)
    h.observe(1.999); // [1, 2)
    h.observe(2.0);   // [2, 4)
    h.observe(4.0);   // [4, +inf) — the overflow cell
    h.observe(100.0);
    EXPECT_EQ(h.bucket_count(0), 1u);
    EXPECT_EQ(h.bucket_count(1), 2u);
    EXPECT_EQ(h.bucket_count(2), 1u);
    EXPECT_EQ(h.bucket_count(3), 2u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.999 + 2.0 + 4.0 + 100.0);
}

TEST(ObsHistogramTest, ConcurrentObservationsKeepCountAndSumConsistent) {
    obs::registry reg;
    const obs::histogram h = reg.get_histogram("t_seconds", {0.5});
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i) h.observe(1.0);
        });
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
    EXPECT_EQ(h.bucket_count(1), h.count());  // all above the 0.5 bound
}

TEST(ObsHandleTest, NullHandlesAreSafeNoOps) {
    const obs::counter c;
    const obs::gauge g;
    const obs::histogram h;
    EXPECT_FALSE(static_cast<bool>(c));
    c.inc();
    g.set(5);
    g.max_of(9);
    h.observe(1.0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(ObsTimerTest, PhaseTimerObservesOnceIntoTheHistogram) {
    obs::registry reg;
    const obs::histogram h = reg.get_histogram("t_seconds");
    {
        obs::phase_timer timer(h);
        const double s = timer.stop();
        EXPECT_GE(s, 0.0);
        EXPECT_EQ(timer.stop(), 0.0);  // second stop is a no-op
    }  // destructor must not observe again
    EXPECT_EQ(h.count(), 1u);
}

TEST(ObsTimerTest, NullHistogramTimerIsInert) {
    obs::phase_timer timer{obs::histogram{}};
    EXPECT_EQ(timer.stop(), 0.0);
}

// ---------------------------------------------------------------------
// Prometheus text round-trip: parse every line back and cross-check
// against the handles.

struct prom_sample {
    std::string name;
    std::string labels;  // raw text between {} (possibly empty)
    double value = 0.0;
};

/// Parses exposition text into samples; fails the test on any line that
/// is neither a comment nor "name[{labels}] value".
std::vector<prom_sample> parse_prometheus(const std::string& text) {
    std::vector<prom_sample> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0)
            continue;
        EXPECT_NE(line[0], '#') << "unknown comment: " << line;
        prom_sample s;
        std::size_t i = line.find_first_of("{ ");
        if (i == std::string::npos) {
            ADD_FAILURE() << "unparsable line: " << line;
            continue;
        }
        s.name = line.substr(0, i);
        if (line[i] == '{') {
            const std::size_t close = line.find('}', i);
            if (close == std::string::npos) {
                ADD_FAILURE() << "unclosed labels: " << line;
                continue;
            }
            s.labels = line.substr(i + 1, close - i - 1);
            i = close + 1;
        }
        if (i >= line.size() || line[i] != ' ') {
            ADD_FAILURE() << "missing value: " << line;
            continue;
        }
        std::size_t parsed = 0;
        s.value = std::stod(line.substr(i + 1), &parsed);
        EXPECT_EQ(i + 1 + parsed, line.size()) << "trailing junk: " << line;
        out.push_back(std::move(s));
    }
    return out;
}

TEST(ObsExportTest, PrometheusTextRoundTrips) {
    obs::registry reg;
    reg.get_counter("t_requests_total", {}, "Requests.").inc(7);
    reg.get_gauge("t_depth", {{"shard", "0"}}).set(-3);
    const obs::histogram h = reg.get_histogram("t_lat_seconds", {1.0, 2.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(9.0);

    const std::string text = reg.prometheus_text();
    const std::vector<prom_sample> samples = parse_prometheus(text);

    std::map<std::string, double> by_key;
    for (const prom_sample& s : samples)
        by_key[s.name + "{" + s.labels + "}"] = s.value;

    EXPECT_EQ(by_key.at("t_requests_total{}"), 7.0);
    EXPECT_EQ(by_key.at("t_depth{shard=\"0\"}"), -3.0);
    // Cumulative le buckets; the boundary observation 1.5 is < 2.
    EXPECT_EQ(by_key.at("t_lat_seconds_bucket{le=\"1\"}"), 1.0);
    EXPECT_EQ(by_key.at("t_lat_seconds_bucket{le=\"2\"}"), 2.0);
    EXPECT_EQ(by_key.at("t_lat_seconds_bucket{le=\"+Inf\"}"), 3.0);
    EXPECT_EQ(by_key.at("t_lat_seconds_sum{}"), 11.0);
    EXPECT_EQ(by_key.at("t_lat_seconds_count{}"), 3.0);

    // TYPE lines precede their series, once per metric name.
    EXPECT_NE(text.find("# TYPE t_requests_total counter"), std::string::npos);
    EXPECT_NE(text.find("# TYPE t_depth gauge"), std::string::npos);
    EXPECT_NE(text.find("# TYPE t_lat_seconds histogram"), std::string::npos);
    EXPECT_NE(text.find("# HELP t_requests_total Requests."),
              std::string::npos);
}

TEST(ObsExportTest, HistogramBucketsAreCumulativeAndNonDecreasing) {
    obs::registry reg;
    const obs::histogram h =
        reg.get_histogram("t_seconds", {0.001, 0.01, 0.1, 1.0});
    for (int i = 0; i < 100; ++i) h.observe(0.0001 * i * i);
    double last = 0.0;
    for (const prom_sample& s : parse_prometheus(reg.prometheus_text())) {
        if (s.name != "t_seconds_bucket") continue;
        EXPECT_GE(s.value, last) << "bucket regressed at le " << s.labels;
        last = s.value;
    }
    EXPECT_EQ(last, 100.0);  // +Inf bucket holds everything
}

TEST(ObsExportTest, LabelValuesAreEscaped) {
    obs::registry reg;
    reg.get_counter("t_total", {{"path", "a\"b\\c\nd"}}).inc();
    const std::string text = reg.prometheus_text();
    EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
    EXPECT_TRUE(v6::testing::json_checker::valid(reg.json_text()));
}

TEST(ObsExportTest, JsonDumpIsWellFormedAndComplete) {
    obs::registry reg;
    reg.get_counter("t_requests_total").inc(3);
    reg.get_gauge("t_depth", {{"shard", "1"}}).set(9);
    reg.get_histogram("t_lat_seconds", {1.0}).observe(0.5);
    const std::string json = reg.json_text();
    EXPECT_TRUE(v6::testing::json_checker::valid(json)) << json;
    EXPECT_NE(json.find("\"t_requests_total\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":3"), std::string::npos);
    EXPECT_NE(json.find("\"shard\":\"1\""), std::string::npos);
    EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
}

TEST(ObsExportTest, WriteFilePicksFormatBySuffix) {
    obs::registry reg;
    reg.get_counter("t_total").inc(5);
    namespace fs = std::filesystem;
    const fs::path prom = fs::temp_directory_path() / "v6class_obs_test.prom";
    const fs::path json = fs::temp_directory_path() / "v6class_obs_test.json";
    ASSERT_TRUE(reg.write_file(prom.string()));
    ASSERT_TRUE(reg.write_file(json.string()));
    std::stringstream pb, jb;
    pb << std::ifstream(prom).rdbuf();
    jb << std::ifstream(json).rdbuf();
    EXPECT_NE(pb.str().find("# TYPE t_total counter"), std::string::npos);
    EXPECT_TRUE(v6::testing::json_checker::valid(jb.str()));
    EXPECT_FALSE(reg.write_file("/nonexistent-dir/x.json"));
    fs::remove(prom);
    fs::remove(json);
}

TEST(ObsTraceTest, ScopesAreRecordedAndFlushedAsJson) {
    namespace fs = std::filesystem;
    const fs::path path = fs::temp_directory_path() / "v6class_obs_trace.json";
    obs::trace_log::reset();
    EXPECT_FALSE(obs::trace_log::enabled());
    EXPECT_FALSE(obs::trace_log::flush());  // disabled: nothing to write
    obs::trace_log::enable(path.string());
    EXPECT_TRUE(obs::trace_log::enabled());
    { const obs::trace_scope span("unit_phase"); }
    ASSERT_TRUE(obs::trace_log::flush());
    std::stringstream buf;
    buf << std::ifstream(path).rdbuf();
    EXPECT_TRUE(v6::testing::json_checker::valid(buf.str())) << buf.str();
    EXPECT_NE(buf.str().find("\"unit_phase\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"ph\":\"X\""), std::string::npos);
    obs::trace_log::reset();
    fs::remove(path);
}

TEST(ObsRegistryTest, GlobalIsASingleton) {
    obs::registry& a = obs::registry::global();
    obs::registry& b = obs::registry::global();
    EXPECT_EQ(&a, &b);
}

TEST(ObsRegistryTest, ConcurrentRegistrationIsSafe) {
    obs::registry reg;
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t)
        workers.emplace_back([&reg, t] {
            for (int i = 0; i < 200; ++i) {
                // Half the names collide across threads, half are unique.
                const std::string name =
                    "t_total_" + std::to_string(i % 2 ? t : 0);
                reg.get_counter(name).inc();
            }
        });
    for (std::thread& w : workers) w.join();
    std::uint64_t total = 0;
    for (int t = 0; t < 8; ++t)
        total += reg.get_counter("t_total_" + std::to_string(t)).value();
    EXPECT_EQ(total, 8u * 200u);
}

}  // namespace
