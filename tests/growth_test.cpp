// Tests for the churn/growth decomposition.
#include <gtest/gtest.h>

#include "v6class/analysis/growth.h"

namespace v6 {
namespace {

address nth(unsigned i) {
    return address::from_pair(0x20010db800000000ull, 0x7000u + i);
}

TEST(ChurnAnalysisTest, NeedsTwoDays) {
    daily_series series;
    EXPECT_TRUE(churn_analysis(series).empty());
    series.set_day(1, {nth(1)});
    EXPECT_TRUE(churn_analysis(series).empty());
}

TEST(ChurnAnalysisTest, PartitionsEachDay) {
    daily_series series;
    series.set_day(1, {nth(1), nth(2)});
    series.set_day(2, {nth(1), nth(3)});          // 1 returns, 3 fresh
    series.set_day(3, {nth(2), nth(3), nth(4)});  // 3 returns, 2 revenant, 4 fresh
    const auto rows = churn_analysis(series);
    ASSERT_EQ(rows.size(), 2u);

    EXPECT_EQ(rows[0].day, 2);
    EXPECT_EQ(rows[0].active, 2u);
    EXPECT_EQ(rows[0].returning, 1u);
    EXPECT_EQ(rows[0].fresh, 1u);
    EXPECT_EQ(rows[0].revenant, 0u);

    EXPECT_EQ(rows[1].day, 3);
    EXPECT_EQ(rows[1].active, 3u);
    EXPECT_EQ(rows[1].returning, 1u);
    EXPECT_EQ(rows[1].revenant, 1u);
    EXPECT_EQ(rows[1].fresh, 1u);
    EXPECT_DOUBLE_EQ(rows[1].fresh_share(), 1.0 / 3.0);

    // The partition must be exhaustive every day.
    for (const churn_day& row : rows)
        EXPECT_EQ(row.returning + row.fresh + row.revenant, row.active);
}

TEST(EpochGrowthTest, FactorsAndSurvivors) {
    daily_series series;
    series.set_day(0, {nth(1), nth(2), nth(3), nth(4)});
    series.set_day(100, {nth(3), nth(4), nth(5), nth(6), nth(7), nth(8)});
    const growth_report report = epoch_growth(series, 0, 100);
    EXPECT_EQ(report.early_active, 4u);
    EXPECT_EQ(report.late_active, 6u);
    EXPECT_DOUBLE_EQ(report.growth_factor, 1.5);
    EXPECT_EQ(report.common, 2u);
    EXPECT_DOUBLE_EQ(report.survivor_share, 0.5);
}

TEST(EpochGrowthTest, EmptyEarlyDay) {
    daily_series series;
    series.set_day(5, {nth(1)});
    const growth_report report = epoch_growth(series, 0, 5);
    EXPECT_EQ(report.early_active, 0u);
    EXPECT_DOUBLE_EQ(report.growth_factor, 0.0);
    EXPECT_DOUBLE_EQ(report.survivor_share, 0.0);
}

}  // namespace
}  // namespace v6
