// Unit tests for the IPv4 value type.
#include <gtest/gtest.h>

#include "v6class/ip/ipv4.h"

namespace v6 {
namespace {

TEST(Ipv4Test, ParseAndFormatRoundTrip) {
    const auto a = ipv4_address::parse("192.0.2.33");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->value(), 0xc0000221u);
    EXPECT_EQ(a->to_string(), "192.0.2.33");
    EXPECT_EQ(ipv4_address{}.to_string(), "0.0.0.0");
    EXPECT_EQ(ipv4_address{0xffffffffu}.to_string(), "255.255.255.255");
}

TEST(Ipv4Test, Octets) {
    const ipv4_address a{0xc0000221u};
    EXPECT_EQ(a.octet(0), 192u);
    EXPECT_EQ(a.octet(1), 0u);
    EXPECT_EQ(a.octet(2), 2u);
    EXPECT_EQ(a.octet(3), 33u);
}

struct bad_v4 {
    const char* text;
};

class Ipv4InvalidParse : public ::testing::TestWithParam<bad_v4> {};

TEST_P(Ipv4InvalidParse, Rejected) {
    EXPECT_FALSE(ipv4_address::parse(GetParam().text).has_value())
        << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, Ipv4InvalidParse,
    ::testing::Values(bad_v4{""}, bad_v4{"1.2.3"}, bad_v4{"1.2.3.4.5"},
                      bad_v4{"256.1.1.1"}, bad_v4{"1.2.3.04"}, bad_v4{"a.b.c.d"},
                      bad_v4{"1..2.3"}, bad_v4{"1.2.3.4 "}, bad_v4{" 1.2.3.4"},
                      bad_v4{"1.2.3.4444"}));

TEST(Ipv4Test, MustParseThrows) {
    EXPECT_THROW(ipv4_address::must_parse("nope"), std::invalid_argument);
}

struct global_case {
    const char* text;
    bool global;
};

class Ipv4Globality : public ::testing::TestWithParam<global_case> {};

TEST_P(Ipv4Globality, Matches) {
    EXPECT_EQ(ipv4_address::must_parse(GetParam().text).is_global(),
              GetParam().global)
        << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, Ipv4Globality,
    ::testing::Values(global_case{"8.8.8.8", true}, global_case{"10.0.0.1", false},
                      global_case{"172.16.0.1", false},
                      global_case{"172.32.0.1", true},
                      global_case{"192.168.1.1", false},
                      global_case{"192.169.1.1", true},
                      global_case{"169.254.0.1", false},
                      global_case{"127.0.0.1", false},
                      global_case{"100.64.0.1", false},
                      global_case{"100.128.0.1", true},
                      global_case{"224.0.0.1", false},
                      global_case{"0.1.2.3", false},
                      global_case{"203.0.113.9", true}));

TEST(Ipv4Test, Ordering) {
    EXPECT_LT(ipv4_address::must_parse("10.0.0.1"),
              ipv4_address::must_parse("10.0.0.2"));
}

}  // namespace
}  // namespace v6
