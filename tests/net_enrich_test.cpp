// Enrichment: source parsing, the binary db format (round trip and
// structural validation), longest-prefix lookups, the RCU-style hot
// reload (old snapshot keeps serving through failures and swaps), the
// zero-drop reload-under-load property (the TSan target), and the
// per-ASN ledger.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <thread>

#include "v6class/net/enrich.h"

namespace v6 {
namespace {

net::enrich_entry entry(const std::string& pfx, std::uint32_t asn,
                        const char* cc = "--") {
    return {*prefix::parse(pfx), {asn, {cc[0], cc[1]}}};
}

TEST(EnrichParse, AcceptsRouteAndCsvShapes) {
    const auto a = net::parse_enrich_line("2001:db8::/32 64500 de");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, entry("2001:db8::/32", 64500, "de"));

    const auto b = net::parse_enrich_line("2001:db8:1::/48,AS64501,US");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->info.asn, 64501u);
    EXPECT_EQ(b->info.country, (std::array<char, 2>{'u', 's'}));

    const auto c = net::parse_enrich_line("2001:db8::1 7018");
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->pfx.length(), 128u);
    EXPECT_EQ(c->info.country, (std::array<char, 2>{'-', '-'}));
}

TEST(EnrichParse, RejectsMalformedLines) {
    EXPECT_FALSE(net::parse_enrich_line(""));
    EXPECT_FALSE(net::parse_enrich_line("2001:db8::/32"));        // no asn
    EXPECT_FALSE(net::parse_enrich_line("notanaddr 64500"));
    EXPECT_FALSE(net::parse_enrich_line("2001:db8::/32 ASx"));
    EXPECT_FALSE(net::parse_enrich_line("2001:db8::/32 99999999999"));
    EXPECT_FALSE(net::parse_enrich_line("2001:db8::/32 64500 deu"));
}

TEST(EnrichDb, EncodeDecodeRoundTripDedupsLastWins) {
    std::vector<net::enrich_entry> entries = {
        entry("2001:db8::/32", 1, "aa"),
        entry("2001:db8:ffff::/48", 3, "cc"),
        entry("2001:db8::/32", 2, "bb"),  // later duplicate wins
    };
    const auto image = net::encode_asn_db(entries);
    EXPECT_EQ(image.size(), net::kAsnDbHeaderSize + 2 * net::kAsnDbEntrySize);
    std::string error;
    const auto decoded = net::decode_asn_db(image.data(), image.size(), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    ASSERT_EQ(decoded->size(), 2u);
    EXPECT_EQ((*decoded)[0], entry("2001:db8::/32", 2, "bb"));
    EXPECT_EQ((*decoded)[1], entry("2001:db8:ffff::/48", 3, "cc"));
}

TEST(EnrichDb, DecodeRejectsStructuralProblems) {
    auto image = net::encode_asn_db({entry("2001:db8::/32", 1)});
    std::string error;

    auto bad = image;
    bad[0] = 'X';
    EXPECT_FALSE(net::decode_asn_db(bad.data(), bad.size(), &error));

    bad = image;
    bad[8] = 9;  // version
    EXPECT_FALSE(net::decode_asn_db(bad.data(), bad.size(), &error));

    bad = image;
    bad.pop_back();  // size arithmetic
    EXPECT_FALSE(net::decode_asn_db(bad.data(), bad.size(), &error));

    bad = image;
    bad[net::kAsnDbHeaderSize + 16] = 129;  // prefix length
    EXPECT_FALSE(net::decode_asn_db(bad.data(), bad.size(), &error));

    bad = image;
    bad[net::kAsnDbHeaderSize + 17] = 1;  // reserved byte
    EXPECT_FALSE(net::decode_asn_db(bad.data(), bad.size(), &error));

    bad = image;
    bad[net::kAsnDbHeaderSize + 15] = 0xff;  // host bits below /32 set
    EXPECT_FALSE(net::decode_asn_db(bad.data(), bad.size(), &error));

    EXPECT_FALSE(net::decode_asn_db(image.data(), 3, &error));  // short header
}

TEST(EnrichDb, LongestPrefixMatchWins) {
    const net::asn_db db({entry("2001:db8::/32", 1, "aa"),
                          entry("2001:db8:8::/48", 2, "bb"),
                          entry("::/0", 9, "zz")});
    const auto* wide = db.lookup(*address::parse("2001:db8:1::1"));
    ASSERT_NE(wide, nullptr);
    EXPECT_EQ(wide->asn, 1u);
    const auto* deep = db.lookup(*address::parse("2001:db8:8::1"));
    ASSERT_NE(deep, nullptr);
    EXPECT_EQ(deep->asn, 2u);
    const auto* fallback = db.lookup(*address::parse("2600::1"));
    ASSERT_NE(fallback, nullptr);
    EXPECT_EQ(fallback->asn, 9u);
}

TEST(Enrichment, ReloadSwapsAndFailureKeepsOldSnapshot) {
    const std::string path = testing::TempDir() + "enrich_swap.db";
    ASSERT_TRUE(net::write_asn_db(path, {entry("2001:db8::/32", 100)}));

    net::enrichment enr(path);
    EXPECT_EQ(enr.snapshot(), nullptr) << "not loaded until first reload";
    std::string error;
    ASSERT_TRUE(enr.reload(&error)) << error;
    const address probe = *address::parse("2001:db8::1");
    std::shared_ptr<const net::asn_db> snap;
    ASSERT_NE(enr.lookup(probe, snap), nullptr);
    EXPECT_EQ(enr.lookup(probe, snap)->asn, 100u);

    ASSERT_TRUE(net::write_asn_db(path, {entry("2001:db8::/32", 200)}));
    ASSERT_TRUE(enr.reload(&error));
    EXPECT_EQ(enr.lookup(probe, snap)->asn, 200u);
    EXPECT_EQ(snap->generation(), 2u);

    // A corrupt push must not take the service down.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << "garbage";
    }
    EXPECT_FALSE(enr.reload(&error));
    EXPECT_FALSE(error.empty());
    ASSERT_NE(enr.lookup(probe, snap), nullptr);
    EXPECT_EQ(enr.lookup(probe, snap)->asn, 200u) << "old snapshot serves on";
    EXPECT_EQ(enr.reloads(), 2u);
    EXPECT_EQ(enr.failures(), 1u);
}

// The tentpole guarantee: readers hammering lookup() while the db file
// is rewritten and reloaded many times always see a complete snapshot —
// every single lookup resolves (zero "dropped" enrichments) and the
// result is one of the two valid generations, never a torn value.
// Run under TSan to prove the swap is race-free.
TEST(Enrichment, HotReloadUnderLoadDropsNothing) {
    const std::string path = testing::TempDir() + "enrich_load.db";
    ASSERT_TRUE(net::write_asn_db(path, {entry("2001:db8::/32", 111, "aa")}));
    net::enrichment enr(path);
    ASSERT_TRUE(enr.reload());

    const address probe = *address::parse("2001:db8::42");
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> lookups{0}, misses{0}, torn{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t)
        readers.emplace_back([&] {
            std::shared_ptr<const net::asn_db> snap;
            while (!stop.load(std::memory_order_relaxed)) {
                const net::enrich_info* info = enr.lookup(probe, snap);
                ++lookups;
                if (!info) {
                    ++misses;
                } else if (!((info->asn == 111 &&
                              info->country == std::array<char, 2>{'a', 'a'}) ||
                             (info->asn == 222 &&
                              info->country == std::array<char, 2>{'b', 'b'}))) {
                    ++torn;
                }
            }
        });

    for (int i = 0; i < 50; ++i) {
        const bool odd = i % 2;
        ASSERT_TRUE(net::write_asn_db(
            path, {entry("2001:db8::/32", odd ? 222 : 111, odd ? "bb" : "aa")}));
        ASSERT_TRUE(enr.reload());
    }
    stop = true;
    for (auto& t : readers) t.join();

    EXPECT_GT(lookups.load(), 0u);
    EXPECT_EQ(misses.load(), 0u) << "a reload made lookups fail";
    EXPECT_EQ(torn.load(), 0u) << "a lookup saw a half-built snapshot";
    EXPECT_EQ(enr.reloads(), 51u);
    EXPECT_EQ(enr.failures(), 0u);
}

TEST(AsnLedger, TakeDaySortsAndForgets) {
    net::asn_ledger ledger;
    const net::enrich_info a{64500, {'d', 'e'}};
    const net::enrich_info b{64501, {'u', 's'}};
    ledger.note(360, &a, 10);
    ledger.note(360, &b, 1);
    ledger.note(360, &b, 2);
    ledger.note(360, nullptr, 5);  // unrouted bucket
    ledger.note(361, &a, 7);

    const auto rows = ledger.take_day(360);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].asn, 64501u);  // 2 records beat 1
    EXPECT_EQ(rows[0].records, 2u);
    EXPECT_EQ(rows[0].hits, 3u);
    EXPECT_EQ(rows[1].records, 1u);
    // Ties (the two 1-record rows) break by ascending ASN; 0 = unrouted.
    EXPECT_EQ(rows[1].asn, 0u);
    EXPECT_EQ(rows[2].asn, 64500u);
    EXPECT_EQ(rows[2].country, (std::array<char, 2>{'d', 'e'}));

    EXPECT_TRUE(ledger.take_day(360).empty()) << "a day reports once";
    EXPECT_EQ(ledger.take_day(361).size(), 1u);

    EXPECT_EQ(ledger.matched(), 4u);
    EXPECT_EQ(ledger.unmatched(), 1u);

    const auto top = ledger.top(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].asn, 64500u);  // lifetime: 2 records for a
    EXPECT_EQ(top[0].records, 2u);
}

}  // namespace
}  // namespace v6
