// Unit tests for v6::address: parsing, formatting, accessors, masking.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "v6class/ip/address.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(AddressTest, DefaultIsAllZeroes) {
    const address a;
    EXPECT_EQ(a.hi(), 0u);
    EXPECT_EQ(a.lo(), 0u);
    EXPECT_EQ(a.to_string(), "::");
}

TEST(AddressTest, FromPairRoundTrips) {
    const address a = address::from_pair(0x20010db800000001ull, 0xdeadbeefcafe0001ull);
    EXPECT_EQ(a.hi(), 0x20010db800000001ull);
    EXPECT_EQ(a.lo(), 0xdeadbeefcafe0001ull);
}

TEST(AddressTest, FromHextets) {
    const address a = address::from_hextets(
        {0x2001, 0x0db8, 0, 0, 0, 0, 0, 0x0001});
    EXPECT_EQ(a, "2001:db8::1"_v6);
}

TEST(AddressTest, ParseFullForm) {
    const auto a = address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->to_string(), "2001:db8::1");
}

TEST(AddressTest, ParseCompressed) {
    EXPECT_EQ("::"_v6.hi(), 0u);
    EXPECT_EQ("::1"_v6.lo(), 1u);
    EXPECT_EQ("1::"_v6.hi(), 0x0001000000000000ull);
    EXPECT_EQ("2001:db8::10:901"_v6.lo(), 0x0000000000100901ull);
}

TEST(AddressTest, ParseEmbeddedIpv4) {
    const auto a = address::parse("::ffff:192.0.2.33");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->lo(), 0x0000ffffc0000221ull);
    const auto b = address::parse("2002:c000:221::1");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->hextet(1), 0xc000);
}

TEST(AddressTest, ParsePaperSampleAddresses) {
    // Figure 1's four sample addresses must all parse.
    for (const char* text :
         {"2001:db8:10:1::103", "2001:db8:167:1109::10:901",
          "2001:db8:0:1cdf:21e:c2ff:fec0:11db",
          "2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a"}) {
        EXPECT_TRUE(address::parse(text).has_value()) << text;
    }
}

struct invalid_case {
    const char* text;
};

class AddressInvalidParse : public ::testing::TestWithParam<invalid_case> {};

TEST_P(AddressInvalidParse, Rejected) {
    EXPECT_FALSE(address::parse(GetParam().text).has_value()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, AddressInvalidParse,
    ::testing::Values(
        invalid_case{""}, invalid_case{":"}, invalid_case{":::"},
        invalid_case{"1:2:3:4:5:6:7"}, invalid_case{"1:2:3:4:5:6:7:8:9"},
        invalid_case{"1:2:3:4:5:6:7::8"}, invalid_case{"::1::2"},
        invalid_case{"12345::"}, invalid_case{"g::1"}, invalid_case{"1::2:"},
        invalid_case{":1::2"}, invalid_case{"1.2.3.4"},
        invalid_case{"::192.0.2.256"}, invalid_case{"::192.0.2"},
        invalid_case{"::192.0.2.33.1"}, invalid_case{"::01.2.3.4"},
        invalid_case{"2001:db8::192.0.2.33:1"},
        invalid_case{"2001:db8:0:0:0:0:0:0:0:1"},
        invalid_case{" ::1"}, invalid_case{"::1 "}));

TEST(AddressTest, MustParseThrowsOnGarbage) {
    EXPECT_THROW(address::must_parse("zz"), std::invalid_argument);
    EXPECT_NO_THROW(address::must_parse("::1"));
}

struct roundtrip_case {
    const char* canonical;
};

class AddressRoundTrip : public ::testing::TestWithParam<roundtrip_case> {};

TEST_P(AddressRoundTrip, ParseFormatIdentity) {
    const auto a = address::parse(GetParam().canonical);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->to_string(), GetParam().canonical);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc5952, AddressRoundTrip,
    ::testing::Values(
        roundtrip_case{"::"}, roundtrip_case{"::1"}, roundtrip_case{"1::"},
        roundtrip_case{"2001:db8::1"}, roundtrip_case{"2001:db8:0:1:1:1:1:1"},
        roundtrip_case{"2001:0:0:1::1"},       // leftmost-longest zero run
        roundtrip_case{"2001:db8::1:0:0:1"},   // compress the longest run
        roundtrip_case{"1:2:3:4:5:6:7:8"},
        roundtrip_case{"ff02::1"}, roundtrip_case{"fe80::1"},
        roundtrip_case{"2001:db8:aaaa:bbbb:cccc:dddd:eeee:ffff"}));

TEST(AddressTest, Rfc5952ZeroRunRules) {
    // A single zero hextet is not compressed.
    EXPECT_EQ(address::must_parse("2001:db8:0:1:1:1:1:1").to_string(),
              "2001:db8:0:1:1:1:1:1");
    // Ties go to the leftmost run.
    EXPECT_EQ(address::must_parse("2001:0:0:1:0:0:0:1").to_string(),
              "2001:0:0:1::1");
}

TEST(AddressTest, BitAccessors) {
    const address a = "8000::1"_v6;
    EXPECT_EQ(a.bit(0), 1u);
    EXPECT_EQ(a.bit(1), 0u);
    EXPECT_EQ(a.bit(127), 1u);
    EXPECT_EQ(a.bit(126), 0u);
}

TEST(AddressTest, NybbleAccessors) {
    const address a = "2001:db8::f"_v6;
    EXPECT_EQ(a.nybble(0), 0x2u);
    EXPECT_EQ(a.nybble(1), 0x0u);
    EXPECT_EQ(a.nybble(2), 0x0u);
    EXPECT_EQ(a.nybble(3), 0x1u);
    EXPECT_EQ(a.nybble(4), 0x0u);
    EXPECT_EQ(a.nybble(5), 0xdu);
    EXPECT_EQ(a.nybble(31), 0xfu);
}

TEST(AddressTest, HextetAccessors) {
    const address a = "2001:db8:1:2:3:4:5:6"_v6;
    EXPECT_EQ(a.hextet(0), 0x2001);
    EXPECT_EQ(a.hextet(1), 0x0db8);
    EXPECT_EQ(a.hextet(7), 0x0006);
}

TEST(AddressTest, WithBit) {
    address a;
    a = a.with_bit(0, 1);
    EXPECT_EQ(a.bit(0), 1u);
    a = a.with_bit(0, 0);
    EXPECT_EQ(a, address{});
    a = a.with_bit(70, 1);
    EXPECT_EQ(a.bit(70), 1u);
    EXPECT_EQ(a.bit(69), 0u);
    EXPECT_EQ(a.bit(71), 0u);
}

TEST(AddressTest, MaskedClearsHostBits) {
    const address a = "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff"_v6;
    EXPECT_EQ(a.masked(32).to_string(), "2001:db8::");
    EXPECT_EQ(a.masked(0), address{});
    EXPECT_EQ(a.masked(128), a);
    EXPECT_EQ(a.masked(33).hextet(2), 0x8000);
}

TEST(AddressTest, MaskedUpperSetsHostBits) {
    const address a = "2001:db8::"_v6;
    EXPECT_EQ(a.masked_upper(32).to_string(),
              "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff");
    EXPECT_EQ(a.masked_upper(128), a);
    EXPECT_EQ(a.masked_upper(127).lo(), 1u);
}

TEST(AddressTest, CommonPrefixLength) {
    const address a = "2001:db8::1"_v6;
    EXPECT_EQ(a.common_prefix_length(a), 128u);
    EXPECT_EQ(a.common_prefix_length("2001:db8::"_v6), 127u);
    EXPECT_EQ(a.common_prefix_length("2001:db9::1"_v6), 31u);
    EXPECT_EQ(a.common_prefix_length("3001:db8::1"_v6), 3u);
    EXPECT_EQ(a.common_prefix_length("a001:db8::1"_v6), 0u);
}

TEST(AddressTest, OrderingIsLexicographicOnBytes) {
    std::set<address> s{"2001:db8::2"_v6, "2001:db8::1"_v6, "::1"_v6,
                        "ff02::1"_v6};
    auto it = s.begin();
    EXPECT_EQ(*it++, "::1"_v6);
    EXPECT_EQ(*it++, "2001:db8::1"_v6);
    EXPECT_EQ(*it++, "2001:db8::2"_v6);
    EXPECT_EQ(*it++, "ff02::1"_v6);
}

TEST(AddressTest, HashDistinguishes) {
    std::unordered_set<address, address_hash> s;
    s.insert("2001:db8::1"_v6);
    s.insert("2001:db8::2"_v6);
    s.insert("2001:db8::1"_v6);
    EXPECT_EQ(s.size(), 2u);
}

TEST(AddressTest, FullHexExpansion) {
    EXPECT_EQ("2001:db8::1"_v6.to_full_hex(),
              "20010db8000000000000000000000001");
    EXPECT_EQ(address{}.to_full_hex(), std::string(32, '0'));
}

}  // namespace
}  // namespace v6
