// Differential property test: every batch kernel, at every available
// dispatch level, must be bit-identical to the scalar ip::address /
// addrtype routines.  This is the contract that makes runtime dispatch
// invisible (same day reports with and without AVX2), so the corpus leans
// adversarial: compressed forms, embedded IPv4, inet_pton edge cases,
// malformed mutations, and 100k+ random addresses.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <random>
#include <string>
#include <vector>

#include "v6class/addrtype/classify.h"
#include "v6class/addrtype/malone.h"
#include "v6class/ip/address.h"
#include "v6class/simd/kernels.h"

namespace {

using v6::address;
using v6::simd::address_block;
using v6::simd::kernel_table;
using v6::simd::level;

std::vector<level> levels_under_test() {
    std::vector<level> out{level::scalar};
    if (v6::simd::detect_level() == level::avx2) out.push_back(level::avx2);
    return out;
}

std::vector<address> make_address_corpus() {
    std::vector<address> out;
    std::mt19937_64 rng(0x5eedu);

    // Hand-picked shapes covering every classifier branch.
    const char* fixed[] = {
        "::", "::1", "ff02::1", "fe80::1", "fc00::1", "fd12:3456::1",
        "2001:db8::1", "2001:db8:167:1109::10:901", "2001::5ef5:79fb:1",
        "2002:c000:204::1", "2001:db8::200:5efe:c000:204",
        "2001:db8::5efe:c000:204", "2001:db8::021b:21ff:fe3a:5678",
        "2001:db8::dead:beef:cafe:babe", "2001:db8::192:0:2:33",
        "2001:db8:a:b:c000:204:c000:204", "2001:db8::1:2:3:4",
        "::ffff:192.0.2.1", "64:ff9b::192.0.2.33", "100::1",
        "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff", "1:2:3:4:5:6:7:8",
    };
    for (const char* s : fixed) out.push_back(address::must_parse(s));

    const auto push = [&](std::uint64_t hi, std::uint64_t lo) {
        out.push_back(address::from_pair(hi, lo));
    };
    for (int i = 0; i < 40000; ++i) push(rng(), rng());  // dense random
    for (int i = 0; i < 20000; ++i) {
        // Sparse nybbles on both halves: structured / low-value shapes.
        push(rng() & rng() & rng(), rng() & rng() & rng());
    }
    for (int i = 0; i < 20000; ++i) {
        // Realistic: 2001:db8 prefix, privacy or small IIDs.
        const std::uint64_t hi =
            0x20010db800000000ull | (rng() & 0x3fffull) << 16 | (rng() & 0xff);
        const std::uint64_t lo = (i % 2) ? rng() : (rng() & 0xffff);
        push(hi, lo);
    }
    for (int i = 0; i < 10000; ++i) {
        // Transition-ish: teredo / 6to4 / isatap / eui64 markers.
        switch (i % 4) {
            case 0: push(0x2001000000000000ull | (rng() & 0xffffffffull), rng()); break;
            case 1: push(0x2002000000000000ull | (rng() & 0xffffffffffffull), rng()); break;
            case 2:
                push(rng(), ((i % 8 < 4) ? 0x00005efe00000000ull
                                         : 0x02005efe00000000ull) |
                                (rng() & 0xffffffffull));
                break;
            default:
                push(rng(), (rng() & 0xffffff000000ffffull) | 0x000000fffe000000ull);
                break;
        }
    }
    for (int i = 0; i < 10000; ++i) {
        // Octet-like groups in the IID (hex- and decimal-coded quads).
        const auto oct = [&]() -> std::uint64_t {
            return (i % 2) ? rng() % 256 : (rng() % 10) * 16 + rng() % 10;
        };
        push(rng(), oct() << 48 | oct() << 32 | oct() << 16 | oct());
    }
    return out;
}

std::vector<std::string> make_text_corpus(const std::vector<address>& addrs) {
    std::vector<std::string> out;
    const char* fixed[] = {
        // valid
        "::", "::1", "1::", "1::2", "0:0:0:0:0:0:0:0", "1:2:3:4:5:6:7:8",
        "2001:db8::192.0.2.33", "::ffff:192.0.2.1", "::192.0.2.33",
        "1.2.3.4::1",  // quirk: dotted quad closes the part BEFORE the gap
        "A:B:C:D:E:F:a:b", "0001:0002:0003:0004:0005:0006:0007:0008",
        "2001:DB8::DEAD:BEEF", "fe80::0204:61ff:fe9d:f156",
        // malformed
        "", ":", ":::", "::::", "1:::2", "1::2::3", "1::2:", ":1:2",
        "12345::", "1:2:3:4:5:6:7:8:9", "1:2:3:4:5:6:7", "1:2:3:4:5:6:7::8",
        "g::1", "1::g", "::1 ", " ::1", "2001:db8::1.2.3", "1.2.3.4.5::",
        "::1.2.3.04", "::1.2.3.256", "::1.2.3.+4", "::01.2.3.4",
        "::1.2.3.4:5", "1.2.3.4", "1.2.3.4::5.6.7.8", "f:f:f:f:f:f:f:f:",
        "0000000000000000000000000000000000000000000000000",  // > 45 chars
        "1:2:3:4:5:6:1.2.3.4", "1:2:3:4:5:6:7:1.2.3.4", "::ffff:1.2.3.4.",
        "\x80::1", "1::\xff",
    };
    for (const char* s : fixed) out.emplace_back(s);

    std::mt19937_64 rng(0xc0ffeeu);
    const std::size_t n_addr = addrs.size();
    for (std::size_t i = 0; i < 30000; ++i) {
        // Round-trip spellings: compressed and full forms.
        const address& a = addrs[i % n_addr];
        if (i % 3 == 0) {
            out.push_back(a.to_string());
        } else if (i % 3 == 1) {
            // Full-hex grouped spelling, sometimes uppercased.
            const std::string hex = a.to_full_hex();
            std::string s;
            for (int g = 0; g < 8; ++g) {
                if (g) s += ':';
                s += hex.substr(4 * static_cast<std::size_t>(g), 4);
            }
            if (i % 6 == 1)
                for (char& c : s) c = static_cast<char>(std::toupper(c));
            out.push_back(s);
        } else {
            // Mutate a valid spelling: insert/delete/replace a char.
            std::string s = a.to_string();
            const char alphabet[] = ":.0123456789abcdefgx";
            const std::size_t pos = rng() % (s.size() + 1);
            switch (rng() % 3) {
                case 0:
                    s.insert(s.begin() + static_cast<std::ptrdiff_t>(pos),
                             alphabet[rng() % (sizeof alphabet - 1)]);
                    break;
                case 1:
                    if (!s.empty()) s.erase(s.begin() + static_cast<std::ptrdiff_t>(pos % s.size()));
                    break;
                default:
                    if (!s.empty())
                        s[pos % s.size()] = alphabet[rng() % (sizeof alphabet - 1)];
                    break;
            }
            out.push_back(s);
        }
    }
    for (int i = 0; i < 5000; ++i) {
        // Pure garbage of plausible lengths.
        std::string s;
        const std::size_t len = rng() % 48;
        for (std::size_t k = 0; k < len; ++k)
            s += static_cast<char>(rng() % 96 + 32);
        out.push_back(s);
    }
    return out;
}

TEST(SimdDifferential, ParseMatchesScalarReference) {
    const auto addrs = make_address_corpus();
    const auto texts = make_text_corpus(addrs);
    std::vector<std::string_view> views(texts.begin(), texts.end());

    for (level lv : levels_under_test()) {
        const kernel_table& t = v6::simd::table_for(lv);
        address_block block(views.size());
        std::vector<std::uint8_t> ok(views.size());
        const std::size_t good =
            t.parse(views.data(), views.size(), block, ok.data());
        std::size_t expected_good = 0;
        for (std::size_t i = 0; i < views.size(); ++i) {
            const auto ref = v6::address::parse(views[i]);
            ASSERT_EQ(ok[i] != 0, ref.has_value())
                << "level=" << v6::simd::level_name(lv) << " text=\""
                << texts[i] << '"';
            if (ref) {
                ++expected_good;
                ASSERT_EQ(block.at(i), *ref)
                    << "level=" << v6::simd::level_name(lv) << " text=\""
                    << texts[i] << '"';
            } else {
                ASSERT_EQ(block.hi_at(i), 0u);
                ASSERT_EQ(block.lo_at(i), 0u);
            }
        }
        EXPECT_EQ(good, expected_good);
    }
}

TEST(SimdDifferential, FormatMatchesToString) {
    const auto addrs = make_address_corpus();
    for (level lv : levels_under_test()) {
        const kernel_table& t = v6::simd::table_for(lv);
        address_block block(addrs.size());
        block.assign(addrs);
        std::vector<char> buf(v6::simd::kFormatStride * addrs.size());
        std::vector<std::uint8_t> lens(addrs.size());
        t.format(block, buf.data(), lens.data());
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            const std::string got(buf.data() + v6::simd::kFormatStride * i,
                                  lens[i]);
            ASSERT_EQ(got, addrs[i].to_string())
                << "level=" << v6::simd::level_name(lv);
        }
    }
}

TEST(SimdDifferential, ClassifyMatchesAddrtype) {
    const auto addrs = make_address_corpus();
    for (level lv : levels_under_test()) {
        const kernel_table& t = v6::simd::table_for(lv);
        address_block block(addrs.size());
        block.assign(addrs);
        std::vector<std::uint8_t> tr(addrs.size()), sc(addrs.size()),
            iid(addrs.size()), ml(addrs.size());
        t.classify(block, tr.data(), sc.data(), iid.data());
        t.malone(block, ml.data());
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            const auto c = v6::classify(addrs[i]);
            ASSERT_EQ(tr[i], static_cast<std::uint8_t>(c.transition))
                << "level=" << v6::simd::level_name(lv) << " "
                << addrs[i].to_string();
            ASSERT_EQ(sc[i], static_cast<std::uint8_t>(c.scope))
                << "level=" << v6::simd::level_name(lv) << " "
                << addrs[i].to_string();
            ASSERT_EQ(iid[i], static_cast<std::uint8_t>(c.iid))
                << "level=" << v6::simd::level_name(lv) << " "
                << addrs[i].to_string();
            ASSERT_EQ(ml[i],
                      static_cast<std::uint8_t>(v6::malone_classify(addrs[i])))
                << "level=" << v6::simd::level_name(lv) << " "
                << addrs[i].to_string();
        }
    }
}

TEST(SimdDifferential, CommonPrefixLenMatches) {
    const auto addrs = make_address_corpus();
    std::mt19937_64 rng(7);
    for (level lv : levels_under_test()) {
        const kernel_table& t = v6::simd::table_for(lv);
        address_block a(4096), b(4096);
        for (int i = 0; i < 4096; ++i) {
            const address& x = addrs[rng() % addrs.size()];
            a.push_back(x);
            if (i % 3 == 0) {
                b.push_back(addrs[rng() % addrs.size()]);
            } else {
                // Force interesting shared prefixes by flipping one bit.
                const unsigned bit = rng() % 128;
                std::uint64_t hi = x.hi(), lo = x.lo();
                if (bit < 64)
                    hi ^= 1ull << (63 - bit);
                else
                    lo ^= 1ull << (127 - bit);
                b.push_back(address::from_pair(hi, lo));
            }
        }
        std::vector<std::uint8_t> out(4096);
        t.common_prefix_len(a, b, out.data());
        for (std::size_t i = 0; i < 4096; ++i)
            ASSERT_EQ(out[i], a.at(i).common_prefix_length(b.at(i)))
                << "level=" << v6::simd::level_name(lv);
    }
}

TEST(SimdDifferential, MaskMatchesMasked) {
    const auto addrs = make_address_corpus();
    for (level lv : levels_under_test()) {
        const kernel_table& t = v6::simd::table_for(lv);
        for (unsigned len = 0; len <= 128; len += (len < 72 ? 1 : 7)) {
            address_block block(512);
            for (int i = 0; i < 512; ++i)
                block.push_back(addrs[static_cast<std::size_t>(i) * 131 %
                                      addrs.size()]);
            const auto before = block.to_vector();
            t.mask(block, len);
            for (std::size_t i = 0; i < before.size(); ++i)
                ASSERT_EQ(block.at(i), before[i].masked(len))
                    << "level=" << v6::simd::level_name(lv) << " len=" << len;
        }
    }
}

TEST(SimdDifferential, SortUniqueMatchesStdSort) {
    const auto addrs = make_address_corpus();
    std::mt19937_64 rng(99);
    for (level lv : levels_under_test()) {
        const kernel_table& t = v6::simd::table_for(lv);
        std::vector<address> ref;
        address_block block(60000);
        for (int i = 0; i < 60000; ++i) {
            // Plenty of duplicates.
            const address& a = addrs[rng() % 20000];
            ref.push_back(a);
            block.push_back(a);
        }
        // sort (duplicates kept)
        address_block sorted_only(60000);
        for (const address& a : ref) sorted_only.push_back(a);
        t.sort(sorted_only);
        std::vector<address> ref_sorted = ref;
        std::sort(ref_sorted.begin(), ref_sorted.end());
        ASSERT_EQ(sorted_only.to_vector(), ref_sorted)
            << "level=" << v6::simd::level_name(lv);
        // sort + unique
        t.sort_unique(block);
        ref_sorted.erase(std::unique(ref_sorted.begin(), ref_sorted.end()),
                         ref_sorted.end());
        ASSERT_EQ(block.to_vector(), ref_sorted)
            << "level=" << v6::simd::level_name(lv);
    }
}

}  // namespace
