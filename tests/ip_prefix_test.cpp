// Unit tests for v6::prefix.
#include <gtest/gtest.h>

#include <set>

#include "v6class/ip/prefix.h"

namespace v6 {
namespace {

using namespace v6::literals;

TEST(PrefixTest, DefaultCoversEverything) {
    const prefix p;
    EXPECT_EQ(p.length(), 0u);
    EXPECT_TRUE(p.contains("ff02::1"_v6));
    EXPECT_TRUE(p.contains("::"_v6));
}

TEST(PrefixTest, ConstructorCanonicalizes) {
    const prefix p{"2001:db8::ffff"_v6, 32};
    EXPECT_EQ(p.base(), "2001:db8::"_v6);
    EXPECT_EQ(p.to_string(), "2001:db8::/32");
}

TEST(PrefixTest, ParseForms) {
    const auto p = prefix::parse("2001:db8::/32");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->length(), 32u);
    const auto host = prefix::parse("2001:db8::1");
    ASSERT_TRUE(host.has_value());
    EXPECT_EQ(host->length(), 128u);
}

TEST(PrefixTest, ParseRejectsBadLengths) {
    EXPECT_FALSE(prefix::parse("2001:db8::/129").has_value());
    EXPECT_FALSE(prefix::parse("2001:db8::/-1").has_value());
    EXPECT_FALSE(prefix::parse("2001:db8::/abc").has_value());
    EXPECT_FALSE(prefix::parse("2001:db8::/32x").has_value());
    EXPECT_FALSE(prefix::parse("/32").has_value());
    EXPECT_FALSE(prefix::parse("2001:db8::/").has_value());
}

TEST(PrefixTest, ContainsAddress) {
    const prefix p = "2001:db8::/32"_pfx;
    EXPECT_TRUE(p.contains("2001:db8::1"_v6));
    EXPECT_TRUE(p.contains("2001:db8:ffff::"_v6));
    EXPECT_FALSE(p.contains("2001:db9::"_v6));
}

TEST(PrefixTest, ContainsPrefix) {
    const prefix p = "2001:db8::/32"_pfx;
    EXPECT_TRUE(p.contains("2001:db8:1::/48"_pfx));
    EXPECT_TRUE(p.contains(p));
    EXPECT_FALSE(p.contains("2001::/16"_pfx));  // less specific
    EXPECT_FALSE(p.contains("2001:db9::/48"_pfx));
}

TEST(PrefixTest, FirstLastAddress) {
    const prefix p = "2001:db8::/126"_pfx;
    EXPECT_EQ(p.first_address(), "2001:db8::"_v6);
    EXPECT_EQ(p.last_address(), "2001:db8::3"_v6);
}

TEST(PrefixTest, ParentChild) {
    const prefix p = "2001:db8::/32"_pfx;
    EXPECT_EQ(p.parent().to_string(), "2001:db8::/31");
    EXPECT_EQ(p.child(0).to_string(), "2001:db8::/33");
    EXPECT_EQ(p.child(1).base().hextet(2), 0x8000);
    EXPECT_TRUE(p.contains(p.child(0)));
    EXPECT_TRUE(p.contains(p.child(1)));
    EXPECT_EQ(p.child(0).parent(), p);
    EXPECT_EQ(p.child(1).parent(), p);
}

TEST(PrefixTest, CountIsPowerOfTwo) {
    EXPECT_DOUBLE_EQ(static_cast<double>("::/128"_pfx.count()), 1.0);
    EXPECT_DOUBLE_EQ(static_cast<double>("::/112"_pfx.count()), 65536.0);
    EXPECT_DOUBLE_EQ(static_cast<double>("::/64"_pfx.count()),
                     18446744073709551616.0);
}

TEST(PrefixTest, Count64) {
    EXPECT_FALSE("::/63"_pfx.count64().has_value());
    EXPECT_FALSE("::/64"_pfx.count64().has_value());
    ASSERT_TRUE("::/65"_pfx.count64().has_value());
    EXPECT_EQ(*"::/112"_pfx.count64(), 65536u);
    EXPECT_EQ(*"::/128"_pfx.count64(), 1u);
}

TEST(PrefixTest, OrderingPlacesCoveringPrefixFirst) {
    std::set<prefix> s{"2001:db8::/48"_pfx, "2001:db8::/32"_pfx,
                       "2001:db8:1::/48"_pfx};
    auto it = s.begin();
    EXPECT_EQ(*it++, "2001:db8::/32"_pfx);
    EXPECT_EQ(*it++, "2001:db8::/48"_pfx);
    EXPECT_EQ(*it++, "2001:db8:1::/48"_pfx);
}

class PrefixLengthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrefixLengthSweep, MaskInvariants) {
    const unsigned len = GetParam();
    const address a = address::must_parse("2001:db8:a5a5:5a5a:dead:beef:cafe:f00d");
    const prefix p{a, len};
    EXPECT_EQ(p.length(), len);
    EXPECT_TRUE(p.contains(a));
    EXPECT_EQ(p.base(), a.masked(len));
    EXPECT_LE(p.first_address(), p.last_address());
    // first and last agree on the first len bits
    EXPECT_GE(p.first_address().common_prefix_length(p.last_address()), len);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixLengthSweep,
                         ::testing::Values(0u, 1u, 7u, 8u, 9u, 16u, 19u, 32u, 44u,
                                           48u, 63u, 64u, 65u, 112u, 120u, 127u,
                                           128u));

}  // namespace
}  // namespace v6
