// Tests for the node-budgeted aguri profiler.
#include <gtest/gtest.h>

#include "v6class/netgen/rng.h"
#include "v6class/trie/aguri_profiler.h"

namespace v6 {
namespace {

TEST(AguriProfilerTest, NodeBudgetIsRespected) {
    aguri_profiler prof(256, 0.01);
    rng r{11};
    for (int i = 0; i < 50'000; ++i)
        prof.observe(address::from_pair(0x20010db800000000ull | r.uniform(64), r()));
    // The budget may be exceeded transiently between reclaims but must be
    // restored right after each insert returns.
    EXPECT_LE(prof.node_count(), 256u);
    EXPECT_EQ(prof.total(), 50'000u);
}

TEST(AguriProfilerTest, ProfileSharesSumToOne) {
    aguri_profiler prof(1024, 0.02);
    rng r{12};
    for (int i = 0; i < 10'000; ++i)
        prof.observe(address::from_pair(0x20010db800000000ull | r.uniform(8), r()));
    const auto profile = prof.profile();
    ASSERT_FALSE(profile.empty());
    double total_share = 0.0;
    for (const profile_entry& e : profile) total_share += e.share;
    EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(AguriProfilerTest, HeavyAggregateSurvivesAggregation) {
    aguri_profiler prof(512, 0.05);
    rng r{13};
    // 60% of traffic in one /64, the rest scattered.
    const std::uint64_t heavy_hi = 0x20010db8000000aaull;
    for (int i = 0; i < 20'000; ++i) {
        if (r.chance(0.6))
            prof.observe(address::from_pair(heavy_hi, r()));
        else
            prof.observe(address::from_pair(0x2a00000000000000ull | (r() >> 8), r()));
    }
    const auto profile = prof.profile();
    const prefix heavy{address::from_pair(heavy_hi, 0), 64};
    double heavy_share = 0.0;
    for (const profile_entry& e : profile)
        if (heavy.contains(e.pfx) || e.pfx.contains(heavy.base()))
            heavy_share += e.share;
    EXPECT_GT(heavy_share, 0.5);
}

TEST(AguriProfilerTest, HitCountsWeighProfile) {
    aguri_profiler prof(128, 0.10);
    // One address with overwhelming hit volume.
    prof.observe(address::must_parse("2001:db8::1"), 1'000);
    for (int i = 0; i < 50; ++i)
        prof.observe(address::from_pair(0x2600000000000000ull, 0x1000u + i), 1);
    const auto profile = prof.profile();
    ASSERT_FALSE(profile.empty());
    // The heavy hitter's aggregate dominates.
    double best = 0;
    for (const auto& e : profile) best = std::max(best, e.share);
    EXPECT_GT(best, 0.9);
}

}  // namespace
}  // namespace v6
