// Tests for the on-disk log corpus (write, read, failure handling).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "v6class/cdnsim/corpus.h"
#include "v6class/cdnsim/world.h"

namespace v6 {
namespace {

using namespace v6::literals;

class CorpusTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("v6class_corpus_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::filesystem::path dir_;
};

TEST_F(CorpusTest, FileNameFormat) {
    EXPECT_EQ(corpus_file_name(0), "day_0.log");
    EXPECT_EQ(corpus_file_name(365), "day_365.log");
}

TEST_F(CorpusTest, LogRoundTrip) {
    daily_log log;
    log.day = 17;
    log.records = {{"2001:db8::1"_v6, 3}, {"2001:db8::2"_v6, 999}};
    write_log_file(dir_, log);
    const daily_log back = read_log_file(dir_ / corpus_file_name(17), 17);
    EXPECT_EQ(back.day, 17);
    ASSERT_EQ(back.records.size(), 2u);
    EXPECT_EQ(back.records[0].addr, "2001:db8::1"_v6);
    EXPECT_EQ(back.records[0].hits, 3u);
    EXPECT_EQ(back.records[1].hits, 999u);
}

TEST_F(CorpusTest, WorldCorpusRoundTrip) {
    world_config cfg;
    cfg.scale = 0.03;
    cfg.tail_isps = 4;
    const world w(cfg);
    const int written = write_corpus(w, 5, 9, dir_);
    EXPECT_EQ(written, 5);
    const daily_series series = read_corpus(dir_);
    EXPECT_EQ(series.days().size(), 5u);
    for (int d = 5; d <= 9; ++d)
        EXPECT_EQ(series.day(d), w.active_addresses(d)) << "day " << d;
}

TEST_F(CorpusTest, ReadMissingFileThrows) {
    EXPECT_THROW(read_log_file(dir_ / "day_1.log", 1), std::runtime_error);
}

TEST_F(CorpusTest, CorruptLinesAreSkipped) {
    std::filesystem::create_directories(dir_);
    {
        std::ofstream out(dir_ / "day_3.log");
        out << "# header\n2001:db8::1 5\nGARBAGE LINE\n2001:db8::2 6\n";
    }
    const daily_log log = read_log_file(dir_ / "day_3.log", 3);
    EXPECT_EQ(log.records.size(), 2u);
}

TEST_F(CorpusTest, ForeignFilesAreIgnored) {
    std::filesystem::create_directories(dir_);
    {
        std::ofstream out(dir_ / "README.txt");
        out << "not a log\n";
        std::ofstream out2(dir_ / "day_x.log");
        out2 << "2001:db8::1\n";
    }
    daily_log log;
    log.day = 2;
    log.records = {{"2001:db8::9"_v6, 1}};
    write_log_file(dir_, log);
    const daily_series series = read_corpus(dir_);
    EXPECT_EQ(series.days().size(), 1u);
    EXPECT_EQ(series.count(2), 1u);
}

}  // namespace
}  // namespace v6
