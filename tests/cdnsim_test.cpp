// Tests for the CDN log aggregation and the simulated world.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "v6class/cdnsim/world.h"

namespace v6 {
namespace {

using namespace v6::literals;

world_config small_world(double scale = 0.08) {
    world_config cfg;
    cfg.scale = scale;
    cfg.tail_isps = 12;
    return cfg;
}

TEST(LogTest, AggregateMergesDuplicates) {
    const daily_log log = aggregate_log(
        3, {{"2001:db8::2"_v6, 5}, {"2001:db8::1"_v6, 1}, {"2001:db8::2"_v6, 2}});
    EXPECT_EQ(log.day, 3);
    ASSERT_EQ(log.records.size(), 2u);
    EXPECT_EQ(log.records[0].addr, "2001:db8::1"_v6);
    EXPECT_EQ(log.records[1].hits, 7u);
    EXPECT_EQ(log.total_hits(), 8u);
    EXPECT_EQ(log.addresses().size(), 2u);
}

TEST(LogTest, CullSplitsByMechanism) {
    const culled_addresses cull = cull_transition(
        {"2001::1"_v6, "2002:c000:221::1"_v6, "2001:db8::5efe:c000:221"_v6,
         "2600::1"_v6, "2600::2"_v6});
    EXPECT_EQ(cull.teredo.size(), 1u);
    EXPECT_EQ(cull.six_to_four.size(), 1u);
    EXPECT_EQ(cull.isatap.size(), 1u);
    EXPECT_EQ(cull.other.size(), 2u);
}

TEST(WorldTest, DayLogIsSortedUniquePositive) {
    const world w(small_world());
    const daily_log log = w.day_log(kMar2015);
    ASSERT_GT(log.records.size(), 500u);
    for (std::size_t i = 1; i < log.records.size(); ++i)
        EXPECT_LT(log.records[i - 1].addr, log.records[i].addr);
    for (const observation& o : log.records) EXPECT_GE(o.hits, 1u);
}

TEST(WorldTest, CompositionMatchesPaperShape) {
    const world w(small_world(0.3));
    const auto cull = cull_transition(w.active_addresses(kMar2015));
    const double total = static_cast<double>(
        cull.teredo.size() + cull.isatap.size() + cull.six_to_four.size() +
        cull.other.size());
    // "Other" (native) addresses dominate at >90%; 6to4 is a few
    // percent; Teredo and ISATAP are vestigial.
    EXPECT_GT(cull.other.size() / total, 0.90);
    EXPECT_LT(cull.six_to_four.size() / total, 0.10);
    EXPECT_GT(cull.six_to_four.size() / total, 0.005);
    EXPECT_LT(cull.teredo.size() / total, 0.01);
    EXPECT_LT(cull.isatap.size() / total, 0.01);
}

TEST(WorldTest, ActivityGrowsAcrossTheStudyYear) {
    const world w(small_world());
    const auto early = w.active_addresses(kMar2014);
    const auto late = w.active_addresses(kMar2015);
    EXPECT_GT(late.size(), early.size() * 3 / 2);
}

TEST(WorldTest, ParallelSeriesMatchesPerDayGeneration) {
    const world w(small_world(0.05));
    const daily_series s = w.series(3, 12);  // wide enough to fan out
    for (int d = 3; d <= 12; ++d)
        EXPECT_EQ(s.day(d), w.active_addresses(d)) << d;
}

TEST(WorldTest, SeriesCoversRange) {
    const world w(small_world(0.04));
    const daily_series s = w.series(10, 14);
    EXPECT_EQ(s.days().size(), 5u);
    EXPECT_GT(s.count(12), 0u);
}

TEST(WorldTest, DeterministicAcrossInstances) {
    const world a(small_world(0.04));
    const world b(small_world(0.04));
    EXPECT_EQ(a.active_addresses(7), b.active_addresses(7));
}

TEST(WorldTest, SeedChangesTheWorld) {
    world_config cfg = small_world(0.04);
    cfg.seed = 1234;
    const world a(cfg);
    const world b(small_world(0.04));
    EXPECT_NE(a.active_addresses(7), b.active_addresses(7));
}

TEST(WorldTest, RoutesCoverAllClientAddresses) {
    const world w(small_world(0.05));
    for (const address& a : w.active_addresses(3)) {
        const auto route = w.registry().origin_of(a);
        ASSERT_TRUE(route.has_value()) << a.to_string();
    }
}

TEST(WorldTest, SlewConservesRecordsAcrossAdjacentLogs) {
    world_config cfg = small_world(0.04);
    cfg.slew_probability = 0.3;
    const world slewed(cfg);
    cfg.slew_probability = 0.0;
    const world crisp(cfg);
    // Every raw record of day d lands in exactly one of logs d or d+1:
    // summed hits over the two slewed logs restricted to day-d raw
    // records equal the crisp day-d hits... verify via totals over a
    // 3-day span interior day.
    const std::uint64_t crisp_hits = crisp.day_log(5).total_hits();
    // Slewed day-5 log = on-time day-5 + late day-4; slewed day-6 log
    // holds the late day-5 remainder. Sum of "on-time day-5" and "late
    // day-5" equals crisp day-5.
    const std::uint64_t slew5 = slewed.day_log(5).total_hits();
    const std::uint64_t slew6 = slewed.day_log(6).total_hits();
    const std::uint64_t crisp4 = crisp.day_log(4).total_hits();
    const std::uint64_t crisp6 = crisp.day_log(6).total_hits();
    // slew5 + slew6 = (on5 + late4) + (on6 + late5) = crisp5 + late4 +
    // on6; bound rather than equate: totals stay within the adjacent
    // days' envelope.
    EXPECT_GT(slew5 + slew6, 0u);
    EXPECT_LE(slew5, crisp_hits + crisp4);
    EXPECT_LE(slew6, crisp6 + crisp_hits);
}

TEST(WorldTest, FlagshipAccessorsAreWired) {
    const world w(small_world(0.04));
    EXPECT_EQ(w.mobile1().asn(), 20001u);
    EXPECT_EQ(w.mobile2().asn(), 20002u);
    EXPECT_EQ(w.europe().asn(), 20003u);
    EXPECT_EQ(w.japan().asn(), 20004u);
    EXPECT_EQ(w.university().asn(), 20010u);
    EXPECT_EQ(w.telco().asn(), 20011u);
    EXPECT_EQ(w.department().asn(), 20012u);
    EXPECT_GE(w.models().size(), 11u + w.config().tail_isps);
}

TEST(WorldTest, Top5AsnsDominate64Counts) {
    const world w(small_world(0.3));
    const auto addrs = w.active_addresses(kMar2015);
    const culled_addresses cull = cull_transition(addrs);
    // Count /64s per ASN for native traffic.
    std::map<std::uint32_t, std::set<address>> asn_64s;
    for (const address& a : cull.other) {
        const auto route = w.registry().origin_of(a);
        ASSERT_TRUE(route.has_value());
        asn_64s[route->asn].insert(a.masked(64));
    }
    std::vector<std::size_t> counts;
    std::size_t total = 0;
    for (const auto& [asn, s] : asn_64s) {
        counts.push_back(s.size());
        total += s.size();
    }
    std::sort(counts.rbegin(), counts.rend());
    std::size_t top5 = 0;
    for (std::size_t i = 0; i < 5 && i < counts.size(); ++i) top5 += counts[i];
    // The paper: top 5 ASNs hold 85% of active /64s. Accept a band.
    EXPECT_GT(static_cast<double>(top5) / total, 0.70);
}

}  // namespace
}  // namespace v6
