// Tests for MRA plot data, its renderers, and the boxplot summaries.
#include <gtest/gtest.h>

#include "v6class/netgen/iid.h"
#include "v6class/netgen/rng.h"
#include "v6class/spatial/boxplot.h"
#include "v6class/spatial/mra_plot.h"

namespace v6 {
namespace {

TEST(MraPlotTest, SeriesShapes) {
    rng r{31};
    std::vector<address> addrs;
    for (int i = 0; i < 500; ++i)
        addrs.push_back(address::from_pair(0x20010db800000000ull | r.uniform(8),
                                           privacy_iid(r())));
    const mra_plot_data plot = make_mra_plot(compute_mra(addrs), "test net");
    EXPECT_EQ(plot.title, "test net");
    EXPECT_EQ(plot.address_count, 500u);
    EXPECT_EQ(plot.bits.size(), 128u);
    EXPECT_EQ(plot.nybbles.size(), 32u);
    EXPECT_EQ(plot.segments.size(), 8u);
}

TEST(MraPlotTest, CsvHasOneRowPerPoint) {
    const mra_plot_data plot =
        make_mra_plot(compute_mra({address::must_parse("2001:db8::1")}), "x");
    const std::string csv = to_csv(plot);
    std::size_t rows = 0;
    for (char c : csv)
        if (c == '\n') ++rows;
    EXPECT_EQ(rows, 1u + 128u + 32u + 8u);  // header + series
    EXPECT_EQ(csv.rfind("p,k,ratio\n", 0), 0u);
}

TEST(MraPlotTest, AsciiRenderContainsAxesAndMarks) {
    rng r{32};
    std::vector<address> addrs;
    for (int i = 0; i < 300; ++i)
        addrs.push_back(address::from_pair(0x20010db800000000ull | r.uniform(256),
                                           privacy_iid(r())));
    const std::string art =
        render_ascii(make_mra_plot(compute_mra(addrs), "net"), 17);
    EXPECT_NE(art.find("net"), std::string::npos);
    EXPECT_NE(art.find('S'), std::string::npos);
    EXPECT_NE(art.find('o'), std::string::npos);
    EXPECT_NE(art.find('.'), std::string::npos);
    EXPECT_NE(art.find("128"), std::string::npos);
}

TEST(BoxplotTest, PercentileInterpolation) {
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(percentile({10}, 0.99), 10.0);
    EXPECT_DOUBLE_EQ(percentile({1, 3}, 0.25), 1.5);
}

TEST(BoxplotTest, SummaryOrdering) {
    rng r{33};
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i) samples.push_back(r.uniform_double() * 100);
    const boxplot_summary s = summarize(samples);
    EXPECT_EQ(s.samples, 1000u);
    EXPECT_LE(s.min, s.p5);
    EXPECT_LE(s.p5, s.p25);
    EXPECT_LE(s.p25, s.median);
    EXPECT_LE(s.median, s.p75);
    EXPECT_LE(s.p75, s.p95);
    EXPECT_LE(s.p95, s.max);
}

TEST(BoxplotTest, EmptySample) {
    const boxplot_summary s = summarize({});
    EXPECT_EQ(s.samples, 0u);
    EXPECT_DOUBLE_EQ(s.median, 0.0);
}

}  // namespace
}  // namespace v6
