// Randomized cross-checks of the temporal analyses against brute-force
// reference computations.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "v6class/netgen/rng.h"
#include "v6class/temporal/stability.h"

namespace v6 {
namespace {

address nth(unsigned i) {
    return address::from_pair(0x20010db800000000ull, 0x9000u + i);
}

// A random activity schedule: per address, the set of active days.
std::map<address, std::set<int>> random_schedule(std::uint64_t seed,
                                                 unsigned addresses, int days) {
    rng r{seed};
    std::map<address, std::set<int>> schedule;
    for (unsigned i = 0; i < addresses; ++i) {
        std::set<int> active;
        for (int d = 0; d < days; ++d)
            if (r.chance(0.25)) active.insert(d);
        if (!active.empty()) schedule.emplace(nth(i), std::move(active));
    }
    return schedule;
}

daily_series to_series(const std::map<address, std::set<int>>& schedule,
                       int days) {
    daily_series series;
    for (int d = 0; d < days; ++d) {
        std::vector<address> active;
        for (const auto& [addr, sched] : schedule)
            if (sched.contains(d)) active.push_back(addr);
        series.set_day(d, std::move(active));
    }
    return series;
}

class TemporalBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TemporalBruteForce, ClassifyDayMatchesDefinition) {
    const int days = 21;
    const auto schedule = random_schedule(GetParam(), 300, days);
    const daily_series series = to_series(schedule, days);
    stability_options opt;
    opt.window_back = 5;
    opt.window_fwd = 6;
    stability_analyzer an(series, opt);

    for (const int ref : {5, 10, 14}) {
        for (const unsigned n : {1u, 2u, 4u}) {
            const stability_split split = an.classify_day(ref, n);
            std::set<address> got(split.stable.begin(), split.stable.end());
            for (const auto& [addr, sched] : schedule) {
                if (!sched.contains(ref)) {
                    EXPECT_FALSE(got.contains(addr));
                    continue;
                }
                // Brute force the definition: two active days within the
                // window at least n apart.
                int lo = ref, hi = ref;
                for (const int d : sched) {
                    if (d < ref - opt.window_back || d > ref + opt.window_fwd)
                        continue;
                    lo = std::min(lo, d);
                    hi = std::max(hi, d);
                }
                const bool expected = hi - lo >= static_cast<int>(n);
                EXPECT_EQ(got.contains(addr), expected)
                    << addr.to_string() << " ref=" << ref << " n=" << n;
            }
        }
    }
}

TEST_P(TemporalBruteForce, OverlapSeriesMatchesIntersections) {
    const int days = 15;
    const auto schedule = random_schedule(GetParam() ^ 0x77, 200, days);
    const daily_series series = to_series(schedule, days);
    stability_analyzer an(series);
    const int ref = 7;
    const auto overlaps = an.overlap_series(ref, 0, days - 1);
    ASSERT_EQ(overlaps.size(), static_cast<std::size_t>(days));
    for (int d = 0; d < days; ++d) {
        std::uint64_t expected = 0;
        for (const auto& [addr, sched] : schedule)
            if (sched.contains(ref) && sched.contains(d)) ++expected;
        EXPECT_EQ(overlaps[static_cast<std::size_t>(d)], expected) << d;
    }
}

TEST_P(TemporalBruteForce, WeekRollupIsTheUnionOfDays) {
    const int days = 21;
    const auto schedule = random_schedule(GetParam() ^ 0x99, 200, days);
    const daily_series series = to_series(schedule, days);
    stability_analyzer an(series);
    const int first = 7;
    const stability_split week = an.classify_week(first, 3);

    std::set<address> expected_stable, expected_not;
    for (int d = first; d < first + 7; ++d) {
        const stability_split day = an.classify_day(d, 3);
        expected_stable.insert(day.stable.begin(), day.stable.end());
        expected_not.insert(day.not_stable.begin(), day.not_stable.end());
    }
    EXPECT_EQ(std::set<address>(week.stable.begin(), week.stable.end()),
              expected_stable);
    EXPECT_EQ(std::set<address>(week.not_stable.begin(), week.not_stable.end()),
              expected_not);
}

TEST_P(TemporalBruteForce, ProjectionCommutesWithUnion) {
    const int days = 10;
    rng r{GetParam() ^ 0x44};
    daily_series series;
    for (int d = 0; d < days; ++d) {
        std::vector<address> active;
        for (int i = 0; i < 200; ++i)
            active.push_back(
                address::from_pair(0x20010db800000000ull | r.uniform(32), r()));
        series.set_day(d, std::move(active));
    }
    // union(project(s)) == project(union(s)) as sets of /64s.
    const auto union_then_project = [&] {
        std::vector<address> u = series.union_over(0, days - 1);
        for (address& a : u) a = a.masked(64);
        std::sort(u.begin(), u.end());
        u.erase(std::unique(u.begin(), u.end()), u.end());
        return u;
    }();
    const auto project_then_union = series.project(64).union_over(0, days - 1);
    EXPECT_EQ(union_then_project, project_then_union);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalBruteForce,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace v6
